"""Regenerate Figure 4: whole-program speedups + geomeans.

Paper reference (section 6.3): geomeans over all 24 programs are
0.92x (idealized inspector-executor), 0.71x (unoptimized CGCM), and
5.36x (optimized CGCM); taking max(1, speedup) per program gives
1.53x / 2.81x / 7.18x.

The shape assertions encode the qualitative claims: optimization never
hurts, optimized CGCM wins overall, unoptimized management alone loses
to sequential execution, and the inspector-executor sits between them.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.evaluation import (build_figure4, figure4_geomeans,
                              render_figure4, run_benchmark)
from repro.workloads import get_workload


def test_figure4_regeneration(benchmark, evaluation_results, results_dir):
    rows = benchmark.pedantic(build_figure4, args=(evaluation_results,),
                              rounds=1, iterations=1)
    rendered = render_figure4(rows)
    save_artifact(results_dir, "figure4.txt", rendered)
    print()
    print(rendered)

    geo = figure4_geomeans(rows)
    # Who wins: optimized CGCM, by a clear margin (paper: 5.36x).
    assert geo["optimized"] > 1.5
    # Unoptimized management loses to sequential overall (paper: 0.71x).
    assert geo["unoptimized"] < 1.0
    # The idealized inspector-executor also loses overall (paper: 0.92x)
    # but beats unoptimized CGCM.
    assert geo["inspector-executor"] < 1.0
    assert geo["inspector-executor"] > geo["unoptimized"]
    # Optimized dominates both comparisons.
    assert geo["optimized"] > geo["inspector-executor"]
    assert geo["optimized"] > geo["unoptimized"]


def test_optimization_never_hurts(evaluation_results, benchmark):
    """Paper: "communication optimizations never reduce performance"."""
    def worst_regression():
        return min(
            result.results["unoptimized"].total_seconds
            / result.results["optimized"].total_seconds
            for result in evaluation_results)
    ratio = benchmark.pedantic(worst_regression, rounds=1, iterations=1)
    assert ratio >= 0.98  # allow sub-2% modelling noise


def test_gpu_bound_programs_speed_up(evaluation_results, benchmark):
    """The paper's GPU-bound programs all beat sequential execution."""
    def gpu_bound_speedups():
        return {r.workload.name: r.speedup("optimized")
                for r in evaluation_results
                if r.workload.paper.limiting_factor == "GPU"}
    speedups = benchmark.pedantic(gpu_bound_speedups, rounds=1,
                                  iterations=1)
    losers = {name: s for name, s in speedups.items() if s < 1.0}
    assert not losers, f"GPU-bound programs slower than CPU: {losers}"


def test_comm_bound_programs_crossover(evaluation_results, benchmark):
    """Crossover location: the comm-bound programs are where CGCM
    fails to beat the CPU (paper: atax/bicg/gemver/gesummv/gramschmidt
    stay communication-limited)."""
    def comm_bound():
        return {r.workload.name: r.speedup("optimized")
                for r in evaluation_results
                if r.workload.paper.limiting_factor == "Comm."}
    speedups = benchmark.pedantic(comm_bound, rounds=1, iterations=1)
    # Most comm-bound programs stay below ~2x (no big wins there).
    assert all(s < 2.5 for s in speedups.values()), speedups


def test_gramschmidt_is_where_ie_wins(evaluation_results, benchmark):
    """Paper: "The only application where inspector-executor
    outperforms CGCM, gramschmidt, falls in this category"."""
    def ie_vs_cgcm():
        result = next(r for r in evaluation_results
                      if r.workload.name == "gramschmidt")
        return (result.speedup("inspector-executor"),
                result.speedup("optimized"))
    ie, cgcm = benchmark.pedantic(ie_vs_cgcm, rounds=1, iterations=1)
    assert ie > cgcm


def test_single_workload_wallclock(benchmark):
    """Wall-clock benchmark of one full 4-configuration evaluation."""
    workload = get_workload("jacobi-2d-imper")
    result = benchmark.pedantic(run_benchmark, args=(workload,),
                                rounds=1, iterations=1)
    assert result.speedup("optimized") > 1.0
