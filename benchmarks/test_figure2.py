"""Regenerate Figure 2: execution schedules of the three patterns.

The qualitative claims: the naive pattern alternates transfers and
kernels every iteration (cyclic); the inspector-executor still syncs
every launch but moves fewer bytes; the optimized pattern crosses the
bus O(1) times regardless of iteration count, and is the fastest.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.evaluation import build_schedules, render_figure2


def test_figure2_schedules(benchmark, results_dir):
    schedules = benchmark.pedantic(build_schedules, rounds=1,
                                   iterations=1)
    rendered = render_figure2(schedules)
    save_artifact(results_dir, "figure2.txt", rendered)
    print()
    print(rendered)

    cyclic = schedules["naive-cyclic"]
    inspector = schedules["inspector-executor"]
    acyclic = schedules["acyclic"]

    # Cyclic patterns alternate comm/GPU once per iteration; the
    # acyclic schedule alternates O(1) times in total.
    assert cyclic.direction_switches >= 8
    assert inspector.direction_switches >= 8
    assert acyclic.direction_switches <= 5
    # The acyclic schedule is the fastest of the three.
    assert acyclic.total_seconds < cyclic.total_seconds
    assert acyclic.total_seconds < inspector.total_seconds
    # All three computed the same answer (events aside, the underlying
    # run is checked in build_schedules via identical workloads).
    assert cyclic.events and inspector.events and acyclic.events
