"""Microbenchmarks of the substrate itself (wall-clock, not modelled).

These time the Python implementation: the run-time library's hot path
(allocation-map lookup, map/release cycles), the compiler pipeline,
and interpreter throughput.  Useful for tracking regressions in the
reproduction's own performance.
"""

from __future__ import annotations

import random

from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.frontend import compile_minic
from repro.interp import Machine
from repro.runtime import AvlTreeMap, CgcmRuntime
from repro.workloads import get_workload


def test_allocmap_find_le(benchmark):
    tree = AvlTreeMap()
    rng = random.Random(7)
    keys = [rng.randrange(1 << 30) for _ in range(4096)]
    for key in keys:
        tree.insert(key, key)
    probes = [rng.randrange(1 << 30) for _ in range(512)]

    def lookups():
        total = 0
        for probe in probes:
            hit = tree.find_le(probe)
            if hit is not None:
                total += hit[0]
        return total

    benchmark(lookups)


def test_map_release_cycle(benchmark):
    machine = Machine(compile_minic(
        "double data[256]; int main(void) { return 0; }"))
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    base = machine.global_address("data")

    def cycle():
        for _ in range(64):
            runtime.map_ptr(base)
            runtime.global_epoch += 1
            runtime.unmap_ptr(base)
            runtime.release_ptr(base)

    benchmark(cycle)


def test_compile_pipeline(benchmark):
    """Full pipeline wall-clock on gemm (parse -> IR -> all passes)."""
    source = get_workload("gemm").source

    def compile_gemm():
        compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
        return compiler.compile_source(source, "gemm")

    report = benchmark(compile_gemm)
    assert report.doall_kernels


def test_interpreter_throughput(benchmark):
    """Interpreted ops/second on a tight arithmetic loop."""
    module = compile_minic(r"""
    int main(void) {
        double acc = 0.0;
        for (int i = 0; i < 5000; i++)
            acc = acc * 0.9999 + i;
        return (int) (acc / 100000.0);
    }""")

    def run():
        return Machine(module).run()

    benchmark(run)
