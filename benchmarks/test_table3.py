"""Regenerate Table 3: program characteristics, measured vs paper.

For every program the paper reports the limiting factor (GPU / Comm. /
Other), the GPU%% and communication%% of total execution time before
and after optimization, the kernel count, and the number of kernels
each prior technique could manage.  We regenerate all columns and
check the *shape*: limiting factors mostly agree, communication
percentage falls (or stays) under optimization for the promoted
programs, and the applicability ordering CGCM >= IE >= named-regions
holds everywhere.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.evaluation import (build_table3, render_table3,
                              render_table3_comparison)


def test_table3_regeneration(benchmark, evaluation_results, results_dir):
    rows = benchmark.pedantic(build_table3, args=(evaluation_results,),
                              rounds=1, iterations=1)
    rendered = render_table3(rows)
    comparison = render_table3_comparison(evaluation_results)
    save_artifact(results_dir, "table3.txt",
                  rendered + "\n\n" + comparison)
    print()
    print(rendered)
    print()
    print(comparison)
    assert len(rows) == 24


def test_limiting_factors_mostly_match_paper(evaluation_results,
                                             benchmark):
    def agreement():
        matches = sum(
            1 for result in evaluation_results
            if result.limiting_factor
            == result.workload.paper.limiting_factor)
        return matches / len(evaluation_results)
    ratio = benchmark.pedantic(agreement, rounds=1, iterations=1)
    assert ratio >= 0.5, f"only {ratio:.0%} of limiting factors match"


def test_applicability_ordering(evaluation_results, benchmark):
    """CGCM is applicable wherever the others are (paper Table 3:
    CGCM handles all kernels; IE/named-regions handle a subset)."""
    def orderings():
        out = []
        for result in evaluation_results:
            a = result.applicability
            out.append((result.workload.name, a.total_kernels, a.cgcm,
                        a.inspector_executor, a.named_regions))
        return out
    rows = benchmark.pedantic(orderings, rounds=1, iterations=1)
    for name, total, cgcm, ie, nr in rows:
        assert cgcm == total, f"{name}: CGCM must manage every kernel"
        assert ie <= cgcm, name
        assert nr <= ie, name


def test_complex_programs_less_applicable(evaluation_results, benchmark):
    """Paper: prior techniques cover most PolyBench kernels but only a
    fraction of the more complex non-PolyBench kernels."""
    def coverage(suite_filter, invert=False):
        total = applicable = 0
        for result in evaluation_results:
            in_suite = result.workload.suite == suite_filter
            if in_suite == invert:
                continue
            total += result.applicability.total_kernels
            applicable += result.applicability.inspector_executor
        return applicable / max(total, 1)
    polybench = benchmark.pedantic(coverage, args=("PolyBench",),
                                   rounds=1, iterations=1)
    others = coverage("PolyBench", invert=True)
    assert polybench > others


def test_communication_fraction_falls_for_promoted(evaluation_results,
                                                   benchmark):
    """jacobi/lu/srad-style programs: comm%% collapses under
    optimization (paper: jacobi 92.8 -> 3.3, lu 99.6 -> 7.0)."""
    targets = {"jacobi-2d-imper", "lu", "srad", "hotspot", "cfd", "nw"}
    def drops():
        out = {}
        for result in evaluation_results:
            if result.workload.name not in targets:
                continue
            _, comm_unopt, _ = result.breakdown("unoptimized")
            _, comm_opt, _ = result.breakdown("optimized")
            out[result.workload.name] = (comm_unopt, comm_opt)
        return out
    measured = benchmark.pedantic(drops, rounds=1, iterations=1)
    for name, (before, after) in measured.items():
        assert after < before, (name, before, after)
