"""Ablation benchmarks for the design choices DESIGN.md calls out.

The paper fixes one pass schedule (glue kernels, then alloca
promotion, then map promotion -- section 5.3).  These benchmarks turn
each optimization off individually on the workloads that exercise it
and measure the cost, regenerating the justification for the schedule.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.core import CgcmCompiler, CgcmConfig, OptLevel
from repro.workloads import get_workload


def run_with(workload_name: str, **toggles):
    workload = get_workload(workload_name)
    config = CgcmConfig(opt_level=OptLevel.OPTIMIZED, **toggles)
    compiler = CgcmCompiler(config)
    report = compiler.compile_source(workload.source, workload.name)
    return compiler.execute(report)


def test_map_promotion_ablation(benchmark, results_dir):
    """jacobi: map promotion is the whole ball game."""
    def measure():
        with_promo = run_with("jacobi-2d-imper")
        without = run_with("jacobi-2d-imper",
                           enable_map_promotion=False)
        return with_promo, without
    with_promo, without = benchmark.pedantic(measure, rounds=1,
                                             iterations=1)
    assert with_promo.stdout == without.stdout
    # Without promotion the pattern stays cyclic: many more copies.
    assert without.counters["htod_copies"] >= \
        4 * with_promo.counters["htod_copies"]
    assert with_promo.total_seconds < without.total_seconds
    save_artifact(results_dir, "ablation_map_promotion.txt",
                  f"with   : {with_promo.total_seconds * 1e6:9.2f}us "
                  f"({with_promo.counters['htod_copies']} HtoD)\n"
                  f"without: {without.total_seconds * 1e6:9.2f}us "
                  f"({without.counters['htod_copies']} HtoD)")


def test_glue_kernel_ablation(benchmark, results_dir):
    """srad/lu: the CPU snippet between launches blocks promotion
    unless it is lowered to the GPU."""
    def measure():
        out = {}
        for name in ("srad", "lu"):
            with_glue = run_with(name)
            without = run_with(name, enable_glue_kernels=False)
            assert with_glue.stdout == without.stdout
            out[name] = (with_glue, without)
        return out
    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = []
    for name, (with_glue, without) in measured.items():
        assert with_glue.counters["htod_copies"] < \
            without.counters["htod_copies"], name
        assert with_glue.total_seconds <= without.total_seconds * 1.02, \
            name
        lines.append(f"{name:6s} with glue: "
                     f"{with_glue.total_seconds * 1e6:9.2f}us "
                     f"({with_glue.counters['htod_copies']} HtoD)   "
                     f"without: {without.total_seconds * 1e6:9.2f}us "
                     f"({without.counters['htod_copies']} HtoD)")
    save_artifact(results_dir, "ablation_glue.txt", "\n".join(lines))


def test_alloca_promotion_ablation(benchmark, results_dir):
    """doitgen: the helper's local buffer must climb the call graph
    before its mapping can leave the r loop."""
    def measure():
        with_alloca = run_with("doitgen")
        without = run_with("doitgen", enable_alloca_promotion=False)
        return with_alloca, without
    with_alloca, without = benchmark.pedantic(measure, rounds=1,
                                              iterations=1)
    assert with_alloca.stdout == without.stdout
    assert with_alloca.counters["htod_copies"] <= \
        without.counters["htod_copies"]
    save_artifact(results_dir, "ablation_alloca.txt",
                  f"with   : {with_alloca.total_seconds * 1e6:9.2f}us "
                  f"({with_alloca.counters['htod_copies']} HtoD)\n"
                  f"without: {without.total_seconds * 1e6:9.2f}us "
                  f"({without.counters['htod_copies']} HtoD)")


def test_pass_schedule_matches_paper(benchmark):
    """All three optimizations together never lose to any subset
    (spot-check on the programs each pass targets)."""
    def measure():
        results = {}
        for name in ("jacobi-2d-imper", "srad", "doitgen"):
            full = run_with(name)
            for toggle in ("enable_glue_kernels",
                           "enable_alloca_promotion",
                           "enable_map_promotion"):
                partial = run_with(name, **{toggle: False})
                results[(name, toggle)] = (full.total_seconds,
                                           partial.total_seconds)
        return results
    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    for (name, toggle), (full, partial) in measured.items():
        assert full <= partial * 1.05, (name, toggle, full, partial)
