"""Shared fixtures for the benchmark harness.

``evaluation_results`` runs all 24 workloads through the four
configurations once per session (a few minutes of simulated-platform
execution) and is shared by the Figure 4 and Table 3 benchmarks.
Rendered artifacts are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.evaluation import run_benchmark
from repro.workloads import ALL_WORKLOADS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def evaluation_results():
    """BenchmarkResult for every workload (cached per session)."""
    return [run_benchmark(workload) for workload in ALL_WORKLOADS]


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / name).write_text(text + "\n")
