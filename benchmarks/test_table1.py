"""Regenerate Table 1: comparison between communication systems.

The matrix itself is published data; what we can *execute* is CGCM's
row: aliasing pointers, irregular accesses, weak type systems, general
pointer arithmetic, and double indirection each get a micro-program
compiled through the full pipeline and run against the managed-only
configuration.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.evaluation import (FEATURE_PROGRAMS, TABLE1, demonstrate_cgcm,
                              render_table1)


def test_table1_matrix(benchmark, results_dir):
    rendered = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    save_artifact(results_dir, "table1.txt", rendered)
    print()
    print(rendered)
    cgcm_row = next(r for r in TABLE1 if r.framework == "CGCM")
    assert cgcm_row.optimizes_communication
    assert not cgcm_row.requires_annotations
    assert cgcm_row.max_indirection == 2
    # No prior system both avoids annotations and optimizes.
    for row in TABLE1:
        if row.framework != "CGCM":
            assert row.requires_annotations or \
                not row.optimizes_communication


def test_cgcm_feature_demonstrations(benchmark, results_dir):
    outcome = benchmark.pedantic(demonstrate_cgcm, rounds=1, iterations=1)
    lines = [f"{feature:24s} {'PASS' if ok else 'FAIL'}"
             for feature, ok in outcome.items()]
    save_artifact(results_dir, "table1_demos.txt", "\n".join(lines))
    print()
    print("\n".join(lines))
    assert set(outcome) == set(FEATURE_PROGRAMS)
    failed = [feature for feature, ok in outcome.items() if not ok]
    assert not failed, f"CGCM applicability cells not demonstrated: " \
                       f"{failed}"
