#!/usr/bin/env python3
"""The paper's Listings 1-3: manual vs automatic communication.

Listing 1 (manual CUDA) copies a jagged array of strings to the GPU by
hand: allocate each string, copy it, build a device pointer array,
copy that, launch, copy back, free everything.  Listing 2 is the same
program under CGCM: just launch; the run-time's ``mapArray`` handles
the double indirection.

We express both in MiniC.  "Manual" uses explicit run-time calls (the
closest MiniC analogue of raw cuMemcpy code); "automatic" lets the
compiler insert them (paper Listing 3) -- and the inserted code is
printed so you can see the map/unmap/release trio around the launch.

Run:  python examples/manual_vs_automatic.py
"""

from repro import CgcmCompiler, CgcmConfig, CgcmRuntime, Machine, OptLevel
from repro.frontend import compile_minic
from repro.ir import Call, LaunchKernel, block_to_str

MANUAL = r"""
char *verses[4];

__global__ void shout(long tid, char **lines) {
    char *line = lines[tid];
    long i = 0;
    while (line[i] != 0) {
        if (line[i] >= 'a')
            line[i] = line[i] - 32;       /* to upper case */
        i++;
    }
}

int main(void) {
    verses[0] = "what so proudly we hailed";
    verses[1] = "at the twilight's last gleaming";
    verses[2] = "whose broad stripes";
    verses[3] = "and bright stars";
    /* copy the verses into writable heap strings */
    for (int v = 0; v < 4; v++) {
        char *src = verses[v];
        long n = 0;
        while (src[n] != 0) n++;
        char *dst = (char *) malloc(n + 1);
        for (int i = 0; i <= n; i++) dst[i] = src[i];
        verses[v] = dst;
    }
    /* ---- manual communication management ---- */
    char **d_verses = (char **) mapArray((char *) verses);
    __launch(shout, 4, d_verses);
    unmapArray((char *) verses);
    releaseArray((char *) verses);
    /* ---- */
    for (int v = 0; v < 4; v++) print_str(verses[v]);
    return 0;
}
"""

AUTOMATIC = r"""
char *verses[4];

__global__ void shout(long tid, char **lines) {
    char *line = lines[tid];
    long i = 0;
    while (line[i] != 0) {
        if (line[i] >= 'a')
            line[i] = line[i] - 32;
        i++;
    }
}

int main(void) {
    verses[0] = "what so proudly we hailed";
    verses[1] = "at the twilight's last gleaming";
    verses[2] = "whose broad stripes";
    verses[3] = "and bright stars";
    for (int v = 0; v < 4; v++) {
        char *src = verses[v];
        long n = 0;
        while (src[n] != 0) n++;
        char *dst = (char *) malloc(n + 1);
        for (int i = 0; i <= n; i++) dst[i] = src[i];
        verses[v] = dst;
    }
    __launch(shout, 4, verses);    /* no communication code at all */
    for (int v = 0; v < 4; v++) print_str(verses[v]);
    return 0;
}
"""


def run_manual() -> None:
    print("== manual communication (the programmer wrote mapArray) ==")
    module = compile_minic(MANUAL, "manual")
    machine = Machine(module)
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    machine.run()
    for line in machine.stdout:
        print("  ", line)


def run_automatic() -> None:
    print()
    print("== automatic communication (CGCM inserted everything) ==")
    compiler = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
    report = compiler.compile_source(AUTOMATIC, "automatic")
    main_fn = report.module.get_function("main")
    launch_block = next(inst.parent for inst in main_fn.instructions()
                        if isinstance(inst, LaunchKernel))
    print("-- the block around the launch, after the compiler pass --")
    for line in block_to_str(launch_block).splitlines():
        if any(word in line for word in ("mapArray", "unmapArray",
                                         "releaseArray", "launch")):
            print("  ", line.strip())
    result = compiler.execute(report)
    print("-- output --")
    for line in result.stdout:
        print("  ", line)


if __name__ == "__main__":
    run_manual()
    run_automatic()
