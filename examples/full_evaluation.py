#!/usr/bin/env python3
"""Regenerate the paper's whole evaluation section (section 6).

Runs all 24 benchmarks under the four configurations and prints
Figure 4 (speedups + geomeans), Table 3 (program characteristics,
measured vs paper), and Table 1 (the feature matrix plus executable
demonstrations of CGCM's applicability cells).

This takes a few minutes: every program runs four times through the
full simulated platform.

Run:  python examples/full_evaluation.py [workload ...]
"""

import sys
import time

from repro.evaluation import (build_figure4, build_table3,
                              demonstrate_cgcm, render_figure4,
                              render_table1, render_table3,
                              render_table3_comparison, run_benchmark)
from repro.workloads import ALL_WORKLOADS, get_workload


def main() -> None:
    if len(sys.argv) > 1:
        workloads = [get_workload(name) for name in sys.argv[1:]]
    else:
        workloads = list(ALL_WORKLOADS)

    results = []
    print(f"running {len(workloads)} benchmarks x 4 configurations ...")
    for workload in workloads:
        started = time.time()
        result = run_benchmark(workload)
        results.append(result)
        print(f"  {workload.name:18s} opt speedup "
              f"{result.speedup('optimized'):6.2f}x   "
              f"({time.time() - started:4.1f}s wall)")

    print()
    print("=" * 72)
    print("Figure 4: whole-program speedup over sequential CPU-only")
    print("=" * 72)
    print(render_figure4(build_figure4(results)))

    print()
    print("=" * 72)
    print("Table 3: program characteristics (measured)")
    print("=" * 72)
    print(render_table3(build_table3(results)))

    print()
    print("=" * 72)
    print("Table 3: measured vs paper")
    print("=" * 72)
    print(render_table3_comparison(results))

    print()
    print("=" * 72)
    print("Table 1: comparison between communication systems (published)")
    print("=" * 72)
    print(render_table1())
    print()
    print("CGCM applicability cells, demonstrated by execution:")
    for feature, passed in demonstrate_cgcm().items():
        print(f"  {feature:22s} {'PASS' if passed else 'FAIL'}")


if __name__ == "__main__":
    main()
