#!/usr/bin/env python3
"""Regenerate the paper's Figure 2: the three execution schedules.

Runs one time-stepped workload under (a) naive cyclic communication
(unoptimized CGCM), (b) the idealized inspector-executor, and (c)
acyclic communication (optimized CGCM), then draws each simulated
timeline: ``#`` = CPU, ``~`` = transfers, ``=`` = GPU kernels.

Run:  python examples/communication_patterns.py
"""

from repro.evaluation import build_schedules, render_figure2


def main() -> None:
    schedules = build_schedules()
    print(render_figure2(schedules, width=100))
    print()
    cyclic = schedules["naive-cyclic"].direction_switches
    acyclic = schedules["acyclic"].direction_switches
    print(f"The naive schedule ping-pongs between transfers and kernels "
          f"{cyclic} times;")
    print(f"after map promotion the pattern is acyclic "
          f"({acyclic} alternations): data flows to the GPU once and "
          f"returns once.")


if __name__ == "__main__":
    main()
