#!/usr/bin/env python3
"""Quickstart: compile one MiniC program at every optimization level.

The program is a small time-stepped stencil -- the shape that motivates
CGCM: a loop that launches GPU kernels every iteration.  Communication
*management* alone produces a cyclic pattern (slow); map promotion
turns it acyclic (fast).

Run:  python examples/quickstart.py
"""

from repro import OptLevel, compile_and_run

SOURCE = r"""
double field[64];

int main(void) {
    for (int i = 0; i < 64; i++)
        field[i] = i * 0.25;

    for (int t = 0; t < 8; t++) {
        for (int i = 0; i < 64; i++)
            field[i] = field[i] * 0.95 + 0.5;
    }

    double checksum = 0.0;
    for (int i = 0; i < 64; i++)
        checksum += field[i] * (i % 5 + 1);
    print_f64(checksum);
    return 0;
}
"""


def main() -> None:
    print("level        stdout        total      cpu      gpu     comm"
          "   HtoD copies")
    baseline = None
    for level in (OptLevel.SEQUENTIAL, OptLevel.UNOPTIMIZED,
                  OptLevel.OPTIMIZED):
        result = compile_and_run(SOURCE, level)
        if baseline is None:
            baseline = result.total_seconds
        speedup = baseline / result.total_seconds
        print(f"{level.value:12s} {','.join(result.stdout):10s} "
              f"{result.total_seconds * 1e6:8.2f}us "
              f"{result.cpu_seconds * 1e6:7.2f} "
              f"{result.gpu_seconds * 1e6:7.2f} "
              f"{result.comm_seconds * 1e6:7.2f} "
              f"{result.counters.get('htod_copies', 0):7d} "
              f"   ({speedup:4.2f}x)")
    print()
    print("Unoptimized CGCM copies the array to and from the GPU on")
    print("every iteration (cyclic); map promotion hoists the copies")
    print("out of the time loop (acyclic), as in the paper's Listing 4.")


if __name__ == "__main__":
    main()
