#!/usr/bin/env python3
"""A domain-specific walk-through: heat diffusion on a plate.

Shows the public API beyond one-call compile-and-run: inspect the
compile report (which loops became kernels, what the optimizer did),
compare copy counts across levels, and read back the final simulated
memory image of a global.

Run:  python examples/stencil_pipeline.py
"""

import struct

from repro import CgcmCompiler, CgcmConfig, OptLevel

HEAT = r"""
double plate[24][24];
double scratch[24][24];

void diffuse_step(void) {
    for (int i = 1; i < 23; i++)
        for (int j = 1; j < 23; j++)
            scratch[i][j] = plate[i][j]
                + 0.2 * (plate[i - 1][j] + plate[i + 1][j]
                         + plate[i][j - 1] + plate[i][j + 1]
                         - 4.0 * plate[i][j]);
    for (int i = 1; i < 23; i++)
        for (int j = 1; j < 23; j++)
            plate[i][j] = scratch[i][j];
}

int main(void) {
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            plate[i][j] = 20.0;
    /* a hot spot in the middle */
    plate[12][12] = 400.0;
    plate[12][13] = 400.0;
    for (int t = 0; t < 10; t++)
        diffuse_step();
    print_f64(plate[12][12]);
    return 0;
}
"""


def main() -> None:
    for level in (OptLevel.SEQUENTIAL, OptLevel.UNOPTIMIZED,
                  OptLevel.OPTIMIZED):
        compiler = CgcmCompiler(CgcmConfig(opt_level=level))
        report = compiler.compile_source(HEAT, "heat")
        result = compiler.execute(report)
        print(f"--- {level.value} ---")
        if report.doall_kernels:
            print(f"  DOALL kernels : "
                  f"{[k.name for k in report.doall_kernels]}")
            print(f"  map promotion : {report.promoted_loops} loop "
                  f"region(s), {report.promoted_functions} function "
                  f"region(s)")
        print(f"  hotspot temp  : {result.stdout[0]}")
        print(f"  modelled time : {result.total_seconds * 1e6:8.2f}us  "
              f"(cpu {result.cpu_seconds * 1e6:.2f} / "
              f"gpu {result.gpu_seconds * 1e6:.2f} / "
              f"comm {result.comm_seconds * 1e6:.2f})")
        print(f"  HtoD copies   : {result.counters.get('htod_copies', 0)}"
              f"   DtoH copies: {result.counters.get('dtoh_copies', 0)}")
        # Read the final plate out of the simulated memory image.
        plate = struct.unpack("<576d", result.globals_image["plate"])
        centre = plate[12 * 24 + 12]
        edge = plate[1 * 24 + 1]
        print(f"  memory image  : centre={centre:.2f}  edge={edge:.2f}")
        print()


if __name__ == "__main__":
    main()
