"""Fault benchmark: the chaos sweep plus resilience overhead numbers.

For each workload, runs the optimized pipeline once fault-free (the
baseline) and then under a set of seeded fault schedules:

* ``overhead``  -- resilience armed (device heap capped at the full
  arena) but no fault ever fires: measures the pure cost of the
  launch-gate bookkeeping.  This must stay within noise of the
  unarmed run.
* ``transient`` -- seeded alloc/transfer/launch faults at moderate
  rates; every fault is ridden out by bounded retry.
* ``pressure``  -- aggressive fault rates plus a 64 KiB device heap:
  exercises LRU eviction, address-stable restore, and retry together.
* ``tiny-heap`` -- a 4 KiB device heap and no injected faults: most
  units cannot be resident, driving sentinel ranges and CPU-fallback
  launches.

Every schedule must reproduce the baseline observables byte for byte;
divergence is always an error.  The recovery counters (evictions,
restores, refreshes, fallbacks, retries) are the experiment's result.

Exposed as ``python -m repro faultbench`` (writes
``BENCH_faults.json``) and to the test-suite through the
``bench``-marked tests.
"""

from __future__ import annotations

import json
import platform
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.compiler import CgcmCompiler
from ..core.config import CgcmConfig, OptLevel
from ..gpu.faults import FaultPlan
from ..memory.layout import DEVICE_CAPACITY
from ..workloads import ALL_WORKLOADS, Workload

#: Schema tag for BENCH_faults.json (bump on incompatible change).
FAULTBENCH_SCHEMA = "repro-bench-faults/1"

#: Recovery counters worth reporting per run.
RECOVERY_COUNTERS = (
    "injected_alloc_faults", "injected_transfer_faults",
    "injected_launch_faults", "fault_retries", "device_evictions",
    "device_restores", "device_refreshes", "cpu_fallback_launches",
    "sentinel_units",
)

#: Moderate per-call fault rates for the ``transient`` schedule.
CHAOS_RATES = dict(alloc_fail_rate=0.3, transfer_fail_rate=0.15,
                   launch_fail_rate=0.15)


def workload_seed(name: str) -> int:
    """A stable per-workload seed (schedules differ across workloads
    but never across runs)."""
    return zlib.crc32(name.encode("utf-8"))


def fault_schedules(seed: int) -> List[Tuple[str, Dict]]:
    """The named schedules of the sweep, seeded deterministically."""
    return [
        ("overhead", dict(device_heap_limit=DEVICE_CAPACITY)),
        ("transient", dict(faults=FaultPlan(seed=seed, **CHAOS_RATES))),
        # The tight-heap schedules deliberately exercise sentinel and
        # CPU-fallback degradation on units that can never fit, so they
        # opt out of the strict oversized-unit rejection.
        ("pressure", dict(
            faults=FaultPlan(seed=seed + 1, alloc_fail_rate=0.5,
                             transfer_fail_rate=0.3, launch_fail_rate=0.3,
                             max_consecutive=4),
            device_heap_limit=64 << 10, strict_heap_limit=False)),
        ("tiny-heap", dict(device_heap_limit=4 << 10,
                           strict_heap_limit=False)),
    ]


@dataclass
class FaultComparison:
    """One workload under one fault schedule vs its clean baseline."""

    name: str
    schedule: str
    baseline_s: float
    faulted_s: float
    counters: Dict[str, int] = field(default_factory=dict)
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def overhead(self) -> float:
        """Modelled-time ratio of the faulted run over the baseline."""
        if self.baseline_s <= 0:
            return float("inf")
        return self.faulted_s / self.baseline_s


@dataclass
class FaultReport:
    """The whole sweep plus the headline identical-observables count."""

    comparisons: List[FaultComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.comparisons)

    @property
    def identical(self) -> Tuple[int, int]:
        good = sum(1 for c in self.comparisons if c.ok)
        return good, len(self.comparisons)

    @property
    def workloads_identical(self) -> Tuple[int, int]:
        names = {c.name for c in self.comparisons}
        bad = {c.name for c in self.comparisons if not c.ok}
        return len(names) - len(bad), len(names)

    @property
    def max_overhead(self) -> float:
        """Worst no-fault overhead ratio (the ``overhead`` schedule)."""
        rows = [c.overhead for c in self.comparisons
                if c.schedule == "overhead"]
        return max(rows) if rows else 0.0

    def to_json(self) -> Dict:
        good, total = self.identical
        wgood, wtotal = self.workloads_identical
        return {
            "schema": FAULTBENCH_SCHEMA,
            "python": platform.python_version(),
            "identical_runs": f"{good}/{total}",
            "identical_workloads": f"{wgood}/{wtotal}",
            "max_no_fault_overhead": round(self.max_overhead, 6),
            "runs": [
                {
                    "name": c.name,
                    "schedule": c.schedule,
                    "baseline_s": c.baseline_s,
                    "faulted_s": c.faulted_s,
                    "overhead": round(c.overhead, 6),
                    "counters": {k: c.counters.get(k, 0)
                                 for k in RECOVERY_COUNTERS},
                    "mismatches": list(c.mismatches),
                }
                for c in self.comparisons
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def render(self) -> str:
        lines = [f"{'workload':16s} {'schedule':10s} {'overhead':>9s} "
                 f"{'evict':>6s} {'restore':>8s} {'fallback':>9s} "
                 f"{'retries':>8s}"]
        for c in self.comparisons:
            status = "" if c.ok else "  DIVERGED"
            lines.append(
                f"{c.name:16s} {c.schedule:10s} {c.overhead:8.3f}x "
                f"{c.counters.get('device_evictions', 0):6d} "
                f"{c.counters.get('device_restores', 0):8d} "
                f"{c.counters.get('cpu_fallback_launches', 0):9d} "
                f"{c.counters.get('fault_retries', 0):8d}{status}")
        good, total = self.identical
        lines.append(f"identical observables: {good}/{total} runs, "
                     f"max no-fault overhead "
                     f"{self.max_overhead:.3f}x")
        return "\n".join(lines)


def compare_faulted(workload: Workload, schedule_name: str,
                    overrides: Dict,
                    level: OptLevel = OptLevel.OPTIMIZED) -> FaultComparison:
    """Baseline and one faulted run of one workload, with the
    byte-identical-observables contract check."""
    clean = CgcmCompiler(CgcmConfig(opt_level=level))
    clean_result = clean.execute(
        clean.compile_source(workload.source, workload.name))

    faulted = CgcmCompiler(CgcmConfig(opt_level=level, **overrides))
    faulted_result = faulted.execute(
        faulted.compile_source(workload.source, workload.name))

    mismatches: List[str] = []
    if clean_result.observable() != faulted_result.observable():
        mismatches.append(
            f"observables differ under the {schedule_name} schedule")

    return FaultComparison(
        name=workload.name,
        schedule=schedule_name,
        baseline_s=clean_result.total_seconds,
        faulted_s=faulted_result.total_seconds,
        counters=dict(faulted_result.counters),
        mismatches=tuple(mismatches))


def run_fault_bench(workloads: Optional[List[Workload]] = None,
                    level: OptLevel = OptLevel.OPTIMIZED,
                    progress=None) -> FaultReport:
    """The chaos sweep; ``progress`` is an optional per-row callback."""
    if workloads is None:
        workloads = list(ALL_WORKLOADS)
    bench = FaultReport()
    for workload in workloads:
        for schedule_name, overrides in fault_schedules(
                workload_seed(workload.name)):
            comparison = compare_faulted(workload, schedule_name,
                                         overrides, level)
            bench.comparisons.append(comparison)
            if progress is not None:
                progress(comparison)
    return bench
