"""Serve benchmark: throughput and tail latency of the request loop.

Sweeps the serve loop over a grid of cells -- concurrent clients
(10/100/1000, one burst at t=0) x artifact cache (on/off) x shared
read-only mappings (on/off) -- on the built-in mix (three programs
sharing one 4 KiB read-only table, two argument variants each, so six
distinct artifacts).  Every cell reports modelled throughput
(requests/s), p50/p95/p99 tail latency, and the communication and
batching counters.

Correctness rides along as first-class results, per scale:

* **byte identity** -- every served request's observables equal an
  isolated (compile + run, no sharing, no batching) execution of the
  same artifact;
* **sanitizer clean** -- a fully sanitized serve pass (shared-mutation
  checking armed) reports zero violations for every request.

The headline derivations the acceptance criteria read:

* ``speedup_cache_100``: cache-on over cache-off throughput at 100
  clients (sharing on in both) -- the compile-once effect;
* ``h2d_saved_frac_100``: fraction of modelled HtoD bytes elided by
  sharing at 100 clients.

Exposed as ``python -m repro servebench`` (writes
``BENCH_serve.json``) and through the ``bench``-marked tests.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import api
from ..serve import ServeLoop, ServeOptions
from ..serve.mixes import build_mix

#: Schema tag for BENCH_serve.json (bump on incompatible change).
SERVEBENCH_SCHEMA = "repro-bench-serve/1"

#: Concurrent-client scales of the default sweep.
DEFAULT_SCALES = (10, 100, 1000)


def _cell_options(cache: bool, sharing: bool, *,
                  sanitize: bool = False, workers: int = 4,
                  policy: str = "fifo") -> ServeOptions:
    return ServeOptions(workers=workers, policy=policy,
                        cache=cache, sharing=sharing, sanitize=sanitize)


@dataclass
class ServeCell:
    """One (clients, cache, sharing) point of the sweep."""

    clients: int
    cache: bool
    sharing: bool
    throughput_rps: float
    makespan_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    mean_latency_s: float
    htod_bytes: int
    transfer_bytes_saved: int
    shared_attaches: int
    batches: int
    compile_hits: int
    compile_misses: int

    def to_json(self) -> Dict:
        return {
            "clients": self.clients,
            "cache": self.cache,
            "sharing": self.sharing,
            "throughput_rps": round(self.throughput_rps, 1),
            "makespan_s": self.makespan_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "mean_latency_s": self.mean_latency_s,
            "htod_bytes": self.htod_bytes,
            "transfer_bytes_saved": self.transfer_bytes_saved,
            "shared_attaches": self.shared_attaches,
            "batches": self.batches,
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
        }


@dataclass
class ServeBenchReport:
    """The whole sweep plus per-scale verification verdicts."""

    cells: List[ServeCell] = field(default_factory=list)
    #: clients -> all observables byte-identical to isolated runs.
    byte_identity: Dict[int, bool] = field(default_factory=dict)
    #: clients -> fully sanitized pass reported every request clean.
    sanitizer_clean: Dict[int, bool] = field(default_factory=dict)

    def cell(self, clients: int, cache: bool,
             sharing: bool) -> Optional[ServeCell]:
        for c in self.cells:
            if (c.clients, c.cache, c.sharing) == (clients, cache, sharing):
                return c
        return None

    @property
    def ok(self) -> bool:
        return (all(self.byte_identity.values())
                and all(self.sanitizer_clean.values()))

    def speedup_cache(self, clients: int) -> float:
        """Cache-on over cache-off throughput (sharing on)."""
        on = self.cell(clients, True, True)
        off = self.cell(clients, False, True)
        if on is None or off is None or off.throughput_rps <= 0:
            return 0.0
        return on.throughput_rps / off.throughput_rps

    def h2d_saved_frac(self, clients: int) -> float:
        """Fraction of would-be HtoD traffic elided by sharing."""
        cell = self.cell(clients, True, True)
        if cell is None:
            return 0.0
        would_be = cell.htod_bytes + cell.transfer_bytes_saved
        return cell.transfer_bytes_saved / would_be if would_be else 0.0

    def to_json(self) -> Dict:
        scales = sorted({c.clients for c in self.cells})
        return {
            "schema": SERVEBENCH_SCHEMA,
            "python": platform.python_version(),
            "derived": {
                f"speedup_cache_{n}": round(self.speedup_cache(n), 3)
                for n in scales
            } | {
                f"h2d_saved_frac_{n}": round(self.h2d_saved_frac(n), 4)
                for n in scales
            },
            "byte_identity": {str(k): v
                              for k, v in sorted(self.byte_identity.items())},
            "sanitizer_clean": {str(k): v for k, v
                                in sorted(self.sanitizer_clean.items())},
            "cells": [c.to_json() for c in self.cells],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def render(self) -> str:
        lines = [f"{'clients':>7s} {'cache':>6s} {'share':>6s} "
                 f"{'req/s':>10s} {'p50 us':>9s} {'p95 us':>9s} "
                 f"{'p99 us':>9s} {'saved KiB':>10s} {'batches':>8s}"]
        for c in self.cells:
            lines.append(
                f"{c.clients:7d} {'on' if c.cache else 'off':>6s} "
                f"{'on' if c.sharing else 'off':>6s} "
                f"{c.throughput_rps:10.0f} "
                f"{c.latency_p50_s * 1e6:9.1f} "
                f"{c.latency_p95_s * 1e6:9.1f} "
                f"{c.latency_p99_s * 1e6:9.1f} "
                f"{c.transfer_bytes_saved / 1024:10.1f} "
                f"{c.batches:8d}")
        for clients in sorted(self.byte_identity):
            lines.append(
                f"clients={clients}: cache speedup "
                f"{self.speedup_cache(clients):.2f}x, HtoD saved "
                f"{self.h2d_saved_frac(clients) * 100:.1f}%, "
                f"byte-identity "
                f"{'ok' if self.byte_identity[clients] else 'FAILED'}, "
                f"sanitizer "
                f"{'clean' if self.sanitizer_clean.get(clients) else 'DIRTY'}")
        return "\n".join(lines)


def _isolated_observables(requests) -> Dict[str, Tuple]:
    """One isolated (no sharing, no batching, fresh machine) run per
    distinct artifact in the request list."""
    isolated: Dict[str, Tuple] = {}
    for request in requests:
        source, artifact = request.resolve_source()
        if artifact not in isolated:
            workload = api.compile_workload(source, name=artifact)
            isolated[artifact] = workload.run().observable()
    return isolated


def _verify_scale(clients: int, seed: int,
                  report: "ServeBenchReport",
                  served_metrics) -> None:
    requests = build_mix(clients, seed=seed)
    isolated = _isolated_observables(requests)
    report.byte_identity[clients] = all(
        m.status == "ok" and m.observable == isolated[m.artifact]
        for m in served_metrics)
    sanitized = ServeLoop(_cell_options(True, True, sanitize=True)) \
        .run(requests)
    report.sanitizer_clean[clients] = all(
        m.status == "ok" and m.sanitizer_clean is True
        and m.observable == isolated[m.artifact]
        for m in sanitized.metrics)


def run_serve_bench(scales: Sequence[int] = DEFAULT_SCALES,
                    seed: int = 0, verify: bool = True,
                    progress=None) -> ServeBenchReport:
    """The sweep; ``progress`` is an optional per-cell callback."""
    report = ServeBenchReport()
    for clients in scales:
        served_metrics = None
        for cache in (True, False):
            for sharing in (True, False):
                requests = build_mix(clients, seed=seed)
                serve_report = ServeLoop(
                    _cell_options(cache, sharing)).run(requests)
                cell = ServeCell(
                    clients=clients, cache=cache, sharing=sharing,
                    throughput_rps=serve_report.throughput_rps,
                    makespan_s=serve_report.makespan_s,
                    latency_p50_s=serve_report.latency_p50_s,
                    latency_p95_s=serve_report.latency_p95_s,
                    latency_p99_s=serve_report.latency_p99_s,
                    mean_latency_s=serve_report.mean_latency_s,
                    htod_bytes=serve_report.counters.get("htod_bytes", 0),
                    transfer_bytes_saved=serve_report.counters.get(
                        "transfer_bytes_saved", 0),
                    shared_attaches=serve_report.counters.get(
                        "shared_attaches", 0),
                    batches=serve_report.counters.get("batches", 0),
                    compile_hits=serve_report.counters.get(
                        "compile_hits", 0),
                    compile_misses=serve_report.counters.get(
                        "compile_misses", 0),
                )
                report.cells.append(cell)
                if cache and sharing:
                    served_metrics = serve_report.metrics
                if progress is not None:
                    progress(cell)
        if verify and served_metrics is not None:
            _verify_scale(clients, seed, report, served_metrics)
    return report
