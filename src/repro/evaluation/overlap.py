"""Overlap benchmark: serial vs streamed modeled time, all 24 workloads.

For each workload, runs the optimized pipeline twice -- once with the
fully synchronous discipline (the paper's schedules) and once with the
streams subsystem (comm-overlap transform + asynchronous execution) --
and records the serial total against the overlap-aware critical path.
Along the way it asserts the transformation's contract: byte-identical
observables, and a critical path never longer than the serial total.

Exposed as ``python -m repro bench --streams`` (writes
``BENCH_streams.json``) and to the test-suite through the
``bench``-marked tests.  Divergence is always an error; the speedups
themselves are the experiment's result, not a gate.
"""

from __future__ import annotations

import json
import math
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.compiler import CgcmCompiler
from ..core.config import CgcmConfig, OptLevel
from ..workloads import ALL_WORKLOADS, Workload

#: Schema tag for BENCH_streams.json (bump on incompatible change).
OVERLAP_SCHEMA = "repro-bench-streams/1"


@dataclass
class OverlapComparison:
    """Serial vs streamed run of one workload."""

    name: str
    serial_s: float
    critical_path_s: float
    comm_fraction: float
    limiting_factor: str
    overlap_stats: Dict[str, int]
    counters: Dict[str, int] = field(default_factory=dict)
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        if self.critical_path_s <= 0:
            return float("inf")
        return self.serial_s / self.critical_path_s

    @property
    def comm_bound(self) -> bool:
        """Communication-limited in the paper's §6 classification."""
        return self.limiting_factor == "Comm."


@dataclass
class OverlapReport:
    """The whole sweep plus the headline geomeans."""

    comparisons: List[OverlapComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.comparisons)

    def _geomean(self, speedups: List[float]) -> float:
        if not speedups:
            return 0.0
        return math.exp(sum(math.log(s) for s in speedups) / len(speedups))

    @property
    def geomean_speedup(self) -> float:
        return self._geomean([c.speedup for c in self.comparisons if c.ok])

    @property
    def comm_bound_geomean_speedup(self) -> float:
        return self._geomean([c.speedup for c in self.comparisons
                              if c.ok and c.comm_bound])

    def to_json(self) -> Dict:
        return {
            "schema": OVERLAP_SCHEMA,
            "python": platform.python_version(),
            "geomean_speedup": round(self.geomean_speedup, 4),
            "comm_bound_geomean_speedup": round(
                self.comm_bound_geomean_speedup, 4),
            "workloads": [
                {
                    "name": c.name,
                    "serial_s": c.serial_s,
                    "critical_path_s": c.critical_path_s,
                    "speedup": round(c.speedup, 4),
                    "comm_fraction": round(c.comm_fraction, 4),
                    "limiting_factor": c.limiting_factor,
                    "comm_bound": c.comm_bound,
                    "overlap_stats": dict(c.overlap_stats),
                    "counters": {k: c.counters[k] for k in sorted(c.counters)
                                 if k in ("kernel_launches", "htod_copies",
                                          "dtoh_copies")},
                    "mismatches": list(c.mismatches),
                }
                for c in self.comparisons
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def render(self) -> str:
        lines = [f"{'workload':16s} {'serial':>10s} {'overlap':>10s} "
                 f"{'speedup':>8s} {'limit':>6s}"]
        for c in self.comparisons:
            status = "" if c.ok else "  DIVERGED"
            lines.append(
                f"{c.name:16s} {c.serial_s * 1e6:8.2f}us "
                f"{c.critical_path_s * 1e6:8.2f}us "
                f"{c.speedup:7.2f}x {c.limiting_factor:>6s}{status}")
        lines.append(f"{'geomean':16s} {'':10s} {'':10s} "
                     f"{self.geomean_speedup:7.2f}x")
        lines.append(f"{'geomean (comm.)':16s} {'':10s} {'':10s} "
                     f"{self.comm_bound_geomean_speedup:7.2f}x")
        return "\n".join(lines)


def compare_overlap(workload: Workload,
                    level: OptLevel = OptLevel.OPTIMIZED) -> OverlapComparison:
    """Serial and streamed runs of one workload, with contract checks."""
    serial = CgcmCompiler(CgcmConfig(opt_level=level))
    serial_result = serial.execute(
        serial.compile_source(workload.source, workload.name))

    streamed = CgcmCompiler(CgcmConfig(opt_level=level, streams=True))
    streamed_report = streamed.compile_source(workload.source, workload.name)
    streamed_result = streamed.execute(streamed_report)

    mismatches: List[str] = []
    if serial_result.observable() != streamed_result.observable():
        mismatches.append("observables differ between serial and streams")
    if streamed_result.critical_path_seconds \
            > serial_result.total_seconds * (1 + 1e-12):
        mismatches.append(
            f"critical path {streamed_result.critical_path_seconds} "
            f"exceeds serial total {serial_result.total_seconds}")

    total = serial_result.total_seconds
    gpu, comm, cpu = (serial_result.gpu_seconds, serial_result.comm_seconds,
                      serial_result.cpu_seconds)
    if gpu >= comm and gpu >= cpu:
        limiting = "GPU"
    elif comm >= gpu and comm >= cpu:
        limiting = "Comm."
    else:
        limiting = "Other"

    return OverlapComparison(
        name=workload.name,
        serial_s=serial_result.total_seconds,
        critical_path_s=streamed_result.critical_path_seconds,
        comm_fraction=comm / total if total > 0 else 0.0,
        limiting_factor=limiting,
        overlap_stats=dict(streamed_report.overlap_stats),
        counters=dict(streamed_result.counters),
        mismatches=tuple(mismatches))


def run_overlap_bench(workloads: Optional[List[Workload]] = None,
                      level: OptLevel = OptLevel.OPTIMIZED,
                      progress=None) -> OverlapReport:
    """The full sweep; ``progress`` is an optional per-row callback."""
    if workloads is None:
        workloads = list(ALL_WORKLOADS)
    bench = OverlapReport()
    for workload in workloads:
        comparison = compare_overlap(workload, level)
        bench.comparisons.append(comparison)
        if progress is not None:
            progress(comparison)
    return bench
