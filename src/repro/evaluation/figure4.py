"""Figure 4: whole-program speedup over sequential CPU-only execution.

The paper plots, for each of the 24 programs, the speedup of the
idealized inspector-executor, unoptimized CGCM, and optimized CGCM,
plus whole-suite geomeans: 0.92x / 0.71x / 5.36x (and, clamping each
program at 1.0x as the paper also reports, 1.53x / 2.81x / 7.18x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from .runner import BenchmarkResult

SERIES = ("inspector-executor", "unoptimized", "optimized")

#: The paper's reported geomeans (Figure 4 / section 6.3).
PAPER_GEOMEANS = {
    "inspector-executor": 0.92,
    "unoptimized": 0.71,
    "optimized": 5.36,
}
PAPER_GEOMEANS_CLAMPED = {
    "inspector-executor": 1.53,
    "unoptimized": 2.81,
    "optimized": 7.18,
}


@dataclass
class Figure4Row:
    program: str
    suite: str
    speedups: Dict[str, float]


def geomean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def build_figure4(results: Sequence[BenchmarkResult]) -> List[Figure4Row]:
    rows = []
    for result in results:
        rows.append(Figure4Row(
            program=result.workload.name,
            suite=result.workload.suite,
            speedups={series: result.speedup(series) for series in SERIES},
        ))
    return rows


def figure4_geomeans(rows: Sequence[Figure4Row],
                     clamp_at_one: bool = False) -> Dict[str, float]:
    """Whole-suite geomean per series (optionally taking
    ``max(1.0, speedup)`` per program, as the paper also reports)."""
    output = {}
    for series in SERIES:
        values = [row.speedups[series] for row in rows]
        if clamp_at_one:
            values = [max(1.0, v) for v in values]
        output[series] = geomean(values)
    return output


def render_figure4(rows: Sequence[Figure4Row], width: int = 40) -> str:
    """ASCII rendition of Figure 4: one bar group per program."""
    lines: List[str] = []
    header = (f"{'program':17s} {'IE':>7s} {'unopt':>7s} {'opt':>7s}  "
              "speedup over sequential CPU (log scale)")
    lines.append(header)
    max_speedup = max(max(row.speedups.values()) for row in rows)
    scale = width / math.log(max(max_speedup, 2.0) * 1.1)
    glyphs = {"inspector-executor": "i", "unoptimized": "u",
              "optimized": "#"}
    for row in rows:
        ie = row.speedups["inspector-executor"]
        unopt = row.speedups["unoptimized"]
        opt = row.speedups["optimized"]
        lines.append(f"{row.program:17s} {ie:7.2f} {unopt:7.2f} "
                     f"{opt:7.2f}")
        for series in SERIES:
            value = row.speedups[series]
            bar = int(max(0.0, math.log(max(value, 0.02))) * scale)
            marker = glyphs[series]
            lines.append(f"{'':17s} |{marker * max(bar, 1)}"
                         f"{'' if value >= 1 else '  (<1x)'}")
    geo = figure4_geomeans(rows)
    clamped = figure4_geomeans(rows, clamp_at_one=True)
    lines.append("")
    lines.append(
        "geomean      measured: "
        + "  ".join(f"{s}={geo[s]:.2f}x" for s in SERIES))
    lines.append(
        "geomean (>=1) measured: "
        + "  ".join(f"{s}={clamped[s]:.2f}x" for s in SERIES))
    lines.append(
        "geomean      paper   : "
        + "  ".join(f"{s}={PAPER_GEOMEANS[s]:.2f}x" for s in SERIES))
    lines.append(
        "geomean (>=1) paper   : "
        + "  ".join(f"{s}={PAPER_GEOMEANS_CLAMPED[s]:.2f}x"
                    for s in SERIES))
    return "\n".join(lines)
