"""Table 3: program characteristics, paper versus measured.

Per program: suite, limiting factor, GPU%% and communication%% of total
execution time (unoptimized and optimized), kernel count, and per-
technique applicability counts (CGCM / inspector-executor / named
regions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .runner import BenchmarkResult


@dataclass
class Table3Row:
    program: str
    suite: str
    limiting_factor: str
    gpu_pct_unopt: float
    gpu_pct_opt: float
    comm_pct_unopt: float
    comm_pct_opt: float
    kernels: int
    applicable_cgcm: int
    applicable_inspector_executor: int
    applicable_named_regions: int


def build_table3(results: Sequence[BenchmarkResult]) -> List[Table3Row]:
    rows = []
    for result in results:
        gpu_unopt, comm_unopt, _ = result.breakdown("unoptimized")
        gpu_opt, comm_opt, _ = result.breakdown("optimized")
        applicability = result.applicability
        rows.append(Table3Row(
            program=result.workload.name,
            suite=result.workload.suite,
            limiting_factor=result.limiting_factor,
            gpu_pct_unopt=gpu_unopt,
            gpu_pct_opt=gpu_opt,
            comm_pct_unopt=comm_unopt,
            comm_pct_opt=comm_opt,
            kernels=applicability.total_kernels,
            applicable_cgcm=applicability.cgcm,
            applicable_inspector_executor=(
                applicability.inspector_executor),
            applicable_named_regions=applicability.named_regions,
        ))
    return rows


def render_table3(rows: Sequence[Table3Row],
                  paper_reference: bool = True) -> str:
    lines = [
        f"{'program':16s} {'suite':10s} {'limit':6s} "
        f"{'GPU%u':>7s} {'GPU%o':>7s} {'Comm%u':>7s} {'Comm%o':>7s} "
        f"{'K':>3s} {'CGCM':>5s} {'IE':>4s} {'NR':>4s}"
    ]
    for row in rows:
        lines.append(
            f"{row.program:16s} {row.suite:10s} {row.limiting_factor:6s} "
            f"{row.gpu_pct_unopt:7.2f} {row.gpu_pct_opt:7.2f} "
            f"{row.comm_pct_unopt:7.2f} {row.comm_pct_opt:7.2f} "
            f"{row.kernels:3d} {row.applicable_cgcm:5d} "
            f"{row.applicable_inspector_executor:4d} "
            f"{row.applicable_named_regions:4d}")
    return "\n".join(lines)


def render_table3_comparison(results: Sequence[BenchmarkResult]) -> str:
    """Side-by-side: measured vs the paper's published Table 3 cells."""
    lines = [
        f"{'program':16s} {'limit (meas/paper)':22s} "
        f"{'GPU%opt (m/p)':>16s} {'Comm%opt (m/p)':>16s} "
        f"{'kernels (m/p)':>14s}"
    ]
    for result in results:
        paper = result.workload.paper
        gpu_opt = result.breakdown("optimized")[0]
        comm_opt = result.breakdown("optimized")[1]
        lines.append(
            f"{result.workload.name:16s} "
            f"{result.limiting_factor + ' / ' + paper.limiting_factor:22s} "
            f"{gpu_opt:7.1f}/{paper.gpu_pct[1]:6.1f}  "
            f"{comm_opt:7.1f}/{paper.comm_pct[1]:6.1f}  "
            f"{result.applicability.total_kernels:5d}/{paper.kernels:4d}")
    return "\n".join(lines)
