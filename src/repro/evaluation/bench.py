"""Interpreter benchmark: the three execution engines, head to head.

Runs the full 24-workload sweep under the tree-walking reference
interpreter, the closure compiler (``compiled``), and the source
codegen engine (``source``), asserting along the way that every
engine is observationally identical to the tree-walker -- same
stdout, exit code, final global bytes, dynamic instruction count,
and *exactly* equal simulated-clock totals -- and records the
wall-clock numbers as the repo's perf trajectory in
``BENCH_interp.json``.

Timing discipline: each engine runs ``repeat`` times per workload
and the **median** wall-clock is kept (with the min/max spread
recorded per workload), so one cold run or scheduler hiccup cannot
skew the headline number; the cyclic GC is paused inside the timed
region (and run to completion just before it, ``timeit``-style) so
garbage from one engine's run is never billed to the next.  The headline ``geomean_speedup`` is the
source engine versus the tree-walker.

Exposed as ``python -m repro bench`` (no workload arguments) and to
the test-suite through the ``bench``-marked tests in
``tests/bench/``.  Divergence between the engines is always an
error; raw speed never gates CI.
"""

from __future__ import annotations

import gc
import json
import math
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.compiler import CgcmCompiler, ExecutionResult
from ..core.config import CgcmConfig, OptLevel
from ..workloads import ALL_WORKLOADS, Workload

#: Schema tag for BENCH_interp.json (bump on incompatible change).
BENCH_SCHEMA = "repro-bench-interp/2"

#: Engines the sweep measures; the tree-walker is the baseline and
#: oracle, the last entry is the headline fast engine.
BENCH_ENGINES = ("tree", "compiled", "source")


@dataclass
class EngineComparison:
    """All engines' runs of one workload, with the timing numbers."""

    name: str
    level: str
    #: Median wall-clock per engine over the sweep's repeats.
    wall_s: Dict[str, float]
    #: (min, max) wall-clock spread per engine.
    spread_s: Dict[str, Tuple[float, float]]
    instructions: int
    sim_seconds: float
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def speedup_of(self, engine: str) -> float:
        """Tree-walker wall-clock over ``engine``'s (median over
        median)."""
        wall = self.wall_s[engine]
        if wall <= 0:
            return float("inf")
        return self.wall_s["tree"] / wall

    @property
    def speedup(self) -> float:
        """The headline ratio: tree over the source engine."""
        return self.speedup_of("source")

    def insts_per_s(self, engine: str) -> float:
        wall = self.wall_s[engine]
        if wall <= 0:
            return float("inf")
        return self.instructions / wall


@dataclass
class BenchReport:
    """The whole sweep: per-workload comparisons plus the geomean."""

    level: str
    repeat: int
    comparisons: List[EngineComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.comparisons)

    def geomean_of(self, engine: str) -> float:
        speedups = [c.speedup_of(engine) for c in self.comparisons
                    if c.ok]
        if not speedups:
            return 0.0
        return math.exp(sum(math.log(s) for s in speedups)
                        / len(speedups))

    @property
    def geomean_speedup(self) -> float:
        """The headline geomean: source engine over the tree-walker."""
        return self.geomean_of("source")

    def to_json(self) -> Dict:
        return {
            "schema": BENCH_SCHEMA,
            "level": self.level,
            "engine": "source",
            "engines": list(BENCH_ENGINES),
            "repeat": self.repeat,
            "python": platform.python_version(),
            "geomean_speedup": round(self.geomean_speedup, 4),
            "geomean_speedup_compiled": round(
                self.geomean_of("compiled"), 4),
            "workloads": [
                {
                    "name": c.name,
                    "wall_s": {engine: round(c.wall_s[engine], 6)
                               for engine in BENCH_ENGINES},
                    "spread_s": {
                        engine: [round(c.spread_s[engine][0], 6),
                                 round(c.spread_s[engine][1], 6)]
                        for engine in BENCH_ENGINES},
                    "speedup": round(c.speedup, 4),
                    "speedup_compiled": round(
                        c.speedup_of("compiled"), 4),
                    "instructions": c.instructions,
                    "source_insts_per_s": round(
                        c.insts_per_s("source")),
                    "sim_seconds": c.sim_seconds,
                    "mismatches": list(c.mismatches),
                }
                for c in self.comparisons
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def render(self) -> str:
        lines = [f"{'workload':16s} {'tree':>9s} {'compiled':>9s} "
                 f"{'source':>9s} {'speedup':>8s} {'Minsts/s':>9s}"]
        for c in self.comparisons:
            status = "" if c.ok else "  DIVERGED"
            lines.append(
                f"{c.name:16s} {c.wall_s['tree']:8.3f}s "
                f"{c.wall_s['compiled']:8.3f}s "
                f"{c.wall_s['source']:8.3f}s "
                f"{c.speedup:7.2f}x "
                f"{c.insts_per_s('source') / 1e6:9.2f}{status}")
        lines.append(f"{'geomean':16s} {'':9s} "
                     f"{self.geomean_of('compiled'):8.2f}x "
                     f"{'':9s} {self.geomean_speedup:7.2f}x")
        return "\n".join(lines)


def compare_engines(result_tree: ExecutionResult,
                    result_other: ExecutionResult) -> Tuple[str, ...]:
    """Every observable difference between two engines' runs (the
    first argument is the tree-walker oracle)."""
    mismatches: List[str] = []
    if result_tree.exit_code != result_other.exit_code:
        mismatches.append(
            f"exit code: tree {result_tree.exit_code}, "
            f"other {result_other.exit_code}")
    if result_tree.stdout != result_other.stdout:
        mismatches.append("stdout differs")
    if result_tree.globals_image != result_other.globals_image:
        names = sorted(
            name for name in set(result_tree.globals_image)
            | set(result_other.globals_image)
            if result_tree.globals_image.get(name)
            != result_other.globals_image.get(name))
        mismatches.append(f"final global bytes differ: {names}")
    tree_clock = (result_tree.cpu_seconds, result_tree.gpu_seconds,
                  result_tree.comm_seconds)
    other_clock = (result_other.cpu_seconds,
                   result_other.gpu_seconds,
                   result_other.comm_seconds)
    if tree_clock != other_clock:
        mismatches.append(f"simulated clock: tree {tree_clock}, "
                          f"other {other_clock}")
    if result_tree.counters != result_other.counters:
        mismatches.append("clock counters differ")
    if result_tree.instructions != result_other.instructions:
        mismatches.append(
            f"instruction count: tree {result_tree.instructions}, "
            f"other {result_other.instructions}")
    return tuple(mismatches)


def bench_workload(workload: Workload,
                   level: OptLevel = OptLevel.OPTIMIZED,
                   repeat: int = 1) -> EngineComparison:
    """Compile once, run under every engine, time the executions.

    Each engine runs ``repeat`` times; the median wall-clock is kept
    and the min/max spread recorded.  The equivalence checks run on
    every non-tree run against the tree-walker's result.
    """
    compiler = CgcmCompiler(CgcmConfig(opt_level=level))
    report = compiler.compile_source(workload.source, workload.name)
    repeat = max(1, repeat)
    walls: Dict[str, List[float]] = {e: [] for e in BENCH_ENGINES}
    results: Dict[str, ExecutionResult] = {}
    mismatches: Tuple[str, ...] = ()
    gc_was_enabled = gc.isenabled()
    for engine in BENCH_ENGINES:
        for _ in range(repeat):
            # timeit's discipline: collect outside the timed region,
            # pause the collector inside it, so garbage carried over
            # from a previous engine's run cannot bill a GC pause to
            # this one.
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                result = compiler.execute(report, engine=engine)
                walls[engine].append(time.perf_counter() - start)
            finally:
                if gc_was_enabled:
                    gc.enable()
            results[engine] = result
            if engine != "tree":
                found = compare_engines(results["tree"], result)
                if found and not mismatches:
                    mismatches = tuple(f"{engine}: {m}" for m in found)
    tree_result = results["tree"]
    return EngineComparison(
        name=workload.name, level=level.value,
        wall_s={e: statistics.median(walls[e]) for e in BENCH_ENGINES},
        spread_s={e: (min(walls[e]), max(walls[e]))
                  for e in BENCH_ENGINES},
        instructions=tree_result.instructions,
        sim_seconds=tree_result.total_seconds,
        mismatches=mismatches)


def run_engine_bench(workloads: Optional[List[Workload]] = None,
                     level: OptLevel = OptLevel.OPTIMIZED,
                     repeat: int = 1,
                     progress=None) -> BenchReport:
    """The full sweep; ``progress`` is an optional per-row callback."""
    if workloads is None:
        workloads = list(ALL_WORKLOADS)
    bench = BenchReport(level=level.value, repeat=repeat)
    for workload in workloads:
        comparison = bench_workload(workload, level, repeat)
        bench.comparisons.append(comparison)
        if progress is not None:
            progress(comparison)
    return bench
