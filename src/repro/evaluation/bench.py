"""Interpreter benchmark: tree-walker vs. closure-compiled engine.

Runs the full 24-workload sweep under both execution engines,
asserting along the way that they are observationally identical --
same stdout, exit code, final global bytes, dynamic instruction
count, and *exactly* equal simulated-clock totals -- and records the
wall-clock numbers as the repo's perf trajectory in
``BENCH_interp.json``.

Exposed as ``python -m repro bench`` (no workload arguments) and to
the test-suite through the ``bench``-marked tests in
``tests/bench/``.  Divergence between the engines is always an
error; raw speed never gates CI.
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.compiler import CgcmCompiler, ExecutionResult
from ..core.config import CgcmConfig, OptLevel
from ..workloads import ALL_WORKLOADS, Workload

#: Schema tag for BENCH_interp.json (bump on incompatible change).
BENCH_SCHEMA = "repro-bench-interp/1"


@dataclass
class EngineComparison:
    """Both engines' runs of one workload, with the timing numbers."""

    name: str
    level: str
    tree_wall_s: float
    compiled_wall_s: float
    instructions: int
    sim_seconds: float
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        if self.compiled_wall_s <= 0:
            return float("inf")
        return self.tree_wall_s / self.compiled_wall_s

    def insts_per_s(self, engine: str) -> float:
        wall = self.tree_wall_s if engine == "tree" else self.compiled_wall_s
        if wall <= 0:
            return float("inf")
        return self.instructions / wall


@dataclass
class BenchReport:
    """The whole sweep: per-workload comparisons plus the geomean."""

    level: str
    repeat: int
    comparisons: List[EngineComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.comparisons)

    @property
    def geomean_speedup(self) -> float:
        speedups = [c.speedup for c in self.comparisons if c.ok]
        if not speedups:
            return 0.0
        return math.exp(sum(math.log(s) for s in speedups) / len(speedups))

    def to_json(self) -> Dict:
        return {
            "schema": BENCH_SCHEMA,
            "level": self.level,
            "repeat": self.repeat,
            "python": platform.python_version(),
            "geomean_speedup": round(self.geomean_speedup, 4),
            "workloads": [
                {
                    "name": c.name,
                    "tree_wall_s": round(c.tree_wall_s, 6),
                    "compiled_wall_s": round(c.compiled_wall_s, 6),
                    "speedup": round(c.speedup, 4),
                    "instructions": c.instructions,
                    "tree_insts_per_s": round(c.insts_per_s("tree")),
                    "compiled_insts_per_s": round(
                        c.insts_per_s("compiled")),
                    "sim_seconds": c.sim_seconds,
                    "mismatches": list(c.mismatches),
                }
                for c in self.comparisons
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def render(self) -> str:
        lines = [f"{'workload':16s} {'tree':>9s} {'compiled':>9s} "
                 f"{'speedup':>8s} {'Minsts/s':>9s}"]
        for c in self.comparisons:
            status = "" if c.ok else "  DIVERGED"
            lines.append(
                f"{c.name:16s} {c.tree_wall_s:8.3f}s {c.compiled_wall_s:8.3f}s "
                f"{c.speedup:7.2f}x {c.insts_per_s('compiled') / 1e6:9.2f}"
                f"{status}")
        lines.append(f"{'geomean':16s} {'':9s} {'':9s} "
                     f"{self.geomean_speedup:7.2f}x")
        return "\n".join(lines)


def compare_engines(result_tree: ExecutionResult,
                    result_compiled: ExecutionResult) -> Tuple[str, ...]:
    """Every observable difference between the two engines' runs."""
    mismatches: List[str] = []
    if result_tree.exit_code != result_compiled.exit_code:
        mismatches.append(
            f"exit code: tree {result_tree.exit_code}, "
            f"compiled {result_compiled.exit_code}")
    if result_tree.stdout != result_compiled.stdout:
        mismatches.append("stdout differs")
    if result_tree.globals_image != result_compiled.globals_image:
        names = sorted(
            name for name in set(result_tree.globals_image)
            | set(result_compiled.globals_image)
            if result_tree.globals_image.get(name)
            != result_compiled.globals_image.get(name))
        mismatches.append(f"final global bytes differ: {names}")
    tree_clock = (result_tree.cpu_seconds, result_tree.gpu_seconds,
                  result_tree.comm_seconds)
    compiled_clock = (result_compiled.cpu_seconds,
                      result_compiled.gpu_seconds,
                      result_compiled.comm_seconds)
    if tree_clock != compiled_clock:
        mismatches.append(f"simulated clock: tree {tree_clock}, "
                          f"compiled {compiled_clock}")
    if result_tree.counters != result_compiled.counters:
        mismatches.append("clock counters differ")
    if result_tree.instructions != result_compiled.instructions:
        mismatches.append(
            f"instruction count: tree {result_tree.instructions}, "
            f"compiled {result_compiled.instructions}")
    return tuple(mismatches)


def bench_workload(workload: Workload,
                   level: OptLevel = OptLevel.OPTIMIZED,
                   repeat: int = 1) -> EngineComparison:
    """Compile once, run under both engines, time the executions.

    Wall-clock per engine is the minimum over ``repeat`` runs (the
    standard noise-robust estimator); the equivalence checks run on
    every pair.
    """
    compiler = CgcmCompiler(CgcmConfig(opt_level=level))
    report = compiler.compile_source(workload.source, workload.name)
    walls = {"tree": float("inf"), "compiled": float("inf")}
    results: Dict[str, ExecutionResult] = {}
    mismatches: Tuple[str, ...] = ()
    for _ in range(max(1, repeat)):
        for engine in ("tree", "compiled"):
            start = time.perf_counter()
            result = compiler.execute(report, engine=engine)
            wall = time.perf_counter() - start
            walls[engine] = min(walls[engine], wall)
            results[engine] = result
        found = compare_engines(results["tree"], results["compiled"])
        if found and not mismatches:
            mismatches = found
    tree_result = results["tree"]
    return EngineComparison(
        name=workload.name, level=level.value,
        tree_wall_s=walls["tree"], compiled_wall_s=walls["compiled"],
        instructions=tree_result.instructions,
        sim_seconds=tree_result.total_seconds,
        mismatches=mismatches)


def run_engine_bench(workloads: Optional[List[Workload]] = None,
                     level: OptLevel = OptLevel.OPTIMIZED,
                     repeat: int = 1,
                     progress=None) -> BenchReport:
    """The full sweep; ``progress`` is an optional per-row callback."""
    if workloads is None:
        workloads = list(ALL_WORKLOADS)
    bench = BenchReport(level=level.value, repeat=repeat)
    for workload in workloads:
        comparison = bench_workload(workload, level, repeat)
        bench.comparisons.append(comparison)
        if progress is not None:
            progress(comparison)
    return bench
