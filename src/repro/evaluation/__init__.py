"""Evaluation harness: regenerates the paper's figures and tables."""

from .bench import (BENCH_SCHEMA, BenchReport, EngineComparison,
                    bench_workload, compare_engines, run_engine_bench)
from .faultbench import (FAULTBENCH_SCHEMA, FaultComparison, FaultReport,
                         compare_faulted, fault_schedules, run_fault_bench,
                         workload_seed)
from .overlap import (OVERLAP_SCHEMA, OverlapComparison, OverlapReport,
                      compare_overlap, run_overlap_bench)
from .runner import (BenchmarkResult, CONFIGURATIONS, run_all,
                     run_benchmark)
from .figure4 import (Figure4Row, PAPER_GEOMEANS, PAPER_GEOMEANS_CLAMPED,
                      SERIES, build_figure4, figure4_geomeans, geomean,
                      render_figure4)
from .table1 import (FEATURE_PROGRAMS, TABLE1, Table1Row,
                     demonstrate_cgcm, render_table1)
from .table3 import (Table3Row, build_table3, render_table3,
                     render_table3_comparison)
from .figure2 import (SCHEDULE_WORKLOAD, Schedule, build_schedules,
                      render_figure2)

__all__ = [
    "BENCH_SCHEMA", "BenchReport", "EngineComparison", "bench_workload",
    "compare_engines", "run_engine_bench",
    "OVERLAP_SCHEMA", "OverlapComparison", "OverlapReport",
    "compare_overlap", "run_overlap_bench",
    "FAULTBENCH_SCHEMA", "FaultComparison", "FaultReport",
    "compare_faulted", "fault_schedules", "run_fault_bench",
    "workload_seed",
    "BenchmarkResult", "CONFIGURATIONS", "run_all", "run_benchmark",
    "Figure4Row", "PAPER_GEOMEANS", "PAPER_GEOMEANS_CLAMPED", "SERIES",
    "build_figure4", "figure4_geomeans", "geomean", "render_figure4",
    "FEATURE_PROGRAMS", "TABLE1", "Table1Row", "demonstrate_cgcm",
    "render_table1", "Table3Row", "build_table3", "render_table3",
    "render_table3_comparison", "SCHEDULE_WORKLOAD", "Schedule",
    "build_schedules", "render_figure2",
]
