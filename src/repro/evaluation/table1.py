"""Table 1: comparison between communication systems.

The paper's feature matrix contrasts JCUDA, named regions, the affine
technique, inspector-executor, and CGCM along: communication
optimization, required annotations, applicability (aliasing pointers,
irregular accesses, weak type systems, pointer arithmetic, max
indirection), and acyclic communication.

The static rows reproduce the published matrix; ``demonstrate_cgcm``
*executes* a micro-program for each applicability axis through the full
CGCM pipeline, proving the claimed cells rather than asserting them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.compiler import CgcmCompiler
from ..core.config import CgcmConfig, OptLevel


@dataclass(frozen=True)
class Table1Row:
    framework: str
    optimizes_communication: bool
    requires_annotations: bool
    aliasing_pointers: bool
    irregular_accesses: bool
    weak_type_systems: bool
    pointer_arithmetic: bool
    max_indirection: int
    acyclic_communication: str


#: The published matrix (paper Table 1).
TABLE1 = (
    Table1Row("JCUDA", False, True, True, True, False, False, 8, "No"),
    Table1Row("Named Regions", False, True, True, False, True, False, 1,
              "No"),
    Table1Row("Affine", False, True, True, False, False, True, 1,
              "With Annotation"),
    Table1Row("Inspector-Executor", False, True, False, True, True,
              False, 1, "No"),
    Table1Row("CGCM", True, False, True, True, True, True, 2,
              "After Optimization"),
)


#: Micro-programs exercising each applicability axis of Table 1.  Each
#: prints a checksum; CGCM must compile and run every one of them with
#: results identical to sequential execution.
FEATURE_PROGRAMS: Dict[str, str] = {
    "aliasing_pointers": r"""
        double data[32];
        __global__ void bump(long tid, double *a, double *b) {
            a[tid] = a[tid] + b[tid + 16];
        }
        int main(void) {
            for (int i = 0; i < 32; i++) data[i] = i;
            double *lo = data;        /* two aliasing views of one */
            double *hi = data;        /* allocation unit            */
            __launch(bump, 16, lo, hi);
            double s = 0.0;
            for (int i = 0; i < 32; i++) s += data[i];
            print_f64(s);
            return 0;
        }
    """,
    "irregular_accesses": r"""
        double values[32];
        double gathered[16];
        long index[16];
        __global__ void gather(long tid, double *out) {
            out[tid] = values[index[tid]];
        }
        int main(void) {
            for (int i = 0; i < 32; i++) values[i] = i * 1.5;
            for (int i = 0; i < 16; i++) index[i] = (i * 7 + 3) % 32;
            __launch(gather, 16, gathered);
            double s = 0.0;
            for (int i = 0; i < 16; i++) s += gathered[i];
            print_f64(s);
            return 0;
        }
    """,
    "weak_type_systems": r"""
        double payload[16];
        __global__ void poke(long tid, long disguised) {
            /* the pointer arrives as a long; usage reveals the type */
            double *p = (double *) disguised;
            p[tid] = p[tid] * 2.0;
        }
        int main(void) {
            for (int i = 0; i < 16; i++) payload[i] = i + 1;
            __launch(poke, 16, (long) payload);
            double s = 0.0;
            for (int i = 0; i < 16; i++) s += payload[i];
            print_f64(s);
            return 0;
        }
    """,
    "pointer_arithmetic": r"""
        double block[48];
        __global__ void shift(long tid, double *mid) {
            /* interior pointer, negative and positive offsets */
            mid[tid - 8] = mid[tid] + *(mid + tid - 16);
        }
        int main(void) {
            for (int i = 0; i < 48; i++) block[i] = i * 0.5;
            double *interior = block + 16;
            __launch(shift, 16, interior);
            double s = 0.0;
            for (int i = 0; i < 48; i++) s += block[i];
            print_f64(s);
            return 0;
        }
    """,
    "double_indirection": r"""
        char *rows[8];
        __global__ void fill(long tid, char **rs) {
            char *row = rs[tid];
            for (int i = 0; i < 4; i++) row[i] = (char) (tid + i);
        }
        int main(void) {
            for (int r = 0; r < 8; r++)
                rows[r] = (char *) malloc(8);
            __launch(fill, 8, rows);
            long s = 0;
            for (int r = 0; r < 8; r++)
                for (int i = 0; i < 4; i++) s += rows[r][i];
            print_i64(s);
            return 0;
        }
    """,
}


def demonstrate_cgcm() -> Dict[str, bool]:
    """Run each feature micro-program under unoptimized and optimized
    CGCM; True means CGCM managed the feature's communication and the
    optimizations preserved the observable output.

    (These programs launch kernels explicitly, so there is no CPU-only
    configuration to compare against: managed-vs-managed is the claim
    Table 1 makes.)
    """
    outcome: Dict[str, bool] = {}
    for feature, source in FEATURE_PROGRAMS.items():
        unopt = CgcmCompiler(CgcmConfig(opt_level=OptLevel.UNOPTIMIZED))
        opt = CgcmCompiler(CgcmConfig(opt_level=OptLevel.OPTIMIZED))
        try:
            unopt_result = unopt.execute(
                unopt.compile_source(source, feature))
            opt_result = opt.execute(opt.compile_source(source, feature))
            outcome[feature] = (bool(unopt_result.stdout)
                                and unopt_result.stdout
                                == opt_result.stdout)
        except Exception:
            outcome[feature] = False
    return outcome


def render_table1() -> str:
    headers = ["Framework", "Opt.", "Annot.", "Alias", "Irreg.", "Weak",
               "PtrArith", "MaxInd", "Acyclic"]
    lines = ["  ".join(f"{h:>18s}" if i == 0 else f"{h:>8s}"
                       for i, h in enumerate(headers))]
    for row in TABLE1:
        cells = [
            f"{row.framework:>18s}",
            f"{'yes' if row.optimizes_communication else 'no':>8s}",
            f"{'yes' if row.requires_annotations else 'no':>8s}",
            f"{'yes' if row.aliasing_pointers else 'no':>8s}",
            f"{'yes' if row.irregular_accesses else 'no':>8s}",
            f"{'yes' if row.weak_type_systems else 'no':>8s}",
            f"{'yes' if row.pointer_arithmetic else 'no':>8s}",
            f"{row.max_indirection:>8d}",
            f"{row.acyclic_communication:>8s}",
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)
