"""Multi-GPU benchmark: device-count sweep with byte-identity checks.

For each workload and each device count, runs the optimized streams
pipeline under an N-device topology and compares it against the
single-device streams baseline: observables must be byte-identical
(the eager-data model makes N-device placement purely a scheduling
decision, and this sweep is the empirical check of that claim), and
the overlap-aware critical path gives the modeled speedup.

Exposed as ``python -m repro multibench`` (writes
``BENCH_multigpu.json``).  Divergence is always an error; the
speedups are the experiment's result, not a gate.
"""

from __future__ import annotations

import json
import math
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.config import CgcmConfig, OptLevel
from ..gpu.topology import Topology
from ..workloads import ALL_WORKLOADS, Workload

#: Schema tag for BENCH_multigpu.json (bump on incompatible change).
MULTIGPU_SCHEMA = "repro-bench-multigpu/1"

#: Device counts swept by default (1 is the baseline itself).
DEFAULT_DEVICE_COUNTS = (1, 2, 4, 8)

#: Counters worth keeping per cell.
_KEPT_COUNTERS = ("p2p_copies", "p2p_bytes", "multi_device_launches",
                  "sharded_launches", "multigpu_placements")


@dataclass
class MultiGpuCell:
    """One workload under one device count."""

    name: str
    devices: int
    topology: str
    baseline_s: float
    critical_path_s: float
    counters: Dict[str, int] = field(default_factory=dict)
    mismatches: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def speedup(self) -> float:
        if self.critical_path_s <= 0:
            return float("inf")
        return self.baseline_s / self.critical_path_s


@dataclass
class MultiGpuReport:
    """The whole device-count sweep plus per-count geomeans."""

    topology: str
    device_counts: Tuple[int, ...]
    cells: List[MultiGpuCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cells)

    def _geomean(self, speedups: List[float]) -> float:
        if not speedups:
            return 0.0
        return math.exp(sum(math.log(s) for s in speedups) / len(speedups))

    def geomean(self, devices: int) -> float:
        return self._geomean([c.speedup for c in self.cells
                              if c.ok and c.devices == devices])

    def best(self, devices: int) -> Optional[MultiGpuCell]:
        cells = [c for c in self.cells if c.ok and c.devices == devices]
        return max(cells, key=lambda c: c.speedup) if cells else None

    def to_json(self) -> Dict:
        return {
            "schema": MULTIGPU_SCHEMA,
            "python": platform.python_version(),
            "topology": self.topology,
            "device_counts": list(self.device_counts),
            "geomeans": {str(n): round(self.geomean(n), 4)
                         for n in self.device_counts},
            "cells": [
                {
                    "name": c.name,
                    "devices": c.devices,
                    "topology": c.topology,
                    "baseline_s": c.baseline_s,
                    "critical_path_s": c.critical_path_s,
                    "speedup": round(c.speedup, 4),
                    "identical": c.ok,
                    "counters": {k: c.counters[k]
                                 for k in sorted(c.counters)},
                    "mismatches": list(c.mismatches),
                }
                for c in self.cells
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    def render(self) -> str:
        counts = [n for n in self.device_counts if n > 1]
        header = f"{'workload':16s}" + "".join(
            f" {f'{n}dev':>8s}" for n in counts)
        lines = [header]
        names: List[str] = []
        for cell in self.cells:
            if cell.name not in names:
                names.append(cell.name)
        by_key = {(c.name, c.devices): c for c in self.cells}
        for name in names:
            row = f"{name:16s}"
            for n in counts:
                cell = by_key.get((name, n))
                if cell is None:
                    row += f" {'-':>8s}"
                else:
                    row += (f" {cell.speedup:7.2f}x"
                            if cell.ok else f" {'DIVERGE':>8s}")
            lines.append(row)
        row = f"{'geomean':16s}"
        for n in counts:
            row += f" {self.geomean(n):7.2f}x"
        lines.append(row)
        return "\n".join(lines)


def run_multigpu_bench(workloads: Optional[List[Workload]] = None,
                       device_counts: Tuple[int, ...] = DEFAULT_DEVICE_COUNTS,
                       topology_kind: str = "full",
                       level: OptLevel = OptLevel.OPTIMIZED,
                       progress=None) -> MultiGpuReport:
    """The sweep; ``progress`` is an optional per-cell callback.

    Every multi-device cell is checked byte-identical against the
    single-device streams baseline of the same workload.  A device
    count of 1 reuses the baseline itself (speedup exactly 1.0) so
    the report always contains the reference row.
    """
    from .. import api

    if workloads is None:
        workloads = list(ALL_WORKLOADS)
    report = MultiGpuReport(topology_kind, tuple(device_counts))
    for workload in workloads:
        base = api.compile_workload(
            workload.source, CgcmConfig(opt_level=level, streams=True),
            name=workload.name).run()
        base_cp = base.critical_path_seconds
        for n in device_counts:
            if n <= 1:
                cell = MultiGpuCell(workload.name, 1, "single",
                                    base_cp, base_cp)
            else:
                topo = Topology.build(topology_kind, n)
                result = api.compile_workload(
                    workload.source,
                    CgcmConfig(opt_level=level, topology=topo),
                    name=workload.name).run()
                mismatches: List[str] = []
                if base.observable() != result.observable():
                    mismatches.append(
                        f"observables differ between 1 and {n} devices")
                cell = MultiGpuCell(
                    workload.name, n, topo.kind, base_cp,
                    result.critical_path_seconds,
                    counters={k: result.counters.get(k, 0)
                              for k in _KEPT_COUNTERS},
                    mismatches=tuple(mismatches))
            report.cells.append(cell)
            if progress is not None:
                progress(cell)
    return report
