"""Per-benchmark evaluation runner: the four configurations of §6.

For one workload, runs

* ``sequential``         -- the untransformed CPU-only program (the
  paper's baseline: "best sequential CPU-only execution"),
* ``inspector-executor`` -- DOALL parallelization with the idealized
  IE communication model,
* ``unoptimized``        -- DOALL + CGCM communication management,
* ``optimized``          -- management + glue kernels, alloca
  promotion, map promotion,

checks that all four produce identical observable output, and returns
the modelled timing breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..baselines.applicability import ProgramApplicability, analyze_module
from ..baselines.inspector_executor import InspectorExecutorMachine
from ..core.compiler import CgcmCompiler, CompileReport, ExecutionResult
from ..core.config import CgcmConfig, OptLevel
from ..errors import ReproError
from ..frontend import compile_minic
from ..gpu.timing import CostModel
from ..transforms import DoallParallelizer
from ..workloads import Workload

CONFIGURATIONS = ("sequential", "inspector-executor", "unoptimized",
                  "optimized")


@dataclass
class BenchmarkResult:
    """Everything measured for one workload."""

    workload: Workload
    results: Dict[str, ExecutionResult]
    kernel_count: int
    glue_kernel_count: int
    applicability: ProgramApplicability

    def speedup(self, configuration: str) -> float:
        """Whole-program speedup over sequential CPU-only execution."""
        baseline = self.results["sequential"].total_seconds
        return baseline / self.results[configuration].total_seconds

    def breakdown(self, configuration: str) -> Tuple[float, float, float]:
        """(gpu%, comm%, cpu%) of total time, as percentages."""
        result = self.results[configuration]
        total = result.total_seconds
        if total <= 0:
            return (0.0, 0.0, 0.0)
        return (100.0 * result.gpu_seconds / total,
                100.0 * result.comm_seconds / total,
                100.0 * result.cpu_seconds / total)

    @property
    def limiting_factor(self) -> str:
        """The paper's classification: GPU, Comm., or Other (CPU/IO),
        judged on the optimized configuration."""
        gpu, comm, cpu = self.breakdown("optimized")
        if gpu >= comm and gpu >= cpu:
            return "GPU"
        if comm >= gpu and comm >= cpu:
            return "Comm."
        return "Other"


def run_benchmark(workload: Workload,
                  cost_model: Optional[CostModel] = None,
                  check: bool = True) -> BenchmarkResult:
    """Run one workload through all four configurations."""
    cost_model = cost_model if cost_model is not None else CostModel()
    results: Dict[str, ExecutionResult] = {}
    kernel_count = 0
    glue_count = 0
    applicability: Optional[ProgramApplicability] = None

    for level in (OptLevel.SEQUENTIAL, OptLevel.UNOPTIMIZED,
                  OptLevel.OPTIMIZED):
        compiler = CgcmCompiler(CgcmConfig(opt_level=level,
                                           cost_model=cost_model))
        report = compiler.compile_source(workload.source, workload.name)
        results[level.value] = compiler.execute(report)
        if level == OptLevel.OPTIMIZED:
            kernel_count = len(report.doall_kernels)
            glue_count = len(report.glue_kernels)
        if level == OptLevel.UNOPTIMIZED:
            applicability = analyze_module(report.module)

    results["inspector-executor"] = _run_inspector_executor(
        workload, cost_model)

    if check:
        expected = results["sequential"].stdout
        for name, result in results.items():
            if result.stdout != expected:
                raise ReproError(
                    f"{workload.name}: configuration {name!r} produced "
                    f"{result.stdout!r}, expected {expected!r}")

    assert applicability is not None
    return BenchmarkResult(workload, results, kernel_count, glue_count,
                           applicability)


def _run_inspector_executor(workload: Workload,
                            cost_model: CostModel) -> ExecutionResult:
    module = compile_minic(workload.source, workload.name)
    DoallParallelizer(module).run()
    machine = InspectorExecutorMachine(module, cost_model)
    exit_code = machine.run()
    return ExecutionResult(
        exit_code=exit_code,
        stdout=tuple(machine.stdout),
        cpu_seconds=machine.clock.cpu_seconds,
        gpu_seconds=machine.clock.gpu_seconds,
        comm_seconds=machine.clock.comm_seconds,
        counters=dict(machine.clock.counters),
    )


def run_all(workloads, cost_model: Optional[CostModel] = None,
            check: bool = True) -> List[BenchmarkResult]:
    """Run a list of workloads; returns results in input order."""
    return [run_benchmark(w, cost_model, check) for w in workloads]
