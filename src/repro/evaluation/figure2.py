"""Figure 2: execution schedules of the three communication patterns.

The paper contrasts a naive cyclic schedule, the inspector-executor
schedule, and the acyclic schedule CGCM's optimizations produce.  We
regenerate all three from a synthetic time-stepped workload by running
it under the corresponding configuration with event recording on, then
rendering the trace as an ASCII timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines.inspector_executor import InspectorExecutorMachine
from ..core.compiler import CgcmCompiler
from ..core.config import CgcmConfig, OptLevel
from ..frontend import compile_minic
from ..gpu.timing import TraceEvent
from ..interp.trace import count_direction_switches, render_schedule
from ..transforms import DoallParallelizer

#: A small time-stepped stencil: enough launches for the patterns to
#: be visually and quantitatively distinct.
SCHEDULE_WORKLOAD = r"""
double field[64];
int main(void) {
    for (int i = 0; i < 64; i++) field[i] = i * 0.5;
    for (int t = 0; t < 6; t++) {
        for (int i = 0; i < 64; i++)
            field[i] = field[i] * 0.98 + 1.0;
    }
    double s = 0.0;
    for (int i = 0; i < 64; i++) s += field[i];
    print_f64(s);
    return 0;
}
"""


@dataclass
class Schedule:
    pattern: str
    events: List[TraceEvent]
    direction_switches: int
    total_seconds: float

    def render(self, width: int = 100) -> str:
        return render_schedule(self.events, width)


def build_schedules(source: str = SCHEDULE_WORKLOAD) -> Dict[str, Schedule]:
    """The three Figure 2 schedules for one workload."""
    schedules: Dict[str, Schedule] = {}

    for pattern, level in (("naive-cyclic", OptLevel.UNOPTIMIZED),
                           ("acyclic", OptLevel.OPTIMIZED)):
        compiler = CgcmCompiler(CgcmConfig(opt_level=level,
                                           record_events=True))
        report = compiler.compile_source(source, pattern)
        result = compiler.execute(report)
        schedules[pattern] = Schedule(
            pattern, result.events,
            count_direction_switches(result.events),
            result.total_seconds)

    module = compile_minic(source, "inspector-executor")
    DoallParallelizer(module).run()
    machine = InspectorExecutorMachine(module, record_events=True)
    machine.run()
    schedules["inspector-executor"] = Schedule(
        "inspector-executor", list(machine.clock.events),
        count_direction_switches(machine.clock.events),
        machine.clock.total_seconds)
    return schedules


def render_figure2(schedules: Dict[str, Schedule],
                   width: int = 100) -> str:
    order = ("naive-cyclic", "inspector-executor", "acyclic")
    parts: List[str] = []
    for pattern in order:
        schedule = schedules[pattern]
        parts.append(f"--- {pattern} "
                     f"(comm/GPU alternations: "
                     f"{schedule.direction_switches}, total "
                     f"{schedule.total_seconds * 1e6:.1f}us) ---")
        parts.append(schedule.render(width))
    return "\n".join(parts)
