"""The CGCM run-time library (paper section 3).

Tracks allocation units (globals, heap blocks, escaping stack
variables) in a self-balancing tree map and translates CPU pointers to
equivalent GPU pointers:

* ``map(ptr)``     -- Algorithm 1: copy the allocation unit to the GPU
  (allocating if needed), bump its reference count, return the
  translated pointer.  Interior pointers keep their offset.
* ``unmap(ptr)``   -- Algorithm 2: copy the unit back to CPU memory if
  its epoch is stale and it is not read-only; at most one copy per
  epoch (epochs advance on every kernel launch).
* ``release(ptr)`` -- Algorithm 3: drop a reference; free the device
  buffer at zero (never for globals).
* ``mapArray`` / ``unmapArray`` / ``releaseArray`` -- the same for
  doubly-indirect pointers: each element is translated, and the
  translated pointer array is what lands in device memory.
* ``declareGlobal`` / ``declareAlloca`` -- registration entry points
  inserted by the compiler; heap allocations are tracked automatically
  by wrapping malloc/calloc/realloc/free.

Attach to a machine with ``CgcmRuntime(machine)``; this registers the
externals, the heap wrappers, the kernel-launch epoch hook, and the
frame-exit expiry for stack registrations.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (CgcmRuntimeError, CgcmUnsupportedError, GpuLaunchError,
                      GpuOomError, GpuTransferError)
from ..gpu.faults import MAX_FAULT_RETRIES
from ..gpu.timing import (LANE_COMM, LANE_GPU, STREAM_COMPUTE, STREAM_D2H,
                          STREAM_H2D)
from ..interp.machine import Machine
from ..ir.instructions import Call
from ..ir.module import Module
from ..ir.values import GlobalVariable
from ..memory.layout import DEVICE_BASE, DEVICE_CAPACITY
from .allocmap import AvlTreeMap
# The entry-point name tables live in the registry (runtime/api.py);
# they are re-exported here so historical import sites keep working.
from .api import (ASYNC_RUNTIME_FUNCTIONS, ASYNC_VARIANTS,  # noqa: F401
                  ARRAY_FUNCTIONS, ENTRY_POINTS, MAP_ARRAY_FUNCTIONS,
                  MAP_FUNCTIONS, RELEASE_ARRAY_FUNCTIONS, RELEASE_FUNCTIONS,
                  RUNTIME_FUNCTION_NAMES, RUNTIME_SIGNATURES, SYNC_FUNCTION,
                  UNMAP_ARRAY_FUNCTIONS, UNMAP_FUNCTIONS)

#: Modelled CPU ops per run-time library call (tree lookup + bookkeeping).
_RUNTIME_CALL_OPS = 30

#: First virtual address of the sentinel range: translated pointers
#: minted for allocation units that could not get device memory even
#: after eviction.  The range lies beyond the simulated device, so a
#: sentinel pointer can never be dereferenced by a kernel -- the
#: launch gate degrades any launch whose operands include one to the
#: CPU path before the grid runs.
_SENTINEL_BASE = DEVICE_BASE + DEVICE_CAPACITY


def declare_runtime(module: Module) -> Dict[str, "object"]:
    """Declare every run-time entry point in ``module`` (idempotent)."""
    return {name: module.declare_function(name, sig)
            for name, sig in RUNTIME_SIGNATURES.items()}


class AllocationInfo:
    """Base, size, and GPU state of one allocation unit.

    The two resilience fields qualify ``device_ptr``:

    * ``resident`` -- False when the unit's device range is minted
      (translated pointers exist) but no device memory currently backs
      it: the unit was evicted under memory pressure, or never got
      memory at all (sentinel range).  Invariant: a non-resident
      unit's *host* bytes are authoritative.
    * ``needs_refresh`` -- the host copy is newer than the resident
      device copy (a CPU-fallback launch wrote it); the next GPU
      launch using the unit re-copies host-to-device first.
    """

    __slots__ = ("base", "size", "is_global", "name", "is_read_only",
                 "ref_count", "epoch", "device_ptr", "is_array", "frame_id",
                 "resident", "needs_refresh")

    def __init__(self, base: int, size: int, is_global: bool = False,
                 name: str = "", is_read_only: bool = False,
                 frame_id: Optional[int] = None):
        self.base = base
        self.size = size
        self.is_global = is_global
        self.name = name
        self.is_read_only = is_read_only
        self.ref_count = 0
        self.epoch = -1
        self.device_ptr: Optional[int] = None
        self.is_array = False
        self.frame_id = frame_id
        self.resident = True
        self.needs_refresh = False

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:
        kind = "global " if self.is_global else ""
        return (f"<AllocationInfo {kind}[{self.base:#x},{self.end:#x}) "
                f"refs={self.ref_count} dev={self.device_ptr}>")


class CgcmRuntime:
    """The run-time half of CGCM, attached to one machine."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.device = machine.device
        self.alloc_map = AvlTreeMap()
        self.global_epoch = 0
        self._stack_regs: Dict[int, List[int]] = {}
        #: Streams discipline: async entry points overlap, and a
        #: load/store guard synchronizes in-flight write-backs before
        #: the CPU touches their host region.
        self.streams = getattr(machine, "streams", False)
        #: In-flight DtoH write-backs: unit base -> (unit end, modelled
        #: finish time of the copy on the d2h stream).
        self._pending_writebacks: Dict[int, tuple] = {}
        #: Times the guard or an external forced a host synchronize.
        self.guard_syncs = 0
        #: Observers of run-time library operations, called as
        #: ``hook(stage, op, ptr, info)`` with stage "pre" (before the
        #: operation mutates any state) or "post" (after it finished),
        #: and op one of "map"/"unmap"/"release" or -- from the
        #: resilience subsystem -- "evict"/"restore"/"refresh"/"flush".
        #: ``mapArray`` and ``releaseArray`` notify for the
        #: pointer-array unit itself; per-element work (and all of
        #: ``unmapArray``'s) notifies through the scalar entry points
        #: they call.
        self.op_hooks: List[Callable[[str, str, int, AllocationInfo],
                                     None]] = []
        #: Serve-layer cross-request sharing registry (see
        #: ``repro.serve.sharing.SharedMappingRegistry``).  When set,
        #: the first map of a read-only unit whose exact content is
        #: already device-resident on behalf of another in-flight
        #: request elides the modelled HtoD charge: the bytes still
        #: land in this machine's device memory (the simulator's
        #: eager-data model needs them there), but the modelled world
        #: shares one device copy.  None = every map pays its copy.
        self.shared_mappings = None
        machine.launch_hooks.append(self._on_launch)
        machine.heap_hooks.append(self._on_heap)
        machine.frame_exit_hooks.append(self._on_frame_exit)
        machine.externals.update({
            "map": lambda m, a: self.map_ptr(int(a[0])),
            "unmap": lambda m, a: self.unmap_ptr(int(a[0])),
            "release": lambda m, a: self.release_ptr(int(a[0])),
            "mapArray": lambda m, a: self.map_array(int(a[0])),
            "unmapArray": lambda m, a: self.unmap_array(int(a[0])),
            "releaseArray": lambda m, a: self.release_array(int(a[0])),
            "declareAlloca": lambda m, a: self.declare_alloca(int(a[0])),
            "declareGlobal": self._declare_global_external,
            "mapAsync": lambda m, a: self.map_ptr_async(int(a[0])),
            "unmapAsync": lambda m, a: self.unmap_ptr_async(int(a[0])),
            "mapArrayAsync": lambda m, a: self.map_array_async(int(a[0])),
            "unmapArrayAsync":
                lambda m, a: self.unmap_array_async(int(a[0])),
            "cgcmSync": lambda m, a: self.sync(),
        })
        machine.external_types.update(RUNTIME_SIGNATURES)
        if self.streams:
            machine.mem_hooks.append(self._guard_mem)
            self._wrap_memory_externals()
        #: Resilience subsystem (repro.resilience): armed whenever the
        #: device can fail (fault injector or heap cap).  The runtime
        #: then owns the machine's launch gate, an LRU of evictable
        #: units, and a device-address index for reverse translation.
        self.resilient = (machine.device.fault_injector is not None
                          or machine.device.heap_limit is not None)
        #: Multi-GPU coordinator (repro.multigpu) when the execution
        #: runs under a multi-device topology; it owns per-unit device
        #: homes, routes transfers onto per-device lanes/streams via
        #: the op-hook pipeline, and shards DOALL grids.  None for the
        #: classic single-device platform.
        self.multigpu = None
        #: Resident, evictable (non-global) units in least-recently-
        #: used order: dict insertion order, oldest first.
        self._lru: Dict[int, AllocationInfo] = {}
        #: Every unit with a minted device range (resident, evicted,
        #: or sentinel), keyed by device base -- the reverse index the
        #: launch gate uses to identify operand units from launch args.
        self._device_index = AvlTreeMap()
        #: Next virtual address handed to a unit that could not get
        #: device memory at all (see ``_SENTINEL_BASE``).
        self._sentinel_cursor = _SENTINEL_BASE
        #: Units a CPU-fallback launch wrote; the launch hook marks
        #: them host-authoritative after it bumps the epoch.
        self._fallback_marks: List[AllocationInfo] = []
        #: Host addresses of the globals each kernel (plus callees)
        #: references, cached per kernel name: globals reach device
        #: code without appearing in the launch argument list.
        self._kernel_globals_cache: Dict[str, Tuple[int, ...]] = {}
        if self.resilient:
            machine.launch_gate = self._launch_gate

    # -- registration ------------------------------------------------------

    def declare_global(self, name: str, base: int, size: int,
                       is_read_only: bool = False) -> None:
        """Register a global variable's allocation unit."""
        info = AllocationInfo(base, size, is_global=True, name=name,
                              is_read_only=is_read_only)
        self.alloc_map.insert(base, info)

    def declare_all_globals(self) -> None:
        """Convenience used by tests and manual-mode programs: register
        every module global (the compiler pass inserts equivalent
        ``declareGlobal`` calls at the top of ``main``)."""
        for gv in self.machine.module.globals.values():
            self.declare_global(gv.name,
                                self.machine.layout.address_of(gv.name),
                                gv.size, gv.is_read_only)

    def _declare_global_external(self, machine: Machine, args: List) -> None:
        name = machine.cpu_memory.read_c_string(int(args[0])).decode()
        self.declare_global(name, int(args[1]), int(args[2]),
                            bool(int(args[3])))

    def declare_alloca(self, size: int) -> int:
        """Allocate stack memory and register it; the registration
        expires when the owning function returns."""
        machine = self.machine
        frame = machine.current_frame
        if frame is None:
            raise CgcmRuntimeError("declareAlloca outside any function")
        base = machine.stack_allocate(size)
        info = AllocationInfo(base, size, frame_id=frame.frame_id)
        self.alloc_map.insert(base, info)
        self._stack_regs.setdefault(frame.frame_id, []).append(base)
        return base

    # -- streams guard -------------------------------------------------------

    #: Externals that read or write host memory without going through
    #: the interpreter's load/store path (and hence the mem-hook
    #: guard); under streams they synchronize pending write-backs
    #: first, exactly like a guarded load would.
    _MEMORY_EXTERNAL_NAMES = ("memcpy", "memset", "print_str", "free",
                              "realloc")

    def _wrap_memory_externals(self) -> None:
        externals = self.machine.externals
        for name in self._MEMORY_EXTERNAL_NAMES:
            handler = externals.get(name)
            if handler is None:
                continue
            externals[name] = self._make_syncing_handler(handler)

    def _make_syncing_handler(self, handler: Callable) -> Callable:
        def wrapped(machine: Machine, args: List):
            if self._pending_writebacks:
                self._sync_pending()
            return handler(machine, args)
        return wrapped

    def _guard_mem(self, machine: Machine, kind: str, address: int,
                   size: int) -> None:
        """mem-hook: stall the host until an overlapping in-flight
        write-back completes before the CPU touches its region.

        Data is already in place (the simulator's eager-data model);
        this models the synchronize a real async implementation needs,
        charging the wait as idle time rather than modelled ops.
        Device addresses can never overlap host regions, so kernel
        accesses fall through the interval test untouched.
        """
        pending = self._pending_writebacks
        if not pending:
            return
        end = address + size
        for base, (unit_end, _finish) in pending.items():
            if address < unit_end and base < end:
                self._sync_pending()
                return

    def _sync_pending(self) -> None:
        """Host-synchronize the d2h stream and retire every pending
        write-back.  Charges no modelled ops: the cost is purely the
        host cursor waiting for the copies to drain."""
        clock = self.machine.clock
        if self.multigpu is not None:
            for stream in self.multigpu.d2h_streams():
                clock.stream_synchronize(stream)
        else:
            clock.stream_synchronize(STREAM_D2H)
        self._pending_writebacks.clear()
        self.guard_syncs += 1

    def sync(self) -> None:
        """``cgcmSync``: make every deferred write-back CPU-visible.

        Inserted by the comm-overlap transform before CPU code that
        reads a sunk unmap's region; a no-op under the serial
        discipline (there is nothing in flight to wait for).
        """
        if not self.streams:
            return
        self.machine.flush_cpu()
        if self._pending_writebacks:
            self._sync_pending()

    # -- hooks ---------------------------------------------------------------

    def _on_launch(self, machine: Machine, kernel, grid: int,
                   args: List) -> None:
        self.global_epoch += 1
        if self._fallback_marks:
            # The gate degraded this launch to the CPU path: the CPU
            # grid is about to write the *host* copies of the operand
            # units.  Post-bump they are current-as-of-this-epoch on
            # the host (so unmap skips the stale device copy) and
            # stale on the device (so the next GPU launch refreshes).
            for info in self._fallback_marks:
                info.epoch = self.global_epoch
                info.needs_refresh = True
            self._fallback_marks = []

    def _on_heap(self, machine: Machine, kind: str, address: int,
                 size: int) -> None:
        if kind == "malloc":
            if address:
                self.alloc_map.insert(address,
                                      AllocationInfo(address, size))
        elif kind == "free":
            if not address:
                return
            entry = self.alloc_map.find(address)
            if entry is None:
                return
            if entry.ref_count > 0:
                raise CgcmRuntimeError(
                    f"free of heap block {address:#x} still mapped to the "
                    f"GPU ({entry.ref_count} references)")
            self.alloc_map.remove(address)

    def _on_frame_exit(self, machine: Machine, frame_id: int) -> None:
        for base in self._stack_regs.pop(frame_id, ()):
            info = self.alloc_map.find(base)
            if info is None:
                continue
            if info.ref_count > 0:
                raise CgcmRuntimeError(
                    f"stack variable at {base:#x} left scope while still "
                    f"mapped to the GPU")
            self.alloc_map.remove(base)

    # -- lookup ----------------------------------------------------------------

    def lookup(self, ptr: int) -> AllocationInfo:
        """Allocation unit containing ``ptr`` (greatestLTE + bound check)."""
        self._charge()
        entry = self.alloc_map.find_le(ptr)
        if entry is not None:
            info = entry[1]
            if ptr < info.end:
                return info
        raise CgcmRuntimeError(
            f"pointer {ptr:#x} does not belong to any tracked allocation "
            "unit (unregistered stack variable, foreign pointer, or "
            "out-of-bounds arithmetic)")

    def _charge(self) -> None:
        self.machine.charge_ops(_RUNTIME_CALL_OPS)

    def _notify(self, stage: str, op: str, ptr: int,
                info: AllocationInfo) -> None:
        for hook in self.op_hooks:
            hook(stage, op, ptr, info)

    # -- Algorithm 1: map -------------------------------------------------------

    def map_ptr(self, ptr: int) -> int:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            if not info.is_global:
                if self.resilient:
                    self._alloc_device(info)
                else:
                    info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
                info.resident = True
            self.machine.flush_cpu()
            if info.resident:
                if not self._shared_attach(ptr, info):
                    self._htod_from(info.device_ptr, info.base, info.size)
            info.epoch = self.global_epoch
            info.needs_refresh = False
            self._track_device(info)
        elif self.resilient and not info.is_global:
            self._touch(info)
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    def _shared_attach(self, ptr: int, info: AllocationInfo) -> bool:
        """Cross-request sharing fast path for one first-map HtoD copy.

        Only read-only scalar units are eligible (pointer-array device
        payloads hold per-request translated pointers).  On a registry
        hit the unit's bytes are written into this machine's device
        memory *without* a modelled transfer -- in the modeled world
        the in-flight holder's device copy is shared -- and the hook
        pipeline is told via a ``share`` operation so the sanitizer
        can verify the copy is never mutated.  Returns True when the
        charged copy was elided.
        """
        registry = self.shared_mappings
        if registry is None or not info.is_read_only or info.is_array:
            return False
        content = self.machine.cpu_memory.read(info.base, info.size)
        if not registry.attach(info.name or hex(info.base), content):
            return False
        self.device.memory.write(info.device_ptr, content)
        clock = self.machine.clock
        clock.count("shared_attaches")
        clock.count("htod_bytes_saved", info.size)
        if self.op_hooks:
            self._notify("post", "share", ptr, info)
        return True

    # -- Algorithm 2: unmap -----------------------------------------------------

    def unmap_ptr(self, ptr: int) -> None:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "unmap", ptr, info)
        if info.epoch == self.global_epoch or info.is_read_only:
            if self.op_hooks:
                self._notify("post", "unmap", ptr, info)
            return
        if not info.resident or info.needs_refresh:
            # Resilience invariant: a non-resident (evicted/sentinel)
            # or CPU-fallback-written unit's host bytes are already
            # authoritative; there is nothing newer to copy back.
            info.epoch = self.global_epoch
            if self.op_hooks:
                self._notify("post", "unmap", ptr, info)
            return
        if info.device_ptr is None:
            raise CgcmRuntimeError(
                f"unmap of {ptr:#x}: allocation unit has no device copy")
        self.machine.flush_cpu()
        self._dtoh_into(info.device_ptr, info.size, info.base)
        info.epoch = self.global_epoch
        if self.op_hooks:
            self._notify("post", "unmap", ptr, info)

    # -- Algorithm 3: release ---------------------------------------------------

    def release_ptr(self, ptr: int) -> None:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "release", ptr, info)
        if info.ref_count <= 0:
            raise CgcmRuntimeError(
                f"release of {ptr:#x} below zero references")
        info.ref_count -= 1
        if info.ref_count == 0 and not info.is_global:
            assert info.device_ptr is not None
            if self.streams:
                # Stream-ordered free: the d2h stream is FIFO, so the
                # buffer outlives any in-flight write-back of it
                # without stalling the host.
                self.device.mem_free_async(info.device_ptr,
                                           self._d2h_stream(info))
            elif info.resident:
                self.device.mem_free(info.device_ptr)
            if self.resilient or self.multigpu is not None:
                self._device_index.remove(info.device_ptr)
                self._lru.pop(info.base, None)
            info.device_ptr = None
            info.resident = True
            info.needs_refresh = False
        if self.op_hooks:
            self._notify("post", "release", ptr, info)

    # -- array (doubly indirect) variants ----------------------------------------

    def _read_pointer_array(self, info: AllocationInfo) -> List[int]:
        return self.machine.cpu_memory.read_u64_array(
            info.base, info.size // 8)

    def map_array(self, ptr: int) -> int:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            elements = self._read_pointer_array(info)
            for element in elements:
                if element:
                    depth_guard = self.lookup(element)
                    if depth_guard.is_array:
                        raise CgcmUnsupportedError(
                            "pointers with three or more degrees of "
                            "indirection are not supported (CGCM "
                            "restriction, paper section 2.3)")
            translated = [self.map_ptr(e) if e else 0 for e in elements]
            if not info.is_global:
                if self.resilient:
                    self._alloc_device(info)
                else:
                    info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
                info.resident = True
            self.machine.flush_cpu()
            if info.resident:
                payload = struct.pack(f"<{len(translated)}Q", *translated)
                self._htod(info.device_ptr, payload)
            info.epoch = self.global_epoch
            info.needs_refresh = False
            info.is_array = True
            self._track_device(info)
        elif self.resilient and not info.is_global:
            self._touch(info)
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    def unmap_array(self, ptr: int) -> None:
        info = self.lookup(ptr)
        for element in self._read_pointer_array(info):
            if element:
                self.unmap_ptr(element)

    def release_array(self, ptr: int) -> None:
        info = self.lookup(ptr)
        if info.ref_count <= 0:
            if self.op_hooks:
                self._notify("pre", "release", ptr, info)
            raise CgcmRuntimeError(
                f"releaseArray of {ptr:#x} below zero references")
        if info.ref_count == 1:
            for element in self._read_pointer_array(info):
                if element:
                    self.release_ptr(element)
            info.is_array = False
        self.release_ptr(ptr)

    # -- resilience subsystem (repro.resilience) ----------------------------------
    #
    # Active when the device can fail (fault injector or heap cap).
    # Three mechanisms keep observables byte-identical under faults:
    #
    # * bounded retry + modelled backoff for transient alloc/transfer/
    #   launch faults;
    # * LRU eviction of quiescent units under memory pressure, with
    #   address-stable restore (an evicted unit re-materializes at the
    #   device address its translated pointers were minted for; freed
    #   ranges of still-minted units are never handed to new units);
    # * graceful degradation: a launch whose operands cannot all be
    #   resident runs its grid on the CPU path against host memory.

    def _track_device(self, info: AllocationInfo) -> None:
        """Index a freshly mapped unit's device range.

        Maintained for the resilience subsystem (reverse translation
        in the launch gate) and for the multi-GPU coordinator (operand
        discovery when sharding); a no-op otherwise.
        """
        if not self.resilient and self.multigpu is None:
            return
        self._device_index.insert(info.device_ptr, info)
        if not info.is_global and info.resident:
            self._lru.pop(info.base, None)
            self._lru[info.base] = info

    def _touch(self, info: AllocationInfo) -> None:
        """Mark a unit most-recently-used (dict order: oldest first)."""
        if info.base in self._lru:
            self._lru[info.base] = self._lru.pop(info.base)

    def _minted_ranges(self) -> List[Tuple[int, int]]:
        """Device ranges of evicted units that must not be reused: a
        new allocation landing there would make the evicted unit's
        already-minted translated pointers ambiguous."""
        return [(info.device_ptr, info.device_ptr + info.size)
                for info in self._device_index.values()
                if not info.resident and info.device_ptr is not None
                and info.device_ptr < _SENTINEL_BASE]

    def _backoff(self, lane: str) -> None:
        """Charge the modelled wait before retrying a failed driver call."""
        clock = self.machine.clock
        clock.advance(lane, clock.model.fault_backoff_s, "fault backoff")
        clock.count("fault_retries")

    def _htod(self, device_ptr: int, data: bytes) -> None:
        """``memcpy_htod`` with bounded retry for injected bus faults."""
        device = self.device
        if device.fault_injector is None:
            device.memcpy_htod(device_ptr, data)
            return
        attempts = 0
        while True:
            try:
                device.memcpy_htod(device_ptr, data)
                return
            except GpuTransferError:
                attempts += 1
                if attempts > MAX_FAULT_RETRIES:
                    raise
                self._backoff(LANE_COMM)

    def _dtoh(self, device_ptr: int, size: int) -> bytes:
        """``memcpy_dtoh`` with bounded retry for injected bus faults."""
        device = self.device
        if device.fault_injector is None:
            return device.memcpy_dtoh(device_ptr, size)
        attempts = 0
        while True:
            try:
                return device.memcpy_dtoh(device_ptr, size)
            except GpuTransferError:
                attempts += 1
                if attempts > MAX_FAULT_RETRIES:
                    raise
                self._backoff(LANE_COMM)

    def _htod_from(self, device_ptr: int, host_address: int,
                   size: int) -> None:
        """Whole-unit host-to-device copy, segment to segment.

        :meth:`_htod` without the staging ``bytes``: the serial
        map/restore/refresh transfers always move one contiguous
        unit, so the payload slices straight across the two address
        spaces.  Same bounded retry."""
        device = self.device
        host_memory = self.machine.cpu_memory
        if device.fault_injector is None:
            device.memcpy_htod_from(device_ptr, host_memory,
                                    host_address, size)
            return
        attempts = 0
        while True:
            try:
                device.memcpy_htod_from(device_ptr, host_memory,
                                        host_address, size)
                return
            except GpuTransferError:
                attempts += 1
                if attempts > MAX_FAULT_RETRIES:
                    raise
                self._backoff(LANE_COMM)

    def _dtoh_into(self, device_ptr: int, size: int,
                   host_address: int) -> None:
        """Whole-unit device-to-host write-back, segment to segment
        (:meth:`_dtoh` without the staging ``bytes``)."""
        device = self.device
        host_memory = self.machine.cpu_memory
        if device.fault_injector is None:
            device.memcpy_dtoh_into(device_ptr, size, host_memory,
                                    host_address)
            return
        attempts = 0
        while True:
            try:
                device.memcpy_dtoh_into(device_ptr, size, host_memory,
                                        host_address)
                return
            except GpuTransferError:
                attempts += 1
                if attempts > MAX_FAULT_RETRIES:
                    raise
                self._backoff(LANE_COMM)

    def _alloc_device(self, info: AllocationInfo) -> bool:
        """Get device memory for a freshly mapped unit, resiliently.

        Transient (injected) OOM is retried with backoff; capacity OOM
        evicts least-recently-used units and retries.  When the unit
        cannot be placed at all, it gets a *sentinel* range beyond the
        device so pointer translation still yields unique, stable
        addresses; the launch gate keeps any kernel from ever
        dereferencing them.  Returns True when the unit is resident.
        """
        avoid = self._minted_ranges()
        transient_retries = 0
        while True:
            try:
                info.device_ptr = self.device.mem_alloc(info.size, avoid)
                info.resident = True
                return True
            except GpuOomError as oom:
                if oom.transient:
                    transient_retries += 1
                    if transient_retries <= MAX_FAULT_RETRIES:
                        self._backoff(LANE_COMM)
                        continue
                if self._evict_one(frozenset()):
                    avoid = self._minted_ranges()
                    continue
                break
        info.device_ptr = self._sentinel_cursor
        self._sentinel_cursor += max((info.size + 15) // 16 * 16, 16)
        info.resident = False
        self.machine.clock.count("sentinel_units")
        return False

    def _evict_one(self, pinned: "frozenset") -> bool:
        """Evict the least-recently-used unpinned unit; False if none."""
        for base, info in self._lru.items():
            if base in pinned:
                continue
            self._evict(info)
            return True
        return False

    def _evict(self, info: AllocationInfo) -> None:
        """Reclaim one unit's device memory, preserving coherence.

        A dirty device copy (stale epoch) is written back through the
        existing DtoH path first, so the invariant "non-resident =>
        host bytes authoritative" holds.  Pointer-array units never
        write back: their device payload holds *translated* pointers
        and kernels cannot store pointers, so it is never meaningfully
        dirty -- the host array already holds the host originals.
        """
        if self.op_hooks:
            self._notify("pre", "evict", info.base, info)
        if (not info.is_read_only and not info.is_array
                and not info.needs_refresh
                and info.epoch != self.global_epoch):
            self._dtoh_into(info.device_ptr, info.size, info.base)
            info.epoch = self.global_epoch
        self.device.mem_free(info.device_ptr)
        info.resident = False
        self._lru.pop(info.base, None)
        self.machine.clock.count("device_evictions")
        if self.op_hooks:
            self._notify("post", "evict", info.base, info)

    def _array_payload(self, info: AllocationInfo) -> bytes:
        """Re-translate a pointer-array unit's device payload from the
        host array (element device ranges are address-stable, so the
        result is identical to what the original ``mapArray`` wrote)."""
        translated = []
        for element in self._read_pointer_array(info):
            if not element:
                translated.append(0)
                continue
            entry = self.alloc_map.find_le(element)
            if entry is None or element >= entry[1].end \
                    or entry[1].device_ptr is None:
                raise CgcmRuntimeError(
                    f"array unit {info.base:#x}: element {element:#x} has "
                    "no device translation during restore")
            einfo = entry[1]
            translated.append(einfo.device_ptr + (element - einfo.base))
        return struct.pack(f"<{len(translated)}Q", *translated)

    def _restore(self, info: AllocationInfo) -> None:
        """Re-materialize an evicted unit at its stable device address."""
        if self.op_hooks:
            self._notify("pre", "restore", info.base, info)
        self.machine.flush_cpu()
        if info.is_array:
            self._htod(info.device_ptr, self._array_payload(info))
        else:
            self._htod_from(info.device_ptr, info.base, info.size)
        info.resident = True
        info.epoch = self.global_epoch
        info.needs_refresh = False
        self._lru[info.base] = info
        self.machine.clock.count("device_restores")
        if self.op_hooks:
            self._notify("post", "restore", info.base, info)

    def _refresh(self, info: AllocationInfo) -> None:
        """Re-copy a host-authoritative resident unit to the device
        (its host copy was written by a CPU-fallback launch)."""
        if self.op_hooks:
            self._notify("pre", "refresh", info.base, info)
        self.machine.flush_cpu()
        if info.is_array:
            self._htod(info.device_ptr, self._array_payload(info))
        else:
            self._htod_from(info.device_ptr, info.base, info.size)
        info.epoch = self.global_epoch
        info.needs_refresh = False
        self.machine.clock.count("device_refreshes")
        if self.op_hooks:
            self._notify("post", "refresh", info.base, info)

    def _unit_for_device_ptr(self, ptr: int) -> Optional[AllocationInfo]:
        """The unit whose minted device range contains ``ptr``."""
        entry = self._device_index.find_le(ptr)
        if entry is None:
            return None
        info = entry[1]
        if info.device_ptr is None or ptr >= info.device_ptr + info.size:
            return None
        return info

    def _kernel_global_bases(self, kernel) -> Tuple[int, ...]:
        """Host base addresses of every global ``kernel`` (or anything
        it calls) references.  Globals reach device code without ever
        appearing in the launch argument list, so the gate must
        discover their units here."""
        cached = self._kernel_globals_cache.get(kernel.name)
        if cached is not None:
            return cached
        names = set()
        seen = set()
        stack = [kernel]
        while stack:
            fn = stack.pop()
            if fn.name in seen or not getattr(fn, "blocks", None):
                continue
            seen.add(fn.name)
            for inst in fn.instructions():
                for operand in inst.operands:
                    if isinstance(operand, GlobalVariable):
                        names.add(operand.name)
                if isinstance(inst, Call):
                    stack.append(inst.callee)
        layout = self.machine.layout
        bases = []
        for name in names:
            try:
                bases.append(layout.address_of(name))
            except KeyError:
                pass
        cached = tuple(sorted(bases))
        self._kernel_globals_cache[kernel.name] = cached
        return cached

    def _operand_units(self, kernel, args: List) -> List[AllocationInfo]:
        """Allocation units a launch can reach: every arg that
        reverse-translates to a minted device range, every mapped
        global the kernel references, and -- for pointer-array units
        -- every element unit the kernel can load a (translated)
        pointer to."""
        units: Dict[int, AllocationInfo] = {}

        def add(info: AllocationInfo) -> None:
            if info.base in units:
                return
            units[info.base] = info
            if not info.is_array:
                return
            for element in self._read_pointer_array(info):
                if not element:
                    continue
                entry = self.alloc_map.find_le(element)
                if entry is None:
                    continue
                einfo = entry[1]
                if element < einfo.end and einfo.device_ptr is not None:
                    add(einfo)

        for arg in args:
            if not isinstance(arg, int):
                continue
            info = self._unit_for_device_ptr(arg)
            if info is not None:
                add(info)
        for base in self._kernel_global_bases(kernel):
            entry = self.alloc_map.find(base)
            if entry is not None and entry.device_ptr is not None:
                add(entry)
        return list(units.values())

    def _resident_overlap(
            self, info: AllocationInfo) -> Optional[AllocationInfo]:
        """A resident unit occupying part of ``info``'s stable range."""
        start, end = info.device_ptr, info.device_ptr + info.size
        for other in self._device_index.values():
            if other is info or not other.resident \
                    or other.device_ptr is None:
                continue
            if other.device_ptr < end \
                    and start < other.device_ptr + other.size:
                return other
        return None

    def _make_room_at(self, info: AllocationInfo,
                      pinned: "frozenset") -> bool:
        """Free ``info``'s stable device range for an address-stable
        restore: evict resident squatters (never pinned co-operands),
        then LRU-evict until the heap cap admits the block."""
        while True:
            blocker = self._resident_overlap(info)
            if blocker is not None:
                if blocker.base in pinned or blocker.is_global:
                    return False
                self._evict(blocker)
                continue
            if self.device.mem_alloc_at(info.device_ptr, info.size):
                return True
            if not self._evict_one(pinned):
                return False

    def _ensure_resident(self, operands: List[AllocationInfo]) -> bool:
        """Make every operand unit device-resident, or report that the
        launch must degrade to the CPU path."""
        pinned = frozenset(info.base for info in operands)
        for info in operands:
            if info.resident:
                continue
            if info.device_ptr >= _SENTINEL_BASE:
                return False
            if not self._make_room_at(info, pinned):
                return False
            self._restore(info)
        return True

    def _launch_admit(self, kernel_name: str, grid: int) -> bool:
        """Driver launch call with bounded retry for injected faults."""
        attempts = 0
        while True:
            try:
                self.device.launch_begin(kernel_name, grid)
                return True
            except GpuLaunchError:
                attempts += 1
                if attempts > MAX_FAULT_RETRIES:
                    return False
                self._backoff(LANE_GPU)

    def _prepare_fallback(self, operands: List[AllocationInfo],
                          args: List) -> List:
        """Degrade one launch to the CPU path (byte-identical).

        Brings the host bytes of every operand up to date (writing
        back device-newer copies), registers the operands for
        host-authoritative marking after the epoch bump, and returns
        the launch arguments reverse-translated to host addresses.
        """
        self.machine.flush_cpu()
        for info in operands:
            if (info.resident and not info.needs_refresh
                    and not info.is_read_only and not info.is_array
                    and info.epoch != self.global_epoch):
                if self.op_hooks:
                    self._notify("pre", "flush", info.base, info)
                self._dtoh_into(info.device_ptr, info.size, info.base)
                info.epoch = self.global_epoch
                if self.op_hooks:
                    self._notify("post", "flush", info.base, info)
        self._fallback_marks = [info for info in operands
                                if not info.is_read_only
                                and not info.is_array]
        host_args: List = []
        for arg in args:
            if isinstance(arg, int):
                info = self._unit_for_device_ptr(arg)
                if info is not None:
                    host_args.append(info.base + (arg - info.device_ptr))
                    continue
            host_args.append(arg)
        return host_args

    def _launch_gate(self, kernel, grid: int, args: List) -> Optional[List]:
        """Admission control for one launch (see Machine.launch_gate).

        Returns None to run on the GPU (operands resident and
        refreshed, driver call admitted) or the reverse-translated
        host argument list to degrade the launch to the CPU path.
        """
        self._charge()
        operands = self._operand_units(kernel, args)
        if self._ensure_resident(operands):
            for info in operands:
                if info.needs_refresh:
                    self._refresh(info)
            if self._launch_admit(kernel.name, grid):
                for info in operands:
                    if not info.is_global:
                        self._touch(info)
                return None
        return self._prepare_fallback(operands, args)

    # -- asynchronous entry points (streams subsystem) ----------------------------

    def _h2d_stream(self, info: AllocationInfo) -> str:
        """Upload stream for one unit: the well-known ``h2d`` stream,
        or -- under a multi-device topology -- the h2d stream of the
        device the unit is homed on, so uploads bound for different
        devices overlap each other."""
        if self.multigpu is not None:
            return self.multigpu.h2d_stream(info)
        return STREAM_H2D

    def _d2h_stream(self, info: AllocationInfo) -> str:
        """Write-back stream for one unit (see :meth:`_h2d_stream`)."""
        if self.multigpu is not None:
            return self.multigpu.d2h_stream(info)
        return STREAM_D2H

    def map_ptr_async(self, ptr: int) -> int:
        """Prefetching ``map``: identical unit bookkeeping, but the
        HtoD copy is issued on the h2d stream without blocking the
        host.  A later launch orders itself after the copy via the
        stream cursor (see ``Machine.launch_evaluated``).  Falls back
        to :meth:`map_ptr` under the serial discipline."""
        if not self.streams:
            return self.map_ptr(ptr)
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            if not info.is_global:
                info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
            self.machine.flush_cpu()
            data = self.machine.cpu_memory.read(info.base, info.size)
            finish = self.device.memcpy_htod_async(
                info.device_ptr, data, self._h2d_stream(info),
                after=self._writeback_deps(info))
            info.epoch = self.global_epoch
            self._track_device(info)
            if self.multigpu is not None:
                self.multigpu.note_htod(info, finish)
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    def _writeback_deps(self, info: AllocationInfo) -> tuple:
        """Event edge for re-mapping a unit whose previous device copy
        is still being written back: the fresh HtoD must not start
        before the old DtoH finished (the host bytes it transfers are
        final only then).  Retires the unit's pending entry."""
        pending = self._pending_writebacks.pop(info.base, None)
        if pending is None:
            return ()
        return (pending[1],)

    def unmap_ptr_async(self, ptr: int) -> None:
        """Deferred-write-back ``unmap``: the DtoH copy is issued on
        the d2h stream, ordered after every launch so far (compute
        stream event), and registered so any CPU access of the host
        region synchronizes first.  Falls back to :meth:`unmap_ptr`
        under the serial discipline."""
        if not self.streams:
            return self.unmap_ptr(ptr)
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "unmap", ptr, info)
        if info.epoch == self.global_epoch or info.is_read_only:
            if self.op_hooks:
                self._notify("post", "unmap", ptr, info)
            return
        if info.device_ptr is None:
            raise CgcmRuntimeError(
                f"unmapAsync of {ptr:#x}: allocation unit has no device "
                "copy")
        self.machine.flush_cpu()
        clock = self.machine.clock
        deps = (clock.event_record(STREAM_COMPUTE),)
        if self.multigpu is not None:
            deps = deps + self.multigpu.unmap_deps(info)
        data, finish = self.device.memcpy_dtoh_async(
            info.device_ptr, info.size, self._d2h_stream(info), after=deps)
        self.machine.cpu_memory.write(info.base, data)
        info.epoch = self.global_epoch
        self._pending_writebacks[info.base] = (info.end, finish)
        if self.op_hooks:
            self._notify("post", "unmap", ptr, info)

    def map_array_async(self, ptr: int) -> int:
        """Asynchronous :meth:`map_array`: elements prefetch through
        :meth:`map_ptr_async`, then the translated pointer array is
        itself copied on the h2d stream."""
        if not self.streams:
            return self.map_array(ptr)
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            elements = self._read_pointer_array(info)
            for element in elements:
                if element:
                    depth_guard = self.lookup(element)
                    if depth_guard.is_array:
                        raise CgcmUnsupportedError(
                            "pointers with three or more degrees of "
                            "indirection are not supported (CGCM "
                            "restriction, paper section 2.3)")
            translated = [self.map_ptr_async(e) if e else 0
                          for e in elements]
            if not info.is_global:
                info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
            self.machine.flush_cpu()
            payload = struct.pack(f"<{len(translated)}Q", *translated)
            finish = self.device.memcpy_htod_async(
                info.device_ptr, payload, self._h2d_stream(info),
                after=self._writeback_deps(info))
            info.epoch = self.global_epoch
            info.is_array = True
            self._track_device(info)
            if self.multigpu is not None:
                self.multigpu.note_htod(info, finish)
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    def unmap_array_async(self, ptr: int) -> None:
        """Asynchronous :meth:`unmap_array`: every element's
        write-back is deferred through :meth:`unmap_ptr_async`."""
        if not self.streams:
            return self.unmap_array(ptr)
        info = self.lookup(ptr)
        for element in self._read_pointer_array(info):
            if element:
                self.unmap_ptr_async(element)

    # -- introspection -----------------------------------------------------------

    @property
    def mapped_units(self) -> int:
        return sum(1 for info in self.alloc_map.values()
                   if info.ref_count > 0)

    def info_for(self, ptr: int) -> AllocationInfo:
        """Lookup without charging model time (tests/baselines)."""
        entry = self.alloc_map.find_le(ptr)
        if entry is None or ptr >= entry[1].end:
            raise CgcmRuntimeError(f"untracked pointer {ptr:#x}")
        return entry[1]
