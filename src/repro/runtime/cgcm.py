"""The CGCM run-time library (paper section 3).

Tracks allocation units (globals, heap blocks, escaping stack
variables) in a self-balancing tree map and translates CPU pointers to
equivalent GPU pointers:

* ``map(ptr)``     -- Algorithm 1: copy the allocation unit to the GPU
  (allocating if needed), bump its reference count, return the
  translated pointer.  Interior pointers keep their offset.
* ``unmap(ptr)``   -- Algorithm 2: copy the unit back to CPU memory if
  its epoch is stale and it is not read-only; at most one copy per
  epoch (epochs advance on every kernel launch).
* ``release(ptr)`` -- Algorithm 3: drop a reference; free the device
  buffer at zero (never for globals).
* ``mapArray`` / ``unmapArray`` / ``releaseArray`` -- the same for
  doubly-indirect pointers: each element is translated, and the
  translated pointer array is what lands in device memory.
* ``declareGlobal`` / ``declareAlloca`` -- registration entry points
  inserted by the compiler; heap allocations are tracked automatically
  by wrapping malloc/calloc/realloc/free.

Attach to a machine with ``CgcmRuntime(machine)``; this registers the
externals, the heap wrappers, the kernel-launch epoch hook, and the
frame-exit expiry for stack registrations.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from ..errors import CgcmRuntimeError, CgcmUnsupportedError
from ..gpu.timing import STREAM_COMPUTE, STREAM_D2H, STREAM_H2D
from ..interp.machine import Machine
from ..ir.module import Module
from ..ir.types import FunctionType, I64, RAW_PTR, VOID
from .allocmap import AvlTreeMap

#: Modelled CPU ops per run-time library call (tree lookup + bookkeeping).
_RUNTIME_CALL_OPS = 30

#: IR signatures of the run-time entry points (paper Table 2, plus the
#: asynchronous variants introduced by the comm-overlap transform).
RUNTIME_SIGNATURES = {
    "map": FunctionType(RAW_PTR, [RAW_PTR]),
    "unmap": FunctionType(VOID, [RAW_PTR]),
    "release": FunctionType(VOID, [RAW_PTR]),
    "mapArray": FunctionType(RAW_PTR, [RAW_PTR]),
    "unmapArray": FunctionType(VOID, [RAW_PTR]),
    "releaseArray": FunctionType(VOID, [RAW_PTR]),
    "declareAlloca": FunctionType(RAW_PTR, [I64]),
    "declareGlobal": FunctionType(VOID, [RAW_PTR, RAW_PTR, I64, I64]),
    # Streams subsystem: prefetching map, deferred-write-back unmap,
    # and the host-side synchronize that makes write-backs visible.
    # Under the serial discipline they fall back to the synchronous
    # entry points, so the same IR is valid at every config.
    "mapAsync": FunctionType(RAW_PTR, [RAW_PTR]),
    "unmapAsync": FunctionType(VOID, [RAW_PTR]),
    "mapArrayAsync": FunctionType(RAW_PTR, [RAW_PTR]),
    "unmapArrayAsync": FunctionType(VOID, [RAW_PTR]),
    "cgcmSync": FunctionType(VOID, []),
}

#: Names of the map/unmap/release family (used by the compiler passes).
MAP_FUNCTIONS = ("map", "mapArray", "mapAsync", "mapArrayAsync")
UNMAP_FUNCTIONS = ("unmap", "unmapArray", "unmapAsync", "unmapArrayAsync")
RELEASE_FUNCTIONS = ("release", "releaseArray")
#: Doubly-indirect (pointer-array) members of each family.
MAP_ARRAY_FUNCTIONS = ("mapArray", "mapArrayAsync")
UNMAP_ARRAY_FUNCTIONS = ("unmapArray", "unmapArrayAsync")
RELEASE_ARRAY_FUNCTIONS = ("releaseArray",)
#: map/unmap names whose spans go to the copy streams instead of
#: blocking the host (rewritten in by ``transforms/comm_overlap``).
ASYNC_RUNTIME_FUNCTIONS = ("mapAsync", "mapArrayAsync", "unmapAsync",
                           "unmapArrayAsync")
SYNC_FUNCTION = "cgcmSync"
RUNTIME_FUNCTION_NAMES = tuple(RUNTIME_SIGNATURES)

#: sync name -> async name, for the comm-overlap rewrite.
ASYNC_VARIANTS = {"map": "mapAsync", "mapArray": "mapArrayAsync",
                  "unmap": "unmapAsync", "unmapArray": "unmapArrayAsync"}


def declare_runtime(module: Module) -> Dict[str, "object"]:
    """Declare every run-time entry point in ``module`` (idempotent)."""
    return {name: module.declare_function(name, sig)
            for name, sig in RUNTIME_SIGNATURES.items()}


class AllocationInfo:
    """Base, size, and GPU state of one allocation unit."""

    __slots__ = ("base", "size", "is_global", "name", "is_read_only",
                 "ref_count", "epoch", "device_ptr", "is_array", "frame_id")

    def __init__(self, base: int, size: int, is_global: bool = False,
                 name: str = "", is_read_only: bool = False,
                 frame_id: Optional[int] = None):
        self.base = base
        self.size = size
        self.is_global = is_global
        self.name = name
        self.is_read_only = is_read_only
        self.ref_count = 0
        self.epoch = -1
        self.device_ptr: Optional[int] = None
        self.is_array = False
        self.frame_id = frame_id

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:
        kind = "global " if self.is_global else ""
        return (f"<AllocationInfo {kind}[{self.base:#x},{self.end:#x}) "
                f"refs={self.ref_count} dev={self.device_ptr}>")


class CgcmRuntime:
    """The run-time half of CGCM, attached to one machine."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.device = machine.device
        self.alloc_map = AvlTreeMap()
        self.global_epoch = 0
        self._stack_regs: Dict[int, List[int]] = {}
        #: Streams discipline: async entry points overlap, and a
        #: load/store guard synchronizes in-flight write-backs before
        #: the CPU touches their host region.
        self.streams = getattr(machine, "streams", False)
        #: In-flight DtoH write-backs: unit base -> (unit end, modelled
        #: finish time of the copy on the d2h stream).
        self._pending_writebacks: Dict[int, tuple] = {}
        #: Times the guard or an external forced a host synchronize.
        self.guard_syncs = 0
        #: Observers of run-time library operations, called as
        #: ``hook(stage, op, ptr, info)`` with stage "pre" (before the
        #: operation mutates any state) or "post" (after it finished),
        #: and op one of "map"/"unmap"/"release".  ``mapArray`` and
        #: ``releaseArray`` notify for the pointer-array unit itself;
        #: per-element work (and all of ``unmapArray``'s) notifies
        #: through the scalar entry points they call.
        self.op_hooks: List[Callable[[str, str, int, AllocationInfo],
                                     None]] = []
        machine.launch_hooks.append(self._on_launch)
        machine.heap_hooks.append(self._on_heap)
        machine.frame_exit_hooks.append(self._on_frame_exit)
        machine.externals.update({
            "map": lambda m, a: self.map_ptr(int(a[0])),
            "unmap": lambda m, a: self.unmap_ptr(int(a[0])),
            "release": lambda m, a: self.release_ptr(int(a[0])),
            "mapArray": lambda m, a: self.map_array(int(a[0])),
            "unmapArray": lambda m, a: self.unmap_array(int(a[0])),
            "releaseArray": lambda m, a: self.release_array(int(a[0])),
            "declareAlloca": lambda m, a: self.declare_alloca(int(a[0])),
            "declareGlobal": self._declare_global_external,
            "mapAsync": lambda m, a: self.map_ptr_async(int(a[0])),
            "unmapAsync": lambda m, a: self.unmap_ptr_async(int(a[0])),
            "mapArrayAsync": lambda m, a: self.map_array_async(int(a[0])),
            "unmapArrayAsync":
                lambda m, a: self.unmap_array_async(int(a[0])),
            "cgcmSync": lambda m, a: self.sync(),
        })
        machine.external_types.update(RUNTIME_SIGNATURES)
        if self.streams:
            machine.mem_hooks.append(self._guard_mem)
            self._wrap_memory_externals()

    # -- registration ------------------------------------------------------

    def declare_global(self, name: str, base: int, size: int,
                       is_read_only: bool = False) -> None:
        """Register a global variable's allocation unit."""
        info = AllocationInfo(base, size, is_global=True, name=name,
                              is_read_only=is_read_only)
        self.alloc_map.insert(base, info)

    def declare_all_globals(self) -> None:
        """Convenience used by tests and manual-mode programs: register
        every module global (the compiler pass inserts equivalent
        ``declareGlobal`` calls at the top of ``main``)."""
        for gv in self.machine.module.globals.values():
            self.declare_global(gv.name,
                                self.machine.layout.address_of(gv.name),
                                gv.size, gv.is_read_only)

    def _declare_global_external(self, machine: Machine, args: List) -> None:
        name = machine.cpu_memory.read_c_string(int(args[0])).decode()
        self.declare_global(name, int(args[1]), int(args[2]),
                            bool(int(args[3])))

    def declare_alloca(self, size: int) -> int:
        """Allocate stack memory and register it; the registration
        expires when the owning function returns."""
        machine = self.machine
        frame = machine.current_frame
        if frame is None:
            raise CgcmRuntimeError("declareAlloca outside any function")
        base = machine.stack_allocate(size)
        info = AllocationInfo(base, size, frame_id=frame.frame_id)
        self.alloc_map.insert(base, info)
        self._stack_regs.setdefault(frame.frame_id, []).append(base)
        return base

    # -- streams guard -------------------------------------------------------

    #: Externals that read or write host memory without going through
    #: the interpreter's load/store path (and hence the mem-hook
    #: guard); under streams they synchronize pending write-backs
    #: first, exactly like a guarded load would.
    _MEMORY_EXTERNAL_NAMES = ("memcpy", "memset", "print_str", "free",
                              "realloc")

    def _wrap_memory_externals(self) -> None:
        externals = self.machine.externals
        for name in self._MEMORY_EXTERNAL_NAMES:
            handler = externals.get(name)
            if handler is None:
                continue
            externals[name] = self._make_syncing_handler(handler)

    def _make_syncing_handler(self, handler: Callable) -> Callable:
        def wrapped(machine: Machine, args: List):
            if self._pending_writebacks:
                self._sync_pending()
            return handler(machine, args)
        return wrapped

    def _guard_mem(self, machine: Machine, kind: str, address: int,
                   size: int) -> None:
        """mem-hook: stall the host until an overlapping in-flight
        write-back completes before the CPU touches its region.

        Data is already in place (the simulator's eager-data model);
        this models the synchronize a real async implementation needs,
        charging the wait as idle time rather than modelled ops.
        Device addresses can never overlap host regions, so kernel
        accesses fall through the interval test untouched.
        """
        pending = self._pending_writebacks
        if not pending:
            return
        end = address + size
        for base, (unit_end, _finish) in pending.items():
            if address < unit_end and base < end:
                self._sync_pending()
                return

    def _sync_pending(self) -> None:
        """Host-synchronize the d2h stream and retire every pending
        write-back.  Charges no modelled ops: the cost is purely the
        host cursor waiting for the copies to drain."""
        self.machine.clock.stream_synchronize(STREAM_D2H)
        self._pending_writebacks.clear()
        self.guard_syncs += 1

    def sync(self) -> None:
        """``cgcmSync``: make every deferred write-back CPU-visible.

        Inserted by the comm-overlap transform before CPU code that
        reads a sunk unmap's region; a no-op under the serial
        discipline (there is nothing in flight to wait for).
        """
        if not self.streams:
            return
        self.machine.flush_cpu()
        if self._pending_writebacks:
            self._sync_pending()

    # -- hooks ---------------------------------------------------------------

    def _on_launch(self, machine: Machine, kernel, grid: int,
                   args: List) -> None:
        self.global_epoch += 1

    def _on_heap(self, machine: Machine, kind: str, address: int,
                 size: int) -> None:
        if kind == "malloc":
            if address:
                self.alloc_map.insert(address,
                                      AllocationInfo(address, size))
        elif kind == "free":
            if not address:
                return
            entry = self.alloc_map.find(address)
            if entry is None:
                return
            if entry.ref_count > 0:
                raise CgcmRuntimeError(
                    f"free of heap block {address:#x} still mapped to the "
                    f"GPU ({entry.ref_count} references)")
            self.alloc_map.remove(address)

    def _on_frame_exit(self, machine: Machine, frame_id: int) -> None:
        for base in self._stack_regs.pop(frame_id, ()):
            info = self.alloc_map.find(base)
            if info is None:
                continue
            if info.ref_count > 0:
                raise CgcmRuntimeError(
                    f"stack variable at {base:#x} left scope while still "
                    f"mapped to the GPU")
            self.alloc_map.remove(base)

    # -- lookup ----------------------------------------------------------------

    def lookup(self, ptr: int) -> AllocationInfo:
        """Allocation unit containing ``ptr`` (greatestLTE + bound check)."""
        self._charge()
        entry = self.alloc_map.find_le(ptr)
        if entry is not None:
            info = entry[1]
            if ptr < info.end:
                return info
        raise CgcmRuntimeError(
            f"pointer {ptr:#x} does not belong to any tracked allocation "
            "unit (unregistered stack variable, foreign pointer, or "
            "out-of-bounds arithmetic)")

    def _charge(self) -> None:
        self.machine.charge_ops(_RUNTIME_CALL_OPS)

    def _notify(self, stage: str, op: str, ptr: int,
                info: AllocationInfo) -> None:
        for hook in self.op_hooks:
            hook(stage, op, ptr, info)

    # -- Algorithm 1: map -------------------------------------------------------

    def map_ptr(self, ptr: int) -> int:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            if not info.is_global:
                info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
            self.machine.flush_cpu()
            data = self.machine.cpu_memory.read(info.base, info.size)
            self.device.memcpy_htod(info.device_ptr, data)
            info.epoch = self.global_epoch
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    # -- Algorithm 2: unmap -----------------------------------------------------

    def unmap_ptr(self, ptr: int) -> None:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "unmap", ptr, info)
        if info.epoch == self.global_epoch or info.is_read_only:
            if self.op_hooks:
                self._notify("post", "unmap", ptr, info)
            return
        if info.device_ptr is None:
            raise CgcmRuntimeError(
                f"unmap of {ptr:#x}: allocation unit has no device copy")
        self.machine.flush_cpu()
        data = self.device.memcpy_dtoh(info.device_ptr, info.size)
        self.machine.cpu_memory.write(info.base, data)
        info.epoch = self.global_epoch
        if self.op_hooks:
            self._notify("post", "unmap", ptr, info)

    # -- Algorithm 3: release ---------------------------------------------------

    def release_ptr(self, ptr: int) -> None:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "release", ptr, info)
        if info.ref_count <= 0:
            raise CgcmRuntimeError(
                f"release of {ptr:#x} below zero references")
        info.ref_count -= 1
        if info.ref_count == 0 and not info.is_global:
            assert info.device_ptr is not None
            if self.streams:
                # Stream-ordered free: the d2h stream is FIFO, so the
                # buffer outlives any in-flight write-back of it
                # without stalling the host.
                self.device.mem_free_async(info.device_ptr, STREAM_D2H)
            else:
                self.device.mem_free(info.device_ptr)
            info.device_ptr = None
        if self.op_hooks:
            self._notify("post", "release", ptr, info)

    # -- array (doubly indirect) variants ----------------------------------------

    def _read_pointer_array(self, info: AllocationInfo) -> List[int]:
        count = info.size // 8
        data = self.machine.cpu_memory.read(info.base, count * 8)
        return list(struct.unpack(f"<{count}Q", data))

    def map_array(self, ptr: int) -> int:
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            elements = self._read_pointer_array(info)
            for element in elements:
                if element:
                    depth_guard = self.lookup(element)
                    if depth_guard.is_array:
                        raise CgcmUnsupportedError(
                            "pointers with three or more degrees of "
                            "indirection are not supported (CGCM "
                            "restriction, paper section 2.3)")
            translated = [self.map_ptr(e) if e else 0 for e in elements]
            if not info.is_global:
                info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
            self.machine.flush_cpu()
            payload = struct.pack(f"<{len(translated)}Q", *translated)
            self.device.memcpy_htod(info.device_ptr, payload)
            info.epoch = self.global_epoch
            info.is_array = True
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    def unmap_array(self, ptr: int) -> None:
        info = self.lookup(ptr)
        for element in self._read_pointer_array(info):
            if element:
                self.unmap_ptr(element)

    def release_array(self, ptr: int) -> None:
        info = self.lookup(ptr)
        if info.ref_count <= 0:
            if self.op_hooks:
                self._notify("pre", "release", ptr, info)
            raise CgcmRuntimeError(
                f"releaseArray of {ptr:#x} below zero references")
        if info.ref_count == 1:
            for element in self._read_pointer_array(info):
                if element:
                    self.release_ptr(element)
            info.is_array = False
        self.release_ptr(ptr)

    # -- asynchronous entry points (streams subsystem) ----------------------------

    def map_ptr_async(self, ptr: int) -> int:
        """Prefetching ``map``: identical unit bookkeeping, but the
        HtoD copy is issued on the h2d stream without blocking the
        host.  A later launch orders itself after the copy via the
        stream cursor (see ``Machine.launch_evaluated``).  Falls back
        to :meth:`map_ptr` under the serial discipline."""
        if not self.streams:
            return self.map_ptr(ptr)
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            if not info.is_global:
                info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
            self.machine.flush_cpu()
            data = self.machine.cpu_memory.read(info.base, info.size)
            self.device.memcpy_htod_async(
                info.device_ptr, data, STREAM_H2D,
                after=self._writeback_deps(info))
            info.epoch = self.global_epoch
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    def _writeback_deps(self, info: AllocationInfo) -> tuple:
        """Event edge for re-mapping a unit whose previous device copy
        is still being written back: the fresh HtoD must not start
        before the old DtoH finished (the host bytes it transfers are
        final only then).  Retires the unit's pending entry."""
        pending = self._pending_writebacks.pop(info.base, None)
        if pending is None:
            return ()
        return (pending[1],)

    def unmap_ptr_async(self, ptr: int) -> None:
        """Deferred-write-back ``unmap``: the DtoH copy is issued on
        the d2h stream, ordered after every launch so far (compute
        stream event), and registered so any CPU access of the host
        region synchronizes first.  Falls back to :meth:`unmap_ptr`
        under the serial discipline."""
        if not self.streams:
            return self.unmap_ptr(ptr)
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "unmap", ptr, info)
        if info.epoch == self.global_epoch or info.is_read_only:
            if self.op_hooks:
                self._notify("post", "unmap", ptr, info)
            return
        if info.device_ptr is None:
            raise CgcmRuntimeError(
                f"unmapAsync of {ptr:#x}: allocation unit has no device "
                "copy")
        self.machine.flush_cpu()
        clock = self.machine.clock
        kernels_done = clock.event_record(STREAM_COMPUTE)
        data, finish = self.device.memcpy_dtoh_async(
            info.device_ptr, info.size, STREAM_D2H, after=(kernels_done,))
        self.machine.cpu_memory.write(info.base, data)
        info.epoch = self.global_epoch
        self._pending_writebacks[info.base] = (info.end, finish)
        if self.op_hooks:
            self._notify("post", "unmap", ptr, info)

    def map_array_async(self, ptr: int) -> int:
        """Asynchronous :meth:`map_array`: elements prefetch through
        :meth:`map_ptr_async`, then the translated pointer array is
        itself copied on the h2d stream."""
        if not self.streams:
            return self.map_array(ptr)
        info = self.lookup(ptr)
        if self.op_hooks:
            self._notify("pre", "map", ptr, info)
        if info.ref_count == 0:
            elements = self._read_pointer_array(info)
            for element in elements:
                if element:
                    depth_guard = self.lookup(element)
                    if depth_guard.is_array:
                        raise CgcmUnsupportedError(
                            "pointers with three or more degrees of "
                            "indirection are not supported (CGCM "
                            "restriction, paper section 2.3)")
            translated = [self.map_ptr_async(e) if e else 0
                          for e in elements]
            if not info.is_global:
                info.device_ptr = self.device.mem_alloc(info.size)
            else:
                info.device_ptr = self.device.module_get_global(info.name)
            self.machine.flush_cpu()
            payload = struct.pack(f"<{len(translated)}Q", *translated)
            self.device.memcpy_htod_async(
                info.device_ptr, payload, STREAM_H2D,
                after=self._writeback_deps(info))
            info.epoch = self.global_epoch
            info.is_array = True
        info.ref_count += 1
        assert info.device_ptr is not None
        if self.op_hooks:
            self._notify("post", "map", ptr, info)
        return info.device_ptr + (ptr - info.base)

    def unmap_array_async(self, ptr: int) -> None:
        """Asynchronous :meth:`unmap_array`: every element's
        write-back is deferred through :meth:`unmap_ptr_async`."""
        if not self.streams:
            return self.unmap_array(ptr)
        info = self.lookup(ptr)
        for element in self._read_pointer_array(info):
            if element:
                self.unmap_ptr_async(element)

    # -- introspection -----------------------------------------------------------

    @property
    def mapped_units(self) -> int:
        return sum(1 for info in self.alloc_map.values()
                   if info.ref_count > 0)

    def info_for(self, ptr: int) -> AllocationInfo:
        """Lookup without charging model time (tests/baselines)."""
        entry = self.alloc_map.find_le(ptr)
        if entry is None or ptr >= entry[1].end:
            raise CgcmRuntimeError(f"untracked pointer {ptr:#x}")
        return entry[1]
