"""CGCM run-time library: allocation tracking and pointer translation."""

from .allocmap import AvlTreeMap
from .api import (ASYNC_RUNTIME_FUNCTIONS, ASYNC_VARIANTS, ENTRY_POINTS,
                  MAP_ARRAY_FUNCTIONS, MAP_FUNCTIONS, RELEASE_ARRAY_FUNCTIONS,
                  RELEASE_FUNCTIONS, RUNTIME_FUNCTION_NAMES,
                  RUNTIME_SIGNATURES, RuntimeEntryPoint, SYNC_FUNCTION,
                  UNMAP_ARRAY_FUNCTIONS, UNMAP_FUNCTIONS, is_runtime_call)
from .cgcm import AllocationInfo, CgcmRuntime, declare_runtime

__all__ = [
    "AvlTreeMap", "AllocationInfo", "CgcmRuntime", "ENTRY_POINTS",
    "MAP_FUNCTIONS", "RELEASE_FUNCTIONS", "RUNTIME_FUNCTION_NAMES",
    "RUNTIME_SIGNATURES", "RuntimeEntryPoint", "UNMAP_FUNCTIONS",
    "declare_runtime", "is_runtime_call",
    "ASYNC_RUNTIME_FUNCTIONS", "ASYNC_VARIANTS", "MAP_ARRAY_FUNCTIONS",
    "UNMAP_ARRAY_FUNCTIONS", "RELEASE_ARRAY_FUNCTIONS", "SYNC_FUNCTION",
]
