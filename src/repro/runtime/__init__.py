"""CGCM run-time library: allocation tracking and pointer translation."""

from .allocmap import AvlTreeMap
from .cgcm import (ASYNC_RUNTIME_FUNCTIONS, ASYNC_VARIANTS, AllocationInfo,
                   CgcmRuntime, MAP_ARRAY_FUNCTIONS, MAP_FUNCTIONS,
                   RELEASE_ARRAY_FUNCTIONS, RELEASE_FUNCTIONS,
                   RUNTIME_FUNCTION_NAMES, RUNTIME_SIGNATURES, SYNC_FUNCTION,
                   UNMAP_ARRAY_FUNCTIONS, UNMAP_FUNCTIONS, declare_runtime)

__all__ = [
    "AvlTreeMap", "AllocationInfo", "CgcmRuntime", "MAP_FUNCTIONS",
    "RELEASE_FUNCTIONS", "RUNTIME_FUNCTION_NAMES", "RUNTIME_SIGNATURES",
    "UNMAP_FUNCTIONS", "declare_runtime",
    "ASYNC_RUNTIME_FUNCTIONS", "ASYNC_VARIANTS", "MAP_ARRAY_FUNCTIONS",
    "UNMAP_ARRAY_FUNCTIONS", "RELEASE_ARRAY_FUNCTIONS", "SYNC_FUNCTION",
]
