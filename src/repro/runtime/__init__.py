"""CGCM run-time library: allocation tracking and pointer translation."""

from .allocmap import AvlTreeMap
from .cgcm import (AllocationInfo, CgcmRuntime, MAP_FUNCTIONS,
                   RELEASE_FUNCTIONS, RUNTIME_FUNCTION_NAMES,
                   RUNTIME_SIGNATURES, UNMAP_FUNCTIONS, declare_runtime)

__all__ = [
    "AvlTreeMap", "AllocationInfo", "CgcmRuntime", "MAP_FUNCTIONS",
    "RELEASE_FUNCTIONS", "RUNTIME_FUNCTION_NAMES", "RUNTIME_SIGNATURES",
    "UNMAP_FUNCTIONS", "declare_runtime",
]
