"""The single registry of CGCM run-time entry points.

Every subsystem that reasons about the run-time library's call surface
-- the communication-management transform, the comm-overlap scheduler,
the static checkers, the alias analysis, and the sanitizer -- used to
carry its own hand-written tuple of entry-point names.  Those string
tables drifted independently as the API grew (the async twins of PR 4
had to be patched into four different files).  This module is now the
one source of truth: each entry point is described once as a
:class:`RuntimeEntryPoint` (name, operation kind, sync/async twin,
unit kind, and a host-memory mod/ref summary), and every derived
name table below is computed from the registry.

Import from here (or from :mod:`repro.runtime.cgcm`, which re-exports
for compatibility); do not write new literal name tuples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ir.types import FunctionType, I64, RAW_PTR, VOID


class EntryOp(enum.Enum):
    """What an entry point does to its allocation unit."""

    MAP = "map"          #: copy host->device, bump references
    UNMAP = "unmap"      #: copy device->host when stale
    RELEASE = "release"  #: drop a reference, free at zero
    DECLARE = "declare"  #: register an allocation unit
    SYNC = "sync"        #: host barrier for deferred write-backs


class UnitKind(enum.Enum):
    """Indirection degree of the unit an entry point manages."""

    SCALAR = "scalar"  #: singly-indirect pointer: one unit
    ARRAY = "array"    #: doubly-indirect: the pointer array + elements
    NONE = "none"      #: no unit operand (declare/sync entry points)


@dataclass(frozen=True)
class RuntimeEntryPoint:
    """One run-time library call, fully described.

    ``reads_host``/``writes_host`` summarize the entry point's effect
    on *host* memory of the managed unit: ``map`` reads the unit (the
    HtoD copy ships its bytes), ``unmap`` writes it (the DtoH
    write-back lands in it).  The analyses treat run-time calls as
    coherently managed rather than as ordinary accesses, but the
    summary is what makes that decision auditable in one place.
    """

    name: str
    op: EntryOp
    unit_kind: UnitKind
    signature: FunctionType
    is_async: bool = False
    #: Name of the sync/async twin entry point, if one exists.
    twin: Optional[str] = None
    reads_host: bool = False
    writes_host: bool = False


def _entry(name: str, op: EntryOp, unit_kind: UnitKind,
           signature: FunctionType, **kwargs) -> RuntimeEntryPoint:
    return RuntimeEntryPoint(name, op, unit_kind, signature, **kwargs)


_PTR_TO_PTR = FunctionType(RAW_PTR, [RAW_PTR])
_PTR_TO_VOID = FunctionType(VOID, [RAW_PTR])

#: The registry, in the paper's declaration order (Table 2, then the
#: asynchronous variants of the streams subsystem, then the barrier).
ENTRY_POINTS: Dict[str, RuntimeEntryPoint] = {
    ep.name: ep for ep in (
        _entry("map", EntryOp.MAP, UnitKind.SCALAR, _PTR_TO_PTR,
               twin="mapAsync", reads_host=True),
        _entry("unmap", EntryOp.UNMAP, UnitKind.SCALAR, _PTR_TO_VOID,
               twin="unmapAsync", writes_host=True),
        _entry("release", EntryOp.RELEASE, UnitKind.SCALAR, _PTR_TO_VOID),
        _entry("mapArray", EntryOp.MAP, UnitKind.ARRAY, _PTR_TO_PTR,
               twin="mapArrayAsync", reads_host=True),
        _entry("unmapArray", EntryOp.UNMAP, UnitKind.ARRAY, _PTR_TO_VOID,
               twin="unmapArrayAsync", writes_host=True),
        _entry("releaseArray", EntryOp.RELEASE, UnitKind.ARRAY,
               _PTR_TO_VOID),
        _entry("declareAlloca", EntryOp.DECLARE, UnitKind.NONE,
               FunctionType(RAW_PTR, [I64])),
        _entry("declareGlobal", EntryOp.DECLARE, UnitKind.NONE,
               FunctionType(VOID, [RAW_PTR, RAW_PTR, I64, I64])),
        _entry("mapAsync", EntryOp.MAP, UnitKind.SCALAR, _PTR_TO_PTR,
               is_async=True, twin="map", reads_host=True),
        _entry("unmapAsync", EntryOp.UNMAP, UnitKind.SCALAR, _PTR_TO_VOID,
               is_async=True, twin="unmap", writes_host=True),
        _entry("mapArrayAsync", EntryOp.MAP, UnitKind.ARRAY, _PTR_TO_PTR,
               is_async=True, twin="mapArray", reads_host=True),
        _entry("unmapArrayAsync", EntryOp.UNMAP, UnitKind.ARRAY,
               _PTR_TO_VOID, is_async=True, twin="unmapArray",
               writes_host=True),
        _entry("cgcmSync", EntryOp.SYNC, UnitKind.NONE,
               FunctionType(VOID, [])),
    )
}


def entry(name: str) -> RuntimeEntryPoint:
    """The registry record for ``name`` (KeyError for non-runtime)."""
    return ENTRY_POINTS[name]


def is_runtime_call(name: str) -> bool:
    return name in ENTRY_POINTS


def _names(op: Optional[EntryOp] = None,
           unit_kind: Optional[UnitKind] = None,
           is_async: Optional[bool] = None) -> Tuple[str, ...]:
    out = []
    for ep in ENTRY_POINTS.values():
        if op is not None and ep.op is not op:
            continue
        if unit_kind is not None and ep.unit_kind is not unit_kind:
            continue
        if is_async is not None and ep.is_async is not is_async:
            continue
        out.append(ep.name)
    return tuple(out)


#: IR signatures of every entry point (paper Table 2 + extensions).
RUNTIME_SIGNATURES: Dict[str, FunctionType] = {
    name: ep.signature for name, ep in ENTRY_POINTS.items()}

RUNTIME_FUNCTION_NAMES: Tuple[str, ...] = tuple(ENTRY_POINTS)

#: Names of the map/unmap/release families (sync and async members).
MAP_FUNCTIONS = _names(op=EntryOp.MAP)
UNMAP_FUNCTIONS = _names(op=EntryOp.UNMAP)
RELEASE_FUNCTIONS = _names(op=EntryOp.RELEASE)

#: Doubly-indirect (pointer-array) members of each family.
MAP_ARRAY_FUNCTIONS = _names(op=EntryOp.MAP, unit_kind=UnitKind.ARRAY)
UNMAP_ARRAY_FUNCTIONS = _names(op=EntryOp.UNMAP, unit_kind=UnitKind.ARRAY)
RELEASE_ARRAY_FUNCTIONS = _names(op=EntryOp.RELEASE,
                                 unit_kind=UnitKind.ARRAY)

#: Every entry point managing a pointer-array unit.
ARRAY_FUNCTIONS = (MAP_ARRAY_FUNCTIONS + UNMAP_ARRAY_FUNCTIONS
                   + RELEASE_ARRAY_FUNCTIONS)

#: Entry points whose spans go to the copy streams instead of blocking
#: the host (rewritten in by ``transforms/comm_overlap``).
ASYNC_RUNTIME_FUNCTIONS = _names(is_async=True)

#: sync name -> async name, for the comm-overlap rewrite.
ASYNC_VARIANTS: Dict[str, str] = {
    ep.name: ep.twin for ep in ENTRY_POINTS.values()
    if not ep.is_async and ep.twin is not None}

#: async name -> sync name: the inverse rewrite, used by translation
#: validation to compare runtime-call multisets modulo the async twin
#: renaming.
SYNC_TWINS: Dict[str, str] = {
    ep.name: ep.twin for ep in ENTRY_POINTS.values()
    if ep.is_async and ep.twin is not None}

SYNC_FUNCTION = _names(op=EntryOp.SYNC)[0]

#: Entry points that observe a unit's *address* without reading or
#: writing the pointed-to value through ordinary IR semantics -- a
#: cast whose only users are these calls does not let the pointer
#: escape (used by the alias analysis' direct-slot exemption).
ADDRESS_OBSERVING_FUNCTIONS = (MAP_FUNCTIONS + UNMAP_FUNCTIONS
                               + RELEASE_FUNCTIONS + ("declareGlobal",))


def map_name(depth: int) -> str:
    """The map entry point for an indirection ``depth`` (paper §4)."""
    return MAP_ARRAY_FUNCTIONS[0] if depth >= 2 else MAP_FUNCTIONS[0]


def unmap_name(depth: int) -> str:
    return UNMAP_ARRAY_FUNCTIONS[0] if depth >= 2 else UNMAP_FUNCTIONS[0]


def release_name(depth: int) -> str:
    return RELEASE_ARRAY_FUNCTIONS[0] if depth >= 2 \
        else RELEASE_FUNCTIONS[0]
