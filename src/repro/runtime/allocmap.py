"""Self-balancing binary tree map keyed by allocation base address.

The paper (section 3.1): "The run-time library stores the base and
size of each allocation unit in a self-balancing binary tree map
indexed by the base address of each allocation unit.  To determine the
base and size of a pointer's allocation unit, the run-time library
finds the greatest key in the allocation map less than or equal to the
pointer."

This is an AVL tree written from scratch; ``find_le`` implements the
greatest-key-<= lookup (``greatestLTE`` in the paper's pseudo-code).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: int, value: Any):
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTreeMap:
    """An AVL-balanced ordered map from int keys to arbitrary values."""

    def __init__(self):
        self._root: Optional[_Node] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.find(key) is not None

    # -- queries ---------------------------------------------------------

    def find(self, key: int) -> Optional[Any]:
        """Value stored at exactly ``key``, or None."""
        node = self._root
        while node is not None:
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return None

    def find_le(self, key: int) -> Optional[Tuple[int, Any]]:
        """Greatest (key, value) with key <= the query (``greatestLTE``)."""
        node = self._root
        best: Optional[_Node] = None
        while node is not None:
            if node.key == key:
                return (node.key, node.value)
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best is not None else None

    def min_key(self) -> Optional[int]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Optional[int]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order (sorted) iteration."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def keys(self) -> Iterator[int]:
        return (key for key, _ in self.items())

    def values(self) -> Iterator[Any]:
        return (value for _, value in self.items())

    # -- mutation --------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or replace the value at ``key``."""
        self._root, added = self._insert(self._root, key, value)
        if added:
            self._size += 1

    def _insert(self, node: Optional[_Node], key: int,
                value: Any) -> Tuple[_Node, bool]:
        if node is None:
            return _Node(key, value), True
        if key == node.key:
            node.value = value
            return node, False
        if key < node.key:
            node.left, added = self._insert(node.left, key, value)
        else:
            node.right, added = self._insert(node.right, key, value)
        return _rebalance(node), added

    def remove(self, key: int) -> bool:
        """Remove ``key``; returns False if it was absent."""
        self._root, removed = self._remove(self._root, key)
        if removed:
            self._size -= 1
        return removed

    def _remove(self, node: Optional[_Node],
                key: int) -> Tuple[Optional[_Node], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._remove(node.left, key)
        elif key > node.key:
            node.right, removed = self._remove(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key = successor.key
            node.value = successor.value
            node.right, _ = self._remove(node.right, successor.key)
        return _rebalance(node), removed

    # -- invariant checks (used by property tests) -------------------------

    def check_invariants(self) -> None:
        """Assert AVL balance and BST ordering over the whole tree."""
        def recurse(node: Optional[_Node],
                    lo: Optional[int], hi: Optional[int]) -> int:
            if node is None:
                return 0
            if lo is not None and node.key <= lo:
                raise AssertionError("BST order violated (left)")
            if hi is not None and node.key >= hi:
                raise AssertionError("BST order violated (right)")
            left = recurse(node.left, lo, node.key)
            right = recurse(node.right, node.key, hi)
            if abs(left - right) > 1:
                raise AssertionError(f"AVL balance violated at {node.key}")
            height = 1 + max(left, right)
            if node.height != height:
                raise AssertionError(f"stale height at {node.key}")
            return height

        recurse(self._root, None, None)
