"""Device placement: balanced graph partitioning of allocation units.

The objective mirrors the classic k-way partitioning formulation:
minimize the total edge weight crossing device boundaries (units
co-accessed by one launch want one device, or every launch pays a peer
broadcast) subject to a balance constraint on per-device bytes.  The
solver is the standard greedy: visit units largest-first, assign each
to the device with the strongest affinity (edge weight to units
already placed there) that still fits under the balance cap, breaking
ties toward the lighter device and then the lower index.

Determinism matters more than cut quality here: the same module must
always produce the same assignment (tests pin this), so every ordering
is explicit and there is no randomized refinement pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.unitgraph import UnitGraph, build_unit_graph
from ..gpu.topology import Topology
from ..ir.module import Module

#: Allowed per-device overshoot of the perfectly balanced byte load.
DEFAULT_BALANCE = 0.25


@dataclass
class PlacementPlan:
    """A per-unit device assignment plus the facts it was derived from."""

    topology: Topology
    #: unit label (see :mod:`repro.analysis.unitgraph`) -> home device.
    assignment: Dict[str, int]
    #: statically-estimated bytes homed per device.
    loads: List[int]
    graph: UnitGraph
    #: total co-access weight on edges crossing device boundaries.
    cut_weight: int

    def device_of(self, label: str, default: int = 0) -> int:
        return self.assignment.get(label, default)

    def render(self) -> str:
        lines = [f"placement over {self.topology.num_devices} device(s) "
                 f"({self.topology.kind}), cut weight {self.cut_weight}:"]
        for label in sorted(self.assignment):
            size = self.graph.sizes.get(label, 0)
            lines.append(f"  {label:<28} -> gpu{self.assignment[label]}"
                         f"  ({size} B)")
        return "\n".join(lines)


def partition_units(graph: UnitGraph, topology: Topology,
                    balance: float = DEFAULT_BALANCE) -> PlacementPlan:
    """Greedily partition ``graph``'s units across the topology."""
    k = topology.num_devices
    labels = sorted(graph.sizes,
                    key=lambda lb: (-graph.sizes[lb], lb))
    total = sum(graph.sizes.values())
    cap = (1.0 + balance) * total / k if total and k > 1 else float("inf")
    assignment: Dict[str, int] = {}
    loads = [0] * k
    counts = [0] * k
    for label in labels:
        size = graph.sizes[label]
        affinity = [0] * k
        for neighbour, weight in graph.affinity(label).items():
            home = assignment.get(neighbour)
            if home is not None:
                affinity[home] += weight
        fits = [d for d in range(k) if loads[d] + size <= cap]
        if fits:
            best = min(fits,
                       key=lambda d: (-affinity[d], loads[d], counts[d], d))
        else:
            # No device admits the unit under the balance cap (it is
            # large relative to total/k): the constraint is infeasible,
            # so fall back to pure load balancing -- letting affinity
            # win here would pile every big co-accessed unit onto one
            # device and serialize their uploads.
            best = min(range(k), key=lambda d: (loads[d], counts[d], d))
        assignment[label] = best
        loads[best] += size
        counts[best] += 1
    cut = sum(weight for (a, b), weight in graph.edges.items()
              if assignment.get(a) != assignment.get(b))
    return PlacementPlan(topology, assignment, loads, graph, cut)


def plan_placement(module: Module, topology: Topology,
                   context: Optional[object] = None,
                   balance: float = DEFAULT_BALANCE) -> PlacementPlan:
    """Build the unit-access graph for ``module`` and partition it."""
    return partition_units(build_unit_graph(module, context), topology,
                           balance)
