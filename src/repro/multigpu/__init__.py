"""Multi-GPU subsystem: device placement, grid sharding, collectives.

CGCM (the source paper) manages coherence for one CPU-GPU pair; this
package generalizes it to a :class:`~repro.gpu.topology.Topology` of N
simulated devices:

* :mod:`repro.multigpu.placement` partitions allocation units across
  devices by greedy edge-weight minimization over the unit-access
  graph (:mod:`repro.analysis.unitgraph`) under a balance constraint.
* :mod:`repro.multigpu.coordinator` executes the plan: it homes each
  mapped unit on a device, routes transfers onto per-device lanes and
  streams, shards DOALL grids across the devices holding their
  operands, and schedules peer-to-peer broadcasts/gathers on async
  streams so collectives overlap compute.

Everything is *modelled* time over one physical backing store (the
simulator's eager-data model), so an N-device run is byte-identical to
the single-device run by construction -- the multibench sweep asserts
exactly that.
"""

from .coordinator import MultiGpuCoordinator
from .placement import PlacementPlan, partition_units, plan_placement

__all__ = ["MultiGpuCoordinator", "PlacementPlan", "partition_units",
           "plan_placement"]
