"""Multi-GPU execution coordinator.

Attached to one :class:`~repro.interp.machine.Machine` +
:class:`~repro.runtime.cgcm.CgcmRuntime` pair when the execution runs
under a multi-device :class:`~repro.gpu.topology.Topology`.  The
coordinator is purely a *scheduler*: it never moves bytes (the
simulator's eager-data model keeps one physical backing store, which
is why N-device runs stay byte-identical to one device); it decides
which modelled lane and stream every span lands on.

Responsibilities:

* **Homes.**  Every allocation unit the runtime maps gets a *home*
  device, from the static :class:`~repro.multigpu.placement.\
  PlacementPlan` (globals by name, anonymous heap units by static
  size, the rest least-loaded).  Host<->device transfers for a unit
  occupy its home device's comm lane and h2d/d2h streams, so uploads
  bound for different devices overlap.
* **Coherence.**  Per unit, the set of devices holding a valid copy
  (``valid``) and the modelled time each copy becomes usable
  (``ready``).  Launches reading a unit on a device without a valid
  copy trigger a peer *broadcast* over the topology's links; writes
  invalidate every copy but the home's, via a *gather*.
* **Sharding.**  A DOALL kernel whose operands span several homes may
  have its grid split into contiguous blocks, one per operand device,
  each scheduled on that device's compute stream -- collectives and
  shards on different devices overlap, GC3-style.

Observers subscribe through :attr:`MultiGpuCoordinator.hooks` and
receive ``hook(event, payload)`` with event ``"place"`` /
``"broadcast"`` / ``"gather"`` / ``"launch"``; the communication
sanitizer mirrors the valid sets independently and reports a
cross-device stale read if a launch beats its broadcast.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..gpu.topology import Topology
from ..interp.machine import Machine
from ..runtime.cgcm import AllocationInfo, CgcmRuntime
from .placement import PlacementPlan

#: Op-hook operations that bracket a comm-lane retarget (fired with
#: both "pre" and "post" stages, possibly nested for array elements).
_ROUTED_OPS = frozenset({"map", "unmap", "release"})


class UnitHome:
    """Dynamic per-unit device state (keyed by the unit's host base)."""

    __slots__ = ("home", "valid", "ready", "label")

    def __init__(self, home: int, label: Optional[str] = None):
        self.home = home
        #: Devices holding a complete, current copy of the unit.
        self.valid: Set[int] = set()
        #: Modelled time each device's copy becomes usable.
        self.ready: Dict[int, float] = {}
        #: Placement-plan label this unit matched, if any -- the key
        #: into the plan's static per-kernel read/write sets.
        self.label = label

    def ready_on(self, device: int) -> float:
        return self.ready.get(device, 0.0)


class MultiGpuCoordinator:
    """Schedules one execution across a multi-device topology."""

    def __init__(self, machine: Machine, runtime: CgcmRuntime,
                 topology: Topology, plan: Optional[PlacementPlan] = None,
                 auto_broadcast: bool = True):
        self.machine = machine
        self.runtime = runtime
        self.topology = topology
        self.plan = plan
        #: When False, launches skip the peer broadcasts their reads
        #: need -- a seeded defect the sanitizer tests lean on.  Real
        #: executions always construct with True.
        self.auto_broadcast = auto_broadcast
        self.clock = machine.clock
        self.device = machine.device
        #: Observers: ``hook(event, payload_dict)``.
        self.hooks: List[Callable[[str, dict], None]] = []
        self._homes: Dict[int, UnitHome] = {}
        self._loads = [0] * topology.num_devices
        #: (comm-lane, was-first-map) bracket stack for nested ops.
        self._route_stack: List[Tuple[str, bool]] = []
        #: Static sizes from the plan still available for matching
        #: anonymous heap/stack units, FIFO per size in label order.
        self._size_pool: Dict[int, List[Tuple[str, int]]] = {}
        #: kernel name -> labels it writes, or None when some launch
        #: site's operands could not be traced (be conservative).
        self._kernel_writes: Dict[str, Optional[Set[str]]] = {}
        if plan is not None:
            for label in sorted(plan.assignment):
                if label.startswith("g:"):
                    continue
                size = plan.graph.sizes.get(label, 0)
                if size > 0:
                    self._size_pool.setdefault(size, []).append(
                        (label, plan.assignment[label]))
            for site in plan.graph.launches:
                if site.unknown \
                        or self._kernel_writes.get(site.kernel,
                                                   set()) is None:
                    self._kernel_writes[site.kernel] = None
                else:
                    self._kernel_writes.setdefault(
                        site.kernel, set()).update(site.writes)
        for d in topology.devices():
            self.clock.add_lane(topology.gpu_lane(d))
            self.clock.add_lane(topology.comm_lane(d))
        runtime.multigpu = self
        runtime.op_hooks.append(self._on_op)
        machine.grid_scheduler = self.schedule_launch

    # -- observers -----------------------------------------------------------

    def _emit(self, event: str, **payload) -> None:
        if self.hooks:
            for hook in self.hooks:
                hook(event, payload)

    # -- unit homes ----------------------------------------------------------

    def home_of(self, info: AllocationInfo) -> Optional[UnitHome]:
        return self._homes.get(info.base)

    def _place(self, info: AllocationInfo) -> UnitHome:
        """Assign a freshly mapped unit its home device."""
        home: Optional[int] = None
        label: Optional[str] = None
        if self.plan is not None:
            if info.is_global:
                label = f"g:{info.name}"
                home = self.plan.assignment.get(label)
                if home is None:
                    label = None
            else:
                # Anonymous heap/stack unit: consume a statically-
                # placed site of the same byte size, in label order.
                # Allocation order is program order, identical across
                # engines, so this match is deterministic.
                pool = self._size_pool.get(info.size)
                if pool:
                    label, home = pool.pop(0)
        if home is None:
            home = min(self.topology.devices(),
                       key=lambda d: (self._loads[d], d))
        state = UnitHome(home, label)
        self._homes[info.base] = state
        self._loads[home] += info.size
        self.clock.count("multigpu_placements")
        self._emit("place", unit=info, device=home)
        return state

    # -- runtime op-hook: lane routing and coherence updates -----------------

    def _on_op(self, stage: str, op: str, ptr: int,
               info: AllocationInfo) -> None:
        if op not in _ROUTED_OPS:
            return
        if stage == "pre":
            state = self._homes.get(info.base)
            first_map = False
            if state is None and op == "map":
                state = self._place(info)
                first_map = True
            elif op == "map" and info.ref_count == 0:
                first_map = True
            self._route_stack.append((self.device.comm_lane, first_map))
            if state is not None:
                self.device.comm_lane = self.topology.comm_lane(state.home)
                if op == "unmap":
                    # A blocking write-back reads the home copy: wait
                    # for the gather that completed it.
                    self.clock.host_wait(state.ready_on(state.home))
            return
        # stage == "post"
        if not self._route_stack:
            return
        lane, first_map = self._route_stack.pop()
        self.device.comm_lane = lane
        state = self._homes.get(info.base)
        if state is None:
            return
        if op == "map" and first_map:
            # The upload (sync: host already dragged to its end;
            # async: note_htod recorded the finish) made the home
            # copy the only valid one.
            state.valid = {state.home}
            host = self.clock.host_time_s
            if host > state.ready_on(state.home):
                state.ready[state.home] = host
        elif op == "release" and info.ref_count == 0 \
                and not info.is_global:
            self._homes.pop(info.base, None)
            self._loads[state.home] -= info.size

    def note_htod(self, info: AllocationInfo, finish: float) -> None:
        """Record an async upload's finish as the home copy's ready
        time (called by the runtime's async map paths)."""
        state = self._homes.get(info.base)
        if state is None:
            return
        state.valid = {state.home}
        state.ready[state.home] = finish

    def unmap_deps(self, info: AllocationInfo) -> Tuple[float, ...]:
        """Extra event edges an async write-back of ``info`` must wait
        for: the gather that made the home copy complete."""
        state = self._homes.get(info.base)
        if state is None:
            return ()
        return (state.ready_on(state.home),)

    def h2d_stream(self, info: AllocationInfo) -> str:
        state = self._homes.get(info.base)
        return self.topology.h2d_stream(state.home if state else 0)

    def d2h_stream(self, info: AllocationInfo) -> str:
        state = self._homes.get(info.base)
        return self.topology.d2h_stream(state.home if state else 0)

    def d2h_streams(self) -> List[str]:
        return [self.topology.d2h_stream(d)
                for d in self.topology.devices()]

    # -- collectives ---------------------------------------------------------

    def _peer_copy(self, src: int, dst: int, size: int, after: float,
                   label: str) -> float:
        """Schedule one peer copy along the topology's route.

        Each directed link is both an engine lane and a FIFO stream:
        copies over distinct links overlap, copies over one link
        serialize.  Multi-hop (ring) routes chain one span per link.
        Returns the modelled finish time.
        """
        per_hop = self.topology.link.transfer_time(size)
        finish = after
        for a, b in self.topology.path(src, dst):
            lane = self.topology.p2p_lane(a, b)
            self.clock.add_lane(lane)
            finish = self.clock.schedule(lane, per_hop, lane, label,
                                         after=(finish,))
        self.clock.count("p2p_copies")
        self.clock.count("p2p_bytes", size)
        return finish

    def _broadcast(self, info: AllocationInfo, state: UnitHome,
                   targets: List[int]) -> None:
        """Give every target device a valid copy of ``info``."""
        for dst in targets:
            if dst in state.valid:
                continue
            src = state.home if state.home in state.valid \
                else min(state.valid) if state.valid else state.home
            finish = self._peer_copy(
                src, dst, info.size, state.ready_on(src),
                f"bcast {info.name or hex(info.base)} "
                f"gpu{src}->gpu{dst}")
            state.valid.add(dst)
            state.ready[dst] = finish
            self._emit("broadcast", unit=info, src=src, dst=dst)

    # -- grid scheduling -----------------------------------------------------

    def _may_write(self, kernel_name: str, label: Optional[str]) -> bool:
        """Whether ``kernel_name`` may write the unit behind ``label``.

        True unless the placement plan has a complete access summary
        for the kernel AND the unit matched a plan label that summary
        omits from its write set -- only provably read-only operands
        skip the post-launch ownership transfer.
        """
        if label is None:
            return True
        written = self._kernel_writes.get(kernel_name, None)
        if written is None:
            return True
        return label in written

    def schedule_launch(self, kernel, grid: int, args: List,
                        total_ops: int, max_ops: int,
                        duration: float) -> bool:
        """Machine grid-scheduler hook: place one launch's span(s).

        Always returns True -- under a multi-device topology every
        grid launch is scheduled here, so even unsharded kernels run
        on the device holding (most of) their operands.
        """
        topo = self.topology
        clock = self.clock
        model = clock.model
        units = [(info, state)
                 for info in self.runtime._operand_units(kernel, args)
                 for state in (self._homes.get(info.base),)
                 if state is not None]
        # Everything mapped is read; written means writable AND the
        # plan's static access summary says this kernel writes the
        # unit's label (conservatively written when either side is
        # unknown).  Pointer-array device payloads hold translated
        # pointers kernels cannot overwrite (CGCM restriction), so
        # they are never gathered.
        writes = [(info, state) for info, state in units
                  if not info.is_read_only and not info.is_array
                  and grid > 0
                  and self._may_write(kernel.name, state.label)]
        exec_devices = sorted({state.home for _, state in units}) or [0]
        shards = self._shard_plan(kernel, grid, exec_devices, units,
                                  writes, total_ops, max_ops, duration)
        if shards is None:
            primary = max(
                exec_devices,
                key=lambda d: (sum(info.size for info, state in units
                                   if state.home == d), -d))
            shards = [(primary, grid)]
        else:
            clock.count("sharded_launches")
        shard_devices = [d for d, _ in shards]
        if self.auto_broadcast:
            for info, state in units:
                self._broadcast(info, state, shard_devices)
        self._emit("launch", kernel=kernel.name, devices=shard_devices,
                   reads=[info for info, _ in units],
                   writes=[info for info, _ in writes])
        # Compute spans: one per shard, on the shard device's compute
        # stream, after that device's copy streams and operand copies.
        finishes: Dict[int, float] = {}
        for d, n_d in shards:
            dur = model.kernel_launch_latency_s
            if grid and n_d:
                dur += model.gpu_time(total_ops * n_d / grid, max_ops)
            deps = [clock.stream_cursor(topo.h2d_stream(d)),
                    clock.stream_cursor(topo.d2h_stream(d))]
            for info, state in units:
                deps.append(state.ready_on(d))
            finishes[d] = clock.schedule(
                topo.gpu_lane(d), dur, topo.compute_stream(d),
                f"{kernel.name}[{n_d}/{grid}]", after=tuple(deps))
        # Writes collapse each written unit to a single valid copy.
        # Unsharded launches *re-home* the unit onto the executing
        # device -- gathering it back would ping-pong loop-carried
        # units between their static home and the device the loop
        # actually runs on, one full round trip per iteration.
        # Sharded launches produced partial writes on every shard
        # device, so the slices gather to the home over peer links.
        for info, state in writes:
            if len(shards) == 1:
                d = shards[0][0]
                if d != state.home:
                    self._loads[state.home] -= info.size
                    self._loads[d] += info.size
                    state.home = d
                state.valid = {d}
                state.ready[d] = max(state.ready_on(d), finishes[d])
                self._emit("gather", unit=info, dst=d)
                continue
            ready = state.ready_on(state.home)
            for d, n_d in shards:
                if d == state.home:
                    ready = max(ready, finishes[d])
                    continue
                finish = self._peer_copy(
                    d, state.home, info.size * n_d // grid, finishes[d],
                    f"gather {info.name or hex(info.base)} "
                    f"gpu{d}->gpu{state.home}")
                ready = max(ready, finish)
            state.valid = {state.home}
            state.ready[state.home] = ready
            self._emit("gather", unit=info, dst=state.home)
        clock.count("multi_device_launches")
        return True

    def _shard_plan(self, kernel, grid: int, exec_devices: List[int],
                    units, writes, total_ops: int, max_ops: int,
                    duration: float) -> Optional[List[Tuple[int, int]]]:
        """Contiguous grid split across operand devices, or None.

        Only DOALL-marked kernels shard (iteration order is free), and
        only when the modelled compute saved beats the recurring
        gather cost -- a broadcast of a read-only operand is paid once
        and then amortized, but written units gather home every
        launch.
        """
        k = len(exec_devices)
        if k < 2 or grid < k or not getattr(kernel, "is_doall", False):
            return None
        model = self.clock.model
        n_max = -(-grid // k)
        shard_dur = model.kernel_launch_latency_s \
            + model.gpu_time(total_ops * n_max / grid, max_ops)
        gather_bytes = sum(info.size for info, _ in writes)
        recurring = self.topology.link.transfer_time(gather_bytes) \
            if gather_bytes else 0.0
        if duration - shard_dur <= recurring:
            return None
        base, rem = divmod(grid, k)
        return [(d, base + (1 if i < rem else 0))
                for i, d in enumerate(exec_devices)]
