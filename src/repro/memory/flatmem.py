"""Byte-addressable simulated memory.

Each :class:`FlatMemory` is one address space made of named segments
(globals, stack, heap for the CPU; a single device segment for the
GPU).  Every access is bounds-checked against its segment, so a CPU
dereference of a GPU pointer -- the bug class CGCM prevents -- raises
:class:`MemoryFault` instead of silently reading garbage.

Scalar accesses are the hottest operation in the whole simulator
(every IR ``load``/``store`` lands here), so the codec objects are
built once at import time: per-width :class:`struct.Struct` instances
replace per-access format-string parsing, ``unpack_from``/``pack_into``
avoid intermediate ``bytes`` copies, and a one-entry segment cache
skips the linear segment scan for the overwhelmingly common case of
consecutive accesses to the same segment.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Union

from ..errors import MemoryFault
from ..ir.types import FloatType, IntType, PointerType, Type

_INT_FORMATS = {1: "<b", 8: "<b", 16: "<h", 32: "<i", 64: "<q"}
_FLOAT_FORMATS = {32: "<f", 64: "<d"}
_POINTER_FORMAT = "<Q"

#: Pre-compiled codecs, one per scalar width; ``struct.Struct`` parses
#: its format string once here instead of on every access.
_INT_STRUCTS = {bits: struct.Struct(fmt)
                for bits, fmt in _INT_FORMATS.items()}
_FLOAT_STRUCTS = {bits: struct.Struct(fmt)
                  for bits, fmt in _FLOAT_FORMATS.items()}
_POINTER_STRUCT = struct.Struct(_POINTER_FORMAT)


class Segment:
    """A contiguous, growable span of one address space."""

    __slots__ = ("name", "base", "capacity", "limit", "data")

    def __init__(self, name: str, base: int, capacity: int):
        self.name = name
        self.base = base
        self.capacity = capacity
        #: One past the last byte the segment may ever hold (plain
        #: attribute, not a property: it sits on the access hot path).
        self.limit = base + capacity
        self.data = bytearray()

    @property
    def end(self) -> int:
        """One past the last *live* byte."""
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def grow_to(self, size: int) -> None:
        if size > self.capacity:
            raise MemoryFault(
                f"segment {self.name} overflow: need {size} bytes, "
                f"capacity {self.capacity}", self.base + size)
        if size > len(self.data):
            self.data.extend(b"\x00" * (size - len(self.data)))

    def __repr__(self) -> str:
        return (f"<Segment {self.name} [{self.base:#x}, {self.limit:#x}) "
                f"live={len(self.data)}>")


class FlatMemory:
    """One simulated address space built from disjoint segments."""

    def __init__(self, name: str = "memory"):
        self.name = name
        self.segments: List[Segment] = []
        self._by_name: Dict[str, Segment] = {}
        #: One-entry cache of the last segment hit; scalar accesses
        #: overwhelmingly stay within one segment for long runs.
        self._cached_segment: Optional[Segment] = None

    def add_segment(self, name: str, base: int, capacity: int) -> Segment:
        segment = Segment(name, base, capacity)
        for other in self.segments:
            if base < other.limit and other.base < base + capacity:
                raise MemoryFault(
                    f"segment {name} overlaps {other.name}", base)
        self.segments.append(segment)
        self._by_name[name] = segment
        if self._cached_segment is None:
            self._cached_segment = segment
        return segment

    def segment(self, name: str) -> Segment:
        return self._by_name[name]

    def segment_for(self, address: int) -> Segment:
        segment = self._cached_segment
        if segment is not None and \
                segment.base <= address < segment.limit:
            return segment
        for segment in self.segments:
            if segment.base <= address < segment.limit:
                self._cached_segment = segment
                return segment
        raise MemoryFault(
            f"{self.name}: address {address:#x} is outside every segment "
            "of this address space (foreign or wild pointer)", address)

    def _span(self, address: int, size: int) -> tuple:
        if size < 0:
            raise MemoryFault(f"negative access size {size}", address)
        segment = self.segment_for(address)
        offset = address - segment.base
        if offset + size > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {size} bytes at {address:#x} "
                f"overruns segment {segment.name}", address)
        segment.grow_to(offset + size)
        return segment, offset

    # -- raw bytes -------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        segment, offset = self._span(address, size)
        return bytes(segment.data[offset:offset + size])

    def write(self, address: int, data: bytes) -> None:
        segment, offset = self._span(address, len(data))
        segment.data[offset:offset + len(data)] = data

    def fill(self, address: int, size: int, byte: int = 0) -> None:
        segment, offset = self._span(address, size)
        segment.data[offset:offset + size] = bytes([byte]) * size

    def read_c_string(self, address: int, max_len: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string starting at ``address``."""
        out = bytearray()
        for i in range(max_len):
            byte = self.read(address + i, 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise MemoryFault("unterminated C string", address)

    # -- typed scalars ---------------------------------------------------

    def load_scalar(self, address: int, type_: Type) -> Union[int, float]:
        codec = scalar_struct(type_)
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        end = offset + codec.size
        if end > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {codec.size} bytes at "
                f"{address:#x} overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        value = codec.unpack_from(segment.data, offset)[0]
        if isinstance(type_, IntType) and type_.bits == 1:
            value &= 1
        return value

    def store_scalar(self, address: int, type_: Type,
                     value: Union[int, float]) -> None:
        codec = scalar_struct(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, PointerType):
            value = int(value) & 0xFFFFFFFFFFFFFFFF
        else:
            value = float(value)
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        end = offset + codec.size
        if end > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {codec.size} bytes at "
                f"{address:#x} overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        codec.pack_into(segment.data, offset, value)

    def scalar_span(self, address: int, size: int) -> tuple:
        """(segment, offset) for a bounds-checked ``size``-byte access.

        Shared with the closure compiler, which bakes the codec and
        size at compile time and needs only the located span.
        """
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        end = offset + size
        if end > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {size} bytes at {address:#x} "
                f"overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        return segment, offset


def scalar_format(type_: Type) -> str:
    """The ``struct`` format character encoding a scalar type."""
    if isinstance(type_, IntType):
        return _INT_FORMATS[type_.bits]
    if isinstance(type_, FloatType):
        return _FLOAT_FORMATS[type_.bits]
    if isinstance(type_, PointerType):
        return _POINTER_FORMAT
    raise MemoryFault(f"cannot access memory as {type_}")


def scalar_struct(type_: Type) -> struct.Struct:
    """The pre-compiled :class:`struct.Struct` codec for a scalar type."""
    if isinstance(type_, IntType):
        return _INT_STRUCTS[type_.bits]
    if isinstance(type_, FloatType):
        return _FLOAT_STRUCTS[type_.bits]
    if isinstance(type_, PointerType):
        return _POINTER_STRUCT
    raise MemoryFault(f"cannot access memory as {type_}")
