"""Byte-addressable simulated memory.

Each :class:`FlatMemory` is one address space made of named segments
(globals, stack, heap for the CPU; a single device segment for the
GPU).  Every access is bounds-checked against its segment, so a CPU
dereference of a GPU pointer -- the bug class CGCM prevents -- raises
:class:`MemoryFault` instead of silently reading garbage.

Scalar accesses are the hottest operation in the whole simulator
(every IR ``load``/``store`` lands here), so two access disciplines
coexist:

* **Legacy struct codecs** -- per-width :class:`struct.Struct`
  instances built once at import time; ``unpack_from``/``pack_into``
  avoid intermediate ``bytes`` copies.  This is the reference path
  (tree-walker, closure engine, and every unaligned or growing
  access).
* **Typed memoryview segments** -- each segment additionally exposes
  zero-copy ``memoryview.cast`` views of its backing bytearray, one
  per scalar width, so an aligned in-bounds access is a single typed
  index instead of a pack/unpack round trip, and whole-unit transfers
  are slice assignments (:func:`copy_across`).  The views are
  byte-equivalent to the codecs (little-endian hosts; elsewhere the
  fast path disarms itself and everything falls back to the codecs).

A one-entry segment cache skips the linear segment scan for the
overwhelmingly common case of consecutive accesses to the same
segment.

Resizing a bytearray with exported buffers raises ``BufferError``, so
the typed views are released before any actual growth and rebuilt
afterwards; growth is geometric and 8-byte aligned to amortize the
rebuilds and keep every view castable.
"""

from __future__ import annotations

import struct
import sys
from typing import Dict, List, Optional, Union

from ..errors import MemoryFault
from ..ir.types import FloatType, IntType, PointerType, Type

_INT_FORMATS = {1: "<b", 8: "<b", 16: "<h", 32: "<i", 64: "<q"}
_FLOAT_FORMATS = {32: "<f", 64: "<d"}
_POINTER_FORMAT = "<Q"

#: Pre-compiled codecs, one per scalar width; ``struct.Struct`` parses
#: its format string once here instead of on every access.
_INT_STRUCTS = {bits: struct.Struct(fmt)
                for bits, fmt in _INT_FORMATS.items()}
_FLOAT_STRUCTS = {bits: struct.Struct(fmt)
                  for bits, fmt in _FLOAT_FORMATS.items()}
_POINTER_STRUCT = struct.Struct(_POINTER_FORMAT)

#: The typed views decode native-endian; the codecs are explicitly
#: little-endian.  They agree only on little-endian hosts, so the
#: vectorized fast path arms itself conditionally (big-endian hosts
#: keep the codec path everywhere, bit-identically).
VIEWS_ARMED = sys.byteorder == "little"

#: Per struct-code dispatch for the typed-view fast path: (segment
#: view attribute, live-limit attribute, index shift, alignment mask).
#: Shared by :meth:`FlatMemory.load_typed`/:meth:`FlatMemory.store_typed`
#: and the source engine, which bakes the same attribute names into
#: its emitted access code.
VIEW_ACCESS = {
    "b": ("vb", "hi1", 0, 0),
    "h": ("vh", "hi2", 1, 1),
    "i": ("vi", "hi4", 2, 3),
    "q": ("vq", "hi8", 3, 7),
    "Q": ("vQ", "hi8", 3, 7),
    "f": ("vf", "hi4", 2, 3),
    "d": ("vd", "hi8", 3, 7),
}


class Segment:
    """A contiguous, growable span of one address space."""

    __slots__ = ("name", "base", "capacity", "limit", "data",
                 "hi1", "hi2", "hi4", "hi8",
                 "vb", "vh", "vi", "vq", "vQ", "vf", "vd")

    def __init__(self, name: str, base: int, capacity: int):
        self.name = name
        self.base = base
        self.capacity = capacity
        #: One past the last byte the segment may ever hold (plain
        #: attribute, not a property: it sits on the access hot path).
        self.limit = base + capacity
        self.data = bytearray()
        self._refresh_views()

    @property
    def end(self) -> int:
        """One past the last *allocated* byte (allocation is zero-fill
        and may run ahead of the bytes ever written)."""
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    def _release_views(self) -> None:
        # Drop every export of ``data`` so the bytearray may resize.
        self.vb = self.vh = self.vi = None
        self.vq = self.vQ = self.vf = self.vd = None

    def _refresh_views(self) -> None:
        n = len(self.data)
        if VIEWS_ARMED and not n & 7:
            mv = memoryview(self.data)
            self.vb = mv.cast("b")
            self.vh = mv.cast("h")
            self.vi = mv.cast("i")
            self.vq = mv.cast("q")
            self.vQ = mv.cast("Q")
            self.vf = mv.cast("f")
            self.vd = mv.cast("d")
            # Largest offset at which a 1/2/4/8-byte access still fits
            # in the allocated bytes; negative disarms the fast path.
            self.hi1 = n - 1
            self.hi2 = n - 2
            self.hi4 = n - 4
            self.hi8 = n - 8
        else:
            # Unarmed (big-endian host, or a capacity that cannot stay
            # 8-byte aligned): every access takes the codec slow path.
            self._release_views()
            self.hi1 = self.hi2 = self.hi4 = self.hi8 = -1

    def grow_to(self, size: int) -> None:
        if size > self.capacity:
            raise MemoryFault(
                f"segment {self.name} overflow: need {size} bytes, "
                f"capacity {self.capacity}", self.base + size)
        if size > len(self.data):
            # Geometric, 8-byte-aligned growth: amortizes both the
            # zero-fill and the typed-view rebuild, and keeps the
            # buffer castable to every scalar width.
            target = max(size, 2 * len(self.data), 512)
            target = (target + 7) & -8
            if target > self.capacity:
                target = self.capacity
            self._release_views()
            self.data.extend(b"\x00" * (target - len(self.data)))
            self._refresh_views()

    def __repr__(self) -> str:
        return (f"<Segment {self.name} [{self.base:#x}, {self.limit:#x}) "
                f"live={len(self.data)}>")


class FlatMemory:
    """One simulated address space built from disjoint segments."""

    def __init__(self, name: str = "memory"):
        self.name = name
        self.segments: List[Segment] = []
        self._by_name: Dict[str, Segment] = {}
        #: One-entry cache of the last segment hit; scalar accesses
        #: overwhelmingly stay within one segment for long runs.
        self._cached_segment: Optional[Segment] = None

    def add_segment(self, name: str, base: int, capacity: int) -> Segment:
        segment = Segment(name, base, capacity)
        for other in self.segments:
            if base < other.limit and other.base < base + capacity:
                raise MemoryFault(
                    f"segment {name} overlaps {other.name}", base)
        self.segments.append(segment)
        self._by_name[name] = segment
        if self._cached_segment is None:
            self._cached_segment = segment
        return segment

    def segment(self, name: str) -> Segment:
        return self._by_name[name]

    def segment_for(self, address: int) -> Segment:
        segment = self._cached_segment
        if segment is not None and \
                segment.base <= address < segment.limit:
            return segment
        for segment in self.segments:
            if segment.base <= address < segment.limit:
                self._cached_segment = segment
                return segment
        raise MemoryFault(
            f"{self.name}: address {address:#x} is outside every segment "
            "of this address space (foreign or wild pointer)", address)

    def _span(self, address: int, size: int) -> tuple:
        if size < 0:
            raise MemoryFault(f"negative access size {size}", address)
        segment = self.segment_for(address)
        offset = address - segment.base
        if offset + size > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {size} bytes at {address:#x} "
                f"overruns segment {segment.name}", address)
        segment.grow_to(offset + size)
        return segment, offset

    # -- raw bytes -------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        segment, offset = self._span(address, size)
        return bytes(segment.data[offset:offset + size])

    def write(self, address: int, data: bytes) -> None:
        segment, offset = self._span(address, len(data))
        segment.data[offset:offset + len(data)] = data

    def fill(self, address: int, size: int, byte: int = 0) -> None:
        segment, offset = self._span(address, size)
        segment.data[offset:offset + size] = bytes([byte]) * size

    def read_c_string(self, address: int, max_len: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string starting at ``address``."""
        out = bytearray()
        for i in range(max_len):
            byte = self.read(address + i, 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise MemoryFault("unterminated C string", address)

    # -- typed scalars ---------------------------------------------------

    def load_scalar(self, address: int, type_: Type) -> Union[int, float]:
        codec = scalar_struct(type_)
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        end = offset + codec.size
        if end > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {codec.size} bytes at "
                f"{address:#x} overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        value = codec.unpack_from(segment.data, offset)[0]
        if isinstance(type_, IntType) and type_.bits == 1:
            value &= 1
        return value

    def store_scalar(self, address: int, type_: Type,
                     value: Union[int, float]) -> None:
        codec = scalar_struct(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, PointerType):
            value = int(value) & 0xFFFFFFFFFFFFFFFF
        else:
            value = float(value)
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        end = offset + codec.size
        if end > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {codec.size} bytes at "
                f"{address:#x} overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        codec.pack_into(segment.data, offset, value)

    def load_typed(self, address: int, type_: Type) -> Union[int, float]:
        """``load_scalar`` through the typed memoryview fast path.

        Aligned in-bounds accesses decode with one typed index;
        everything else (unaligned, growing, foreign, or an unarmed
        segment) falls back to the codec path.  Byte-equivalent to
        :meth:`load_scalar` by construction -- the property test in
        ``tests/memory/test_segment_views.py`` holds both to it.
        """
        view_attr, hi_attr, shift, amask = VIEW_ACCESS[
            scalar_format(type_)[-1]]
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        if 0 <= offset <= getattr(segment, hi_attr) \
                and not offset & amask:
            value = getattr(segment, view_attr)[offset >> shift]
            if isinstance(type_, IntType) and type_.bits == 1:
                value &= 1
            return value
        return self.load_scalar(address, type_)

    def store_typed(self, address: int, type_: Type,
                    value: Union[int, float]) -> None:
        """``store_scalar`` through the typed memoryview fast path."""
        view_attr, hi_attr, shift, amask = VIEW_ACCESS[
            scalar_format(type_)[-1]]
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        if 0 <= offset <= getattr(segment, hi_attr) \
                and not offset & amask:
            if isinstance(type_, IntType):
                value = type_.wrap(int(value))
            elif isinstance(type_, PointerType):
                value = int(value) & 0xFFFFFFFFFFFFFFFF
            else:
                value = float(value)
            getattr(segment, view_attr)[offset >> shift] = value
            return
        self.store_scalar(address, type_, value)

    def scalar_span(self, address: int, size: int) -> tuple:
        """(segment, offset) for a bounds-checked ``size``-byte access.

        Shared with the compiled engines, which bake the codec and
        size at compile time and need only the located span.
        """
        segment = self._cached_segment
        if segment is None or not \
                (segment.base <= address < segment.limit):
            segment = self.segment_for(address)
        offset = address - segment.base
        end = offset + size
        if end > segment.capacity:
            raise MemoryFault(
                f"{self.name}: access of {size} bytes at {address:#x} "
                f"overruns segment {segment.name}", address)
        if end > len(segment.data):
            segment.grow_to(end)
        return segment, offset

    # -- vectorized block access ----------------------------------------

    def read_u64_array(self, address: int, count: int) -> List[int]:
        """``count`` little-endian u64 values starting at ``address``.

        The pointer-array block read of the runtime: one typed slice
        on the fast path instead of ``count`` codec round trips.
        """
        segment, offset = self._span(address, 8 * count)
        if segment.vQ is not None and not offset & 7:
            return segment.vQ[offset >> 3:(offset >> 3) + count].tolist()
        return list(struct.unpack_from(f"<{count}Q", segment.data, offset))


def copy_across(src: FlatMemory, src_address: int,
                dst: FlatMemory, dst_address: int, size: int) -> None:
    """Copy ``size`` bytes between address spaces without staging.

    The whole-unit transfer fast path (map/unmap/evict/restore): a
    single slice assignment from a transient zero-copy view of the
    source segment, instead of materializing intermediate ``bytes``.
    Both spans are resolved (and grown) *before* the view exists, so
    the source bytearray never resizes while exported.
    """
    src_segment, src_offset = src._span(src_address, size)
    dst_segment, dst_offset = dst._span(dst_address, size)
    if src_segment is dst_segment:
        # Same backing store: stage through bytes (memmove semantics).
        dst_segment.data[dst_offset:dst_offset + size] = \
            bytes(src_segment.data[src_offset:src_offset + size])
        return
    with memoryview(src_segment.data) as view:
        dst_segment.data[dst_offset:dst_offset + size] = \
            view[src_offset:src_offset + size]


def scalar_format(type_: Type) -> str:
    """The ``struct`` format character encoding a scalar type."""
    if isinstance(type_, IntType):
        return _INT_FORMATS[type_.bits]
    if isinstance(type_, FloatType):
        return _FLOAT_FORMATS[type_.bits]
    if isinstance(type_, PointerType):
        return _POINTER_FORMAT
    raise MemoryFault(f"cannot access memory as {type_}")


def scalar_struct(type_: Type) -> struct.Struct:
    """The pre-compiled :class:`struct.Struct` codec for a scalar type."""
    if isinstance(type_, IntType):
        return _INT_STRUCTS[type_.bits]
    if isinstance(type_, FloatType):
        return _FLOAT_STRUCTS[type_.bits]
    if isinstance(type_, PointerType):
        return _POINTER_STRUCT
    raise MemoryFault(f"cannot access memory as {type_}")
