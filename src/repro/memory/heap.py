"""A first-fit heap allocator over one memory segment.

Backs the MiniC ``malloc``/``calloc``/``realloc``/``free`` externals.
Blocks are tracked in a sorted free list; allocation metadata lives on
the side (not in the simulated memory), so heap scribbles cannot
corrupt the allocator -- determinism matters more than realism here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import MemoryFault
from .flatmem import FlatMemory, Segment

_ALIGNMENT = 16


def _align_up(value: int, alignment: int = _ALIGNMENT) -> int:
    return (value + alignment - 1) // alignment * alignment


class Heap:
    """First-fit allocator handing out addresses inside a segment."""

    def __init__(self, memory: FlatMemory, segment_name: str = "heap"):
        self.memory = memory
        self.segment: Segment = memory.segment(segment_name)
        #: Sorted list of (base, size) free spans.
        self._free: List[Tuple[int, int]] = [
            (self.segment.base, self.segment.capacity)
        ]
        #: Live allocations: base address -> size.
        self.allocations: Dict[int, int] = {}
        #: Total bytes ever allocated (for stats/tests).
        self.total_allocated = 0

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns 0 (NULL) for size 0."""
        if size < 0:
            raise MemoryFault(f"malloc of negative size {size}")
        if size == 0:
            return 0
        rounded = _align_up(size)
        for i, (base, span) in enumerate(self._free):
            if span >= rounded:
                remaining = span - rounded
                if remaining:
                    self._free[i] = (base + rounded, remaining)
                else:
                    del self._free[i]
                self.allocations[base] = size
                self.total_allocated += size
                self.memory.fill(base, size, 0xCD)  # poison fresh memory
                return base
        raise MemoryFault(f"heap exhausted allocating {size} bytes")

    def calloc(self, count: int, size: int) -> int:
        total = count * size
        address = self.malloc(total)
        if address:
            self.memory.fill(address, total, 0)
        return address

    def free(self, address: int) -> None:
        if address == 0:
            return
        size = self.allocations.pop(address, None)
        if size is None:
            raise MemoryFault(f"free of non-heap pointer {address:#x}",
                              address)
        self._insert_free(address, _align_up(size))

    def realloc(self, address: int, new_size: int) -> int:
        if address == 0:
            return self.malloc(new_size)
        old_size = self.allocations.get(address)
        if old_size is None:
            raise MemoryFault(f"realloc of non-heap pointer {address:#x}",
                              address)
        if new_size == 0:
            self.free(address)
            return 0
        new_address = self.malloc(new_size)
        keep = min(old_size, new_size)
        self.memory.write(new_address, self.memory.read(address, keep))
        self.free(address)
        return new_address

    def size_of(self, address: int) -> int:
        """Size of the live allocation starting at ``address``."""
        try:
            return self.allocations[address]
        except KeyError:
            raise MemoryFault(
                f"{address:#x} is not the base of a live allocation",
                address) from None

    @property
    def live_bytes(self) -> int:
        return sum(self.allocations.values())

    def _insert_free(self, base: int, size: int) -> None:
        """Insert a span into the free list, coalescing neighbours."""
        spans = self._free
        lo, hi = 0, len(spans)
        while lo < hi:
            mid = (lo + hi) // 2
            if spans[mid][0] < base:
                lo = mid + 1
            else:
                hi = mid
        spans.insert(lo, (base, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(spans) and base + size == spans[lo + 1][0]:
            base, size = base, size + spans[lo + 1][1]
            spans[lo] = (base, size)
            del spans[lo + 1]
        if lo > 0 and spans[lo - 1][0] + spans[lo - 1][1] == base:
            spans[lo - 1] = (spans[lo - 1][0], spans[lo - 1][1] + size)
            del spans[lo]
