"""A first-fit heap allocator over one memory segment.

Backs the MiniC ``malloc``/``calloc``/``realloc``/``free`` externals.
Blocks are tracked in a sorted free list; allocation metadata lives on
the side (not in the simulated memory), so heap scribbles cannot
corrupt the allocator -- determinism matters more than realism here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import MemoryFault
from .flatmem import FlatMemory, Segment

_ALIGNMENT = 16


def _align_up(value: int, alignment: int = _ALIGNMENT) -> int:
    return (value + alignment - 1) // alignment * alignment


class Heap:
    """First-fit allocator handing out addresses inside a segment."""

    def __init__(self, memory: FlatMemory, segment_name: str = "heap"):
        self.memory = memory
        self.segment: Segment = memory.segment(segment_name)
        #: Sorted list of (base, size) free spans.
        self._free: List[Tuple[int, int]] = [
            (self.segment.base, self.segment.capacity)
        ]
        #: Live allocations: base address -> size.
        self.allocations: Dict[int, int] = {}
        #: Total bytes ever allocated (for stats/tests).
        self.total_allocated = 0

    def malloc(self, size: int,
               avoid: Optional[List[Tuple[int, int]]] = None) -> int:
        """Allocate ``size`` bytes; returns 0 (NULL) for size 0.

        ``avoid`` is an optional list of ``[start, end)`` address
        ranges the allocation must not overlap, even where the free
        list would permit it.  The resilience layer passes the minted
        ranges of evicted allocation units: translated pointers into
        those ranges still live in program registers, so handing the
        same addresses to a *different* unit would make reverse
        translation ambiguous.
        """
        if size < 0:
            raise MemoryFault(f"malloc of negative size {size}")
        if size == 0:
            return 0
        rounded = _align_up(size)
        if avoid:
            return self._malloc_avoiding(rounded, size, avoid)
        for i, (base, span) in enumerate(self._free):
            if span >= rounded:
                remaining = span - rounded
                if remaining:
                    self._free[i] = (base + rounded, remaining)
                else:
                    del self._free[i]
                self.allocations[base] = size
                self.total_allocated += size
                self.memory.fill(base, size, 0xCD)  # poison fresh memory
                return base
        raise MemoryFault(f"heap exhausted allocating {size} bytes")

    def _malloc_avoiding(self, rounded: int, size: int,
                         avoid: List[Tuple[int, int]]) -> int:
        """First fit skipping the ``avoid`` ranges.  Within each free
        span the candidate base starts at the span base and is bumped
        past every overlapping avoid range (strictly monotonic, so the
        scan terminates)."""
        for span_base, span_size in list(self._free):
            candidate = span_base
            limit = span_base + span_size
            moved = True
            while moved and candidate + rounded <= limit:
                moved = False
                for start, end in avoid:
                    if start < candidate + rounded and candidate < end:
                        candidate = _align_up(end)
                        moved = True
            if candidate + rounded <= limit:
                if not self.allocate_at(candidate, size):
                    raise MemoryFault(
                        f"heap corrupted: {candidate:#x} was free")
                return candidate
        raise MemoryFault(f"heap exhausted allocating {size} bytes")

    def allocate_at(self, base: int, size: int) -> bool:
        """Claim ``size`` bytes at exactly ``base``, if that range is
        free.  Returns False without side effects when any byte of the
        range is live.  Used by the resilience layer's address-stable
        restore: an evicted block must come back at the address its
        translated pointers were minted for.
        """
        if size <= 0 or base % _ALIGNMENT:
            return False
        rounded = _align_up(size)
        end = base + rounded
        for i, (span_base, span_size) in enumerate(self._free):
            if span_base > base:
                break
            if end <= span_base + span_size:
                del self._free[i]
                if base > span_base:
                    self._free.insert(i, (span_base, base - span_base))
                    i += 1
                tail = span_base + span_size - end
                if tail:
                    self._free.insert(i, (end, tail))
                self.allocations[base] = size
                self.total_allocated += size
                self.memory.fill(base, size, 0xCD)
                return True
        return False

    def calloc(self, count: int, size: int) -> int:
        total = count * size
        address = self.malloc(total)
        if address:
            self.memory.fill(address, total, 0)
        return address

    def free(self, address: int) -> None:
        if address == 0:
            return
        size = self.allocations.pop(address, None)
        if size is None:
            raise MemoryFault(f"free of non-heap pointer {address:#x}",
                              address)
        self._insert_free(address, _align_up(size))

    def realloc(self, address: int, new_size: int) -> int:
        if address == 0:
            return self.malloc(new_size)
        old_size = self.allocations.get(address)
        if old_size is None:
            raise MemoryFault(f"realloc of non-heap pointer {address:#x}",
                              address)
        if new_size == 0:
            self.free(address)
            return 0
        new_address = self.malloc(new_size)
        keep = min(old_size, new_size)
        self.memory.write(new_address, self.memory.read(address, keep))
        self.free(address)
        return new_address

    def size_of(self, address: int) -> int:
        """Size of the live allocation starting at ``address``."""
        try:
            return self.allocations[address]
        except KeyError:
            raise MemoryFault(
                f"{address:#x} is not the base of a live allocation",
                address) from None

    @property
    def live_bytes(self) -> int:
        return sum(self.allocations.values())

    def _insert_free(self, base: int, size: int) -> None:
        """Insert a span into the free list, coalescing neighbours."""
        spans = self._free
        lo, hi = 0, len(spans)
        while lo < hi:
            mid = (lo + hi) // 2
            if spans[mid][0] < base:
                lo = mid + 1
            else:
                hi = mid
        spans.insert(lo, (base, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(spans) and base + size == spans[lo + 1][0]:
            base, size = base, size + spans[lo + 1][1]
            spans[lo] = (base, size)
            del spans[lo + 1]
        if lo > 0 and spans[lo - 1][0] + spans[lo - 1][1] == base:
            spans[lo - 1] = (spans[lo - 1][0], spans[lo - 1][1] + size)
            del spans[lo]
