"""Simulated flat memories, heap allocator, and global layout."""

from .flatmem import FlatMemory, Segment, scalar_format
from .heap import Heap
from .layout import (DEVICE_BASE, DEVICE_CAPACITY, GLOBALS_BASE, HEAP_BASE,
                     STACK_BASE, GlobalLayout, initializer_bytes,
                     is_device_address, make_cpu_memory)

__all__ = [
    "FlatMemory", "Segment", "scalar_format", "Heap",
    "DEVICE_BASE", "DEVICE_CAPACITY", "GLOBALS_BASE", "HEAP_BASE",
    "STACK_BASE", "GlobalLayout", "initializer_bytes", "is_device_address",
    "make_cpu_memory",
]
