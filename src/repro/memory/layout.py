"""Global variable layout: serialize initializers and assign addresses.

The CPU address space uses fixed, well-separated segment bases so that
pointer provenance is visible in the numeric value (handy in tests and
traces), and so the GPU's device range can never be confused with a
CPU address:

=========  ==================  =============
segment    base                capacity
=========  ==================  =============
globals    ``0x0001_0000``     64 MiB
heap       ``0x1000_0000``     256 MiB
stack      ``0x7000_0000``     64 MiB
device     ``0xD000_0000``     256 MiB (GPU)
=========  ==================  =============
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Tuple

from ..errors import MemoryFault
from ..ir.module import Module
from ..ir.types import (ArrayType, FloatType, IntType, PointerType,
                        StructType, Type)
from ..ir.values import GlobalRef, Initializer
from .flatmem import FlatMemory, scalar_format

GLOBALS_BASE = 0x0001_0000
GLOBALS_CAPACITY = 64 << 20
HEAP_BASE = 0x1000_0000
HEAP_CAPACITY = 256 << 20
STACK_BASE = 0x7000_0000
STACK_CAPACITY = 64 << 20
DEVICE_BASE = 0xD000_0000
DEVICE_CAPACITY = 256 << 20


def make_cpu_memory() -> FlatMemory:
    """A fresh CPU address space with globals/heap/stack segments."""
    memory = FlatMemory("cpu")
    memory.add_segment("globals", GLOBALS_BASE, GLOBALS_CAPACITY)
    memory.add_segment("heap", HEAP_BASE, HEAP_CAPACITY)
    memory.add_segment("stack", STACK_BASE, STACK_CAPACITY)
    return memory


def is_device_address(address: int) -> bool:
    return DEVICE_BASE <= address < DEVICE_BASE + DEVICE_CAPACITY


def initializer_bytes(value_type: Type, init: Initializer,
                      resolve: Callable[[str], int]) -> bytes:
    """Serialize ``init`` as a value of ``value_type``.

    ``resolve`` maps a global's name to its assigned address (used for
    :class:`GlobalRef` initializers such as ``char *xs[] = {s0, s1}``).
    """
    size = value_type.size
    if init is None:
        return b"\x00" * size
    if isinstance(init, bytes):
        if len(init) > size:
            raise MemoryFault(
                f"initializer of {len(init)} bytes overflows {value_type}")
        return init + b"\x00" * (size - len(init))
    if isinstance(init, str):
        data = init.encode("utf-8") + b"\x00"
        return initializer_bytes(value_type, data, resolve)
    if isinstance(init, GlobalRef):
        if not isinstance(value_type, PointerType):
            raise MemoryFault(f"global reference used for {value_type}")
        return struct.pack("<Q", resolve(init.name) + init.offset)
    if isinstance(init, (int, float)):
        if isinstance(value_type, (IntType, FloatType, PointerType)):
            fmt = scalar_format(value_type)
            if isinstance(value_type, IntType):
                return struct.pack(fmt, value_type.wrap(int(init)))
            if isinstance(value_type, PointerType):
                return struct.pack(fmt, int(init))
            return struct.pack(fmt, float(init))
        raise MemoryFault(f"scalar initializer for aggregate {value_type}")
    if isinstance(init, list):
        return _aggregate_bytes(value_type, init, resolve)
    raise MemoryFault(f"unsupported initializer {init!r}")


def _aggregate_bytes(value_type: Type, items: list,
                     resolve: Callable[[str], int]) -> bytes:
    if isinstance(value_type, ArrayType):
        if len(items) > value_type.count:
            raise MemoryFault(
                f"{len(items)} initializers for {value_type}")
        parts = [initializer_bytes(value_type.element, item, resolve)
                 for item in items]
        pad = (value_type.count - len(items)) * value_type.element.size
        return b"".join(parts) + b"\x00" * pad
    if isinstance(value_type, StructType):
        if len(items) != len(value_type.fields):
            raise MemoryFault(
                f"{len(items)} initializers for struct with "
                f"{len(value_type.fields)} fields")
        out = bytearray(b"\x00" * value_type.size)
        for i, item in enumerate(items):
            field_type = value_type.fields[i][1]
            offset = value_type.field_offset(i)
            data = initializer_bytes(field_type, item, resolve)
            out[offset:offset + len(data)] = data
        return bytes(out)
    raise MemoryFault(f"list initializer for non-aggregate {value_type}")


class GlobalLayout:
    """Assigned addresses for every global in a module."""

    def __init__(self, module: Module):
        self.module = module
        self.addresses: Dict[str, int] = {}
        self.sizes: Dict[str, int] = {}
        cursor = GLOBALS_BASE
        for gv in module.globals.values():
            align = max(gv.value_type.align, 8)
            cursor = (cursor + align - 1) // align * align
            self.addresses[gv.name] = cursor
            self.sizes[gv.name] = gv.size
            cursor += gv.size
        self.end = cursor

    def address_of(self, name: str) -> int:
        return self.addresses[name]

    def install(self, memory: FlatMemory) -> None:
        """Write every global's initial image into CPU memory."""
        for gv in self.module.globals.values():
            data = initializer_bytes(gv.value_type, gv.initializer,
                                     self.address_of)
            memory.write(self.addresses[gv.name], data)

    def items(self) -> Tuple[Tuple[str, int, int], ...]:
        """(name, address, size) for every global, in layout order."""
        return tuple((name, self.addresses[name], self.sizes[name])
                     for name in self.addresses)
