"""Configuration for the CGCM compilation pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError
from ..gpu.faults import FaultPlan
from ..gpu.timing import CostModel
from ..gpu.topology import Topology


class OptLevel(enum.Enum):
    """How far to take a program through the CGCM pipeline.

    * ``SEQUENTIAL``  -- no transformation at all: the original CPU-only
      program (the paper's performance baseline).
    * ``UNOPTIMIZED`` -- DOALL parallelization plus communication
      *management* only: every launch gets its own map/unmap/release
      trio, yielding the cyclic pattern of paper Listing 3.
    * ``OPTIMIZED``   -- management plus the communication
      *optimizations*: glue kernels, then alloca promotion, then map
      promotion (the pass schedule of paper section 5.3).
    """

    SEQUENTIAL = "sequential"
    UNOPTIMIZED = "unoptimized"
    OPTIMIZED = "optimized"


@dataclass
class CgcmConfig:
    """Knobs for :class:`repro.core.compiler.CgcmCompiler`.

    The individual pass toggles exist for the ablation benchmarks; the
    paper always runs all three optimizations in the fixed order.
    """

    opt_level: OptLevel = OptLevel.OPTIMIZED
    enable_glue_kernels: bool = True
    enable_alloca_promotion: bool = True
    enable_map_promotion: bool = True
    cost_model: CostModel = field(default_factory=CostModel)
    record_events: bool = False
    verify: bool = True
    #: Arm the communication sanitizer for executions; the resulting
    #: report lands on :attr:`ExecutionResult.sanitizer_report`.
    sanitize: bool = False
    #: Execution engine for simulated runs: ``"source"`` (Python
    #: source codegen, the fast path -- see ``repro.interp.srcgen``),
    #: ``"compiled"`` (closure compiler), or ``"tree"`` (tree-walking
    #: reference interpreter).  All three are observationally and
    #: clock-for-clock identical.
    engine: str = "source"
    #: Streams subsystem: run the comm-overlap transform (at
    #: ``OPTIMIZED``), execute launches/transfers asynchronously, and
    #: report overlap-aware elapsed time
    #: (:attr:`ExecutionResult.critical_path_seconds`).  Off by
    #: default: the serial discipline reproduces the paper's fully
    #: synchronous schedules bit-for-bit.
    streams: bool = False
    #: Resilience subsystem: a seeded :class:`FaultPlan` arms the
    #: deterministic driver-fault injector on the simulated device;
    #: the runtime then retries transient faults, evicts under memory
    #: pressure, and degrades launches to the CPU path.  None = off.
    faults: Optional[FaultPlan] = None
    #: Cap on live ``cuMemAlloc`` bytes (models a smaller device).
    #: Allocations beyond the cap raise a non-transient OOM, driving
    #: the runtime's LRU eviction.  None = the full simulated arena.
    device_heap_limit: Optional[int] = None
    #: With a ``device_heap_limit``, reject programs whose largest
    #: statically-sized allocation unit (constant malloc/calloc or
    #: compiler-registered alloca) can never fit under the cap: such a
    #: unit would otherwise degrade to a permanent sentinel range and
    #: every launch touching it to the CPU path.  The chaos sweeps
    #: exercise exactly that degradation on purpose, so they opt out
    #: with ``strict_heap_limit=False``.  Checked at execution time
    #: (the check needs the compiled module); raises
    #: :class:`~repro.errors.ConfigError`.
    strict_heap_limit: bool = True
    #: Translation validation: after every optimize-stage pass, check
    #: the pass's declared legality contract (``transforms/contract``)
    #: against the before/after IR pair and fail the compile with
    #: :class:`~repro.errors.TransformValidationError` on any
    #: violation.  Off by default (it re-lints intermediate modules,
    #: which costs compile time).
    validate: bool = False
    #: Device topology for executions.  None (or a one-device
    #: topology) is the classic single-GPU platform.  A multi-device
    #: :class:`~repro.gpu.topology.Topology` arms the multi-GPU layer:
    #: allocation units are partitioned across devices by the
    #: placement pass, DOALL grids shard across the devices holding
    #: their operands, and peer/collective transfers are scheduled on
    #: per-device async streams.  Multi-device scheduling is
    #: inherently asynchronous, so ``streams`` turns on automatically.
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        from ..interp.machine import ENGINES
        if self.engine not in ENGINES:
            raise ConfigError(f"unknown engine {self.engine!r}; expected "
                              f"one of {ENGINES}")
        if self.topology is not None:
            if not isinstance(self.topology, Topology):
                raise ConfigError(
                    f"CgcmConfig.topology must be a Topology, got "
                    f"{type(self.topology).__name__}; build one with "
                    "Topology.ring(n) or Topology.fully_connected(n)")
            if self.topology.num_devices > 1:
                if not self.parallelize:
                    raise ConfigError(
                        "a multi-device topology needs CGCM-transformed "
                        "launches to place and shard; "
                        "OptLevel.SEQUENTIAL never touches a device.  "
                        "Use UNOPTIMIZED or OPTIMIZED")
                if self.faults is not None:
                    raise ConfigError(
                        "a multi-device topology cannot be combined with "
                        "fault injection: per-device retry/fail-over has "
                        "no story yet.  Drop faults or use a one-device "
                        "topology")
                if self.device_heap_limit is not None:
                    raise ConfigError(
                        "a multi-device topology cannot be combined with "
                        "a device heap cap: per-device eviction has no "
                        "story yet.  Drop device_heap_limit or use a "
                        "one-device topology")
                # Multi-device schedules are asynchronous by nature:
                # collectives must overlap compute for the extra
                # devices to pay off.
                self.streams = True
        if self.faults is not None:
            if not isinstance(self.faults, FaultPlan):
                raise ConfigError(
                    f"CgcmConfig.faults must be a FaultPlan, got "
                    f"{type(self.faults).__name__}; build one with "
                    "FaultPlan(seed=..., alloc_fail_rate=..., ...)")
            if self.faults.seed is None:
                raise ConfigError(
                    "CgcmConfig.faults has no seed: an unseeded fault "
                    "schedule is not reproducible.  Pass "
                    "FaultPlan(seed=<int>, ...) so every run injects "
                    "the same faults")
            if self.streams:
                raise ConfigError(
                    "CgcmConfig.faults cannot be combined with streams: "
                    "the asynchronous copy paths have no retry/eviction "
                    "story yet.  Drop streams=True (the serial "
                    "discipline) to run under fault injection")
        if self.device_heap_limit is not None:
            if not isinstance(self.device_heap_limit, int) \
                    or self.device_heap_limit <= 0:
                raise ConfigError(
                    f"CgcmConfig.device_heap_limit must be a positive "
                    f"byte count, got {self.device_heap_limit!r}")
            if self.streams:
                raise ConfigError(
                    "CgcmConfig.device_heap_limit cannot be combined "
                    "with streams: eviction write-backs are synchronous "
                    "and would race the deferred async write-backs.  "
                    "Drop streams=True to run under a device heap cap")
        if self.resilient and not self.parallelize:
            raise ConfigError(
                "fault injection and device heap caps only apply to "
                "CGCM-transformed runs; OptLevel.SEQUENTIAL never "
                "touches the device.  Use UNOPTIMIZED or OPTIMIZED")

    @property
    def resilient(self) -> bool:
        """Is the resilience subsystem active for executions?"""
        return self.faults is not None or self.device_heap_limit is not None

    @property
    def parallelize(self) -> bool:
        return self.opt_level != OptLevel.SEQUENTIAL

    @property
    def optimize(self) -> bool:
        return self.opt_level == OptLevel.OPTIMIZED
