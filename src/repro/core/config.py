"""Configuration for the CGCM compilation pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..gpu.timing import CostModel


class OptLevel(enum.Enum):
    """How far to take a program through the CGCM pipeline.

    * ``SEQUENTIAL``  -- no transformation at all: the original CPU-only
      program (the paper's performance baseline).
    * ``UNOPTIMIZED`` -- DOALL parallelization plus communication
      *management* only: every launch gets its own map/unmap/release
      trio, yielding the cyclic pattern of paper Listing 3.
    * ``OPTIMIZED``   -- management plus the communication
      *optimizations*: glue kernels, then alloca promotion, then map
      promotion (the pass schedule of paper section 5.3).
    """

    SEQUENTIAL = "sequential"
    UNOPTIMIZED = "unoptimized"
    OPTIMIZED = "optimized"


@dataclass
class CgcmConfig:
    """Knobs for :class:`repro.core.compiler.CgcmCompiler`.

    The individual pass toggles exist for the ablation benchmarks; the
    paper always runs all three optimizations in the fixed order.
    """

    opt_level: OptLevel = OptLevel.OPTIMIZED
    enable_glue_kernels: bool = True
    enable_alloca_promotion: bool = True
    enable_map_promotion: bool = True
    cost_model: CostModel = field(default_factory=CostModel)
    record_events: bool = False
    verify: bool = True
    #: Arm the communication sanitizer for executions; the resulting
    #: report lands on :attr:`ExecutionResult.sanitizer_report`.
    sanitize: bool = False
    #: Execution engine for simulated runs: ``"compiled"`` (closure
    #: compiler, the fast path) or ``"tree"`` (tree-walking reference
    #: interpreter).  Both are observationally and clock-for-clock
    #: identical; see ``repro.interp.codegen``.
    engine: str = "compiled"
    #: Streams subsystem: run the comm-overlap transform (at
    #: ``OPTIMIZED``), execute launches/transfers asynchronously, and
    #: report overlap-aware elapsed time
    #: (:attr:`ExecutionResult.critical_path_seconds`).  Off by
    #: default: the serial discipline reproduces the paper's fully
    #: synchronous schedules bit-for-bit.
    streams: bool = False

    def __post_init__(self) -> None:
        from ..interp.machine import ENGINES
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; expected "
                             f"one of {ENGINES}")

    @property
    def parallelize(self) -> bool:
        return self.opt_level != OptLevel.SEQUENTIAL

    @property
    def optimize(self) -> bool:
        return self.opt_level == OptLevel.OPTIMIZED
