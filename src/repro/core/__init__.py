"""The paper's primary contribution, packaged: configuration, pass
pipeline, and one-call compile-and-simulate."""

from .config import CgcmConfig, OptLevel
from .compiler import (CgcmCompiler, CompileReport, ExecutionResult,
                       compile_and_run)

__all__ = [
    "CgcmConfig", "OptLevel", "CgcmCompiler", "CompileReport",
    "ExecutionResult", "compile_and_run",
]
