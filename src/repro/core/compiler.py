"""The CGCM driver: source to transformed module to simulated run.

This is the public face of the reproduction.  ``CgcmCompiler`` wires
the passes in the paper's order; ``compile_and_run`` takes MiniC
source and an optimization level and returns an
:class:`ExecutionResult` with observable outputs and the modelled
timing breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..frontend.lowering import compile_minic
from ..gpu.timing import TraceEvent
from ..interp.machine import Machine
from ..ir.function import Function
from ..ir.instructions import Call
from ..ir.module import Module
from ..ir.values import Constant
from ..ir.verifier import verify_module
from ..runtime.cgcm import CgcmRuntime
from ..transforms.alloca_promotion import AllocaPromotion
from ..transforms.comm_overlap import CommOverlap
from ..transforms.commmgmt import CommunicationManager
from ..transforms.declare_globals import insert_global_declarations
from ..transforms.doall import DoallParallelizer
from ..transforms.glue_kernels import GlueKernels
from ..transforms.map_promotion import MapPromotion
from .config import CgcmConfig, OptLevel


@dataclass
class CompileReport:
    """What the pipeline did to one program."""

    module: Module
    doall_kernels: List[Function] = field(default_factory=list)
    glue_kernels: List[Function] = field(default_factory=list)
    promoted_loops: int = 0
    promoted_functions: int = 0
    promoted_allocas: int = 0
    #: Statistics of the comm-overlap transform (streams configs only).
    overlap_stats: Dict[str, int] = field(default_factory=dict)
    #: Translation-validation findings (``config.validate`` only); any
    #: error here also raises
    #: :class:`~repro.errors.TransformValidationError` at pipeline end.
    validation: List["object"] = field(default_factory=list)

    @property
    def kernel_count(self) -> int:
        return len(self.doall_kernels)


@dataclass
class ExecutionResult:
    """Observable outcome plus modelled timing of one simulated run."""

    exit_code: int
    stdout: Tuple[str, ...]
    cpu_seconds: float
    gpu_seconds: float
    comm_seconds: float
    counters: Dict[str, int]
    events: List[TraceEvent] = field(default_factory=list)
    globals_image: Dict[str, bytes] = field(default_factory=dict)
    #: Present when the run was executed with ``config.sanitize``.
    sanitizer_report: Optional["object"] = None
    #: Dynamic count of interpreted IR instructions.
    instructions: int = 0
    #: Overlap-aware elapsed time (== :attr:`total_seconds` for serial
    #: runs; the critical path over all cursors for streams runs).
    critical_path_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.cpu_seconds + self.gpu_seconds + self.comm_seconds

    def observable(self) -> Tuple:
        """Everything a correct transformation must preserve."""
        return (self.exit_code, self.stdout,
                tuple(sorted(self.globals_image.items())))


class CgcmCompiler:
    """Runs the CGCM pass pipeline over MiniC programs or IR modules."""

    def __init__(self, config: Optional[CgcmConfig] = None):
        self.config = config if config is not None else CgcmConfig()

    def compile_source(self, source: str,
                       name: str = "program") -> CompileReport:
        module = compile_minic(source, name)
        return self.compile_module(module)

    def compile_module(self, module: Module) -> CompileReport:
        report = CompileReport(module)
        config = self.config
        if not config.parallelize:
            if config.verify:
                verify_module(module)
            return report

        report.doall_kernels = DoallParallelizer(module).run()
        insert_global_declarations(module)
        manager = CommunicationManager(module)
        manager.run()

        validator = None
        if config.validate and config.optimize:
            # Imported lazily: the validator re-runs staticcheck
            # analyses, and staticcheck depends on this module.
            from ..staticcheck.transval import TranslationValidator
            validator = TranslationValidator()
            validator.begin(module)

        if config.optimize:
            # Paper section 5.3: glue kernels, then alloca promotion,
            # then map promotion.
            if config.enable_glue_kernels:
                glue = GlueKernels(module)
                for launch in glue.run():
                    parent = launch.parent.parent
                    manager.manage_launch(parent, launch)
                report.glue_kernels = glue.kernels
                if validator is not None:
                    from ..transforms import glue_kernels as _glue_mod
                    validator.check(_glue_mod.CONTRACT, module)
            if config.enable_alloca_promotion:
                alloca_promo = AllocaPromotion(module)
                alloca_promo.run()
                report.promoted_allocas = alloca_promo.promoted
                if validator is not None:
                    from ..transforms import alloca_promotion as _ap_mod
                    validator.check(_ap_mod.CONTRACT, module)
            if config.enable_map_promotion:
                map_promo = MapPromotion(module)
                map_promo.run()
                report.promoted_loops = map_promo.promoted_loops
                report.promoted_functions = map_promo.promoted_functions
                if validator is not None:
                    from ..transforms import map_promotion as _mp_mod
                    validator.check(_mp_mod.CONTRACT, module)
            if config.streams:
                # After map promotion: copies are already at their
                # final per-region positions; overlap then hoists,
                # sinks, and rewrites them asynchronous.
                report.overlap_stats = CommOverlap(module).run()
                if validator is not None:
                    from ..transforms import comm_overlap as _co_mod
                    validator.check(_co_mod.CONTRACT, module)
        if config.verify:
            verify_module(module)
        if validator is not None:
            report.validation = list(validator.findings)
            errors = validator.errors
            if errors:
                from ..errors import TransformValidationError
                raise TransformValidationError(report, errors)
        return report

    def execute(self, report: CompileReport,
                capture_globals: bool = True,
                engine: Optional[str] = None,
                shared_mappings: Optional["object"] = None,
                launch_log: Optional[List] = None,
                device_heap_limit: Optional[int] = None) -> ExecutionResult:
        """Run a compiled module on a fresh simulated machine.

        With ``config.sanitize`` set, the communication sanitizer is
        armed for the run and its report lands on
        :attr:`ExecutionResult.sanitizer_report`.  ``engine``
        overrides ``config.engine`` for this run (used by the
        engine-equivalence benchmarks).

        ``shared_mappings`` attaches a serve-layer
        :class:`~repro.serve.sharing.SharedMappingRegistry`: read-only
        allocation units whose content is already device-resident on
        behalf of another in-flight request skip the modelled HtoD
        charge (see :meth:`CgcmRuntime.map_ptr`).  ``launch_log``
        collects one ``(kernel_name, grid, total_ops, max_ops,
        duration)`` tuple per GPU launch, the raw material for
        batched-dispatch re-pricing.

        ``device_heap_limit`` overrides ``config.device_heap_limit``
        for this run only -- the serve layer applies per-tenant heap
        quotas at execution time so quota variants of one source share
        a single compiled artifact.  The compiled module is identical
        either way (the limit is purely a runtime knob); the same
        streams-compatibility rule as the config field applies.
        """
        effective_limit = device_heap_limit if device_heap_limit is not None \
            else self.config.device_heap_limit
        if effective_limit is not None and self.config.streams:
            raise ConfigError(
                "device_heap_limit cannot be combined with streams: "
                "eviction write-backs are synchronous and would race "
                "the deferred async write-backs")
        if effective_limit is not None and self.config.strict_heap_limit:
            size, label = largest_static_unit(report.module)
            if size > effective_limit:
                raise ConfigError(
                    f"device_heap_limit={effective_limit} "
                    f"is smaller than the program's largest allocation "
                    f"unit ({label}, {size} bytes): the unit could "
                    "never become device-resident and every launch "
                    "touching it would permanently degrade to the CPU "
                    "path via a sentinel range.  Raise the limit, or "
                    "pass strict_heap_limit=False to run the "
                    "degradation deliberately")
        fault_injector = None
        if self.config.faults is not None and self.config.faults.armed:
            # Imported lazily so config-only users never touch the
            # injector; one injector per execution keeps the seeded
            # schedule independent across runs of the same compiler.
            from ..gpu.faults import FaultInjector
            fault_injector = FaultInjector(self.config.faults)
        machine = Machine(report.module, self.config.cost_model,
                          self.config.record_events,
                          engine=engine if engine is not None
                          else self.config.engine,
                          streams=self.config.streams,
                          fault_injector=fault_injector,
                          device_heap_limit=effective_limit)
        if launch_log is not None:
            machine.launch_cost_hooks.append(
                lambda m, kernel, grid, total, mx, duration:
                launch_log.append((kernel, grid, total, mx, duration)))
        runtime = CgcmRuntime(machine) if self.config.parallelize else None
        if runtime is not None and shared_mappings is not None:
            runtime.shared_mappings = shared_mappings
        topology = self.config.topology
        if runtime is not None and topology is not None \
                and topology.num_devices > 1:
            # Imported lazily: single-device runs never touch the
            # multi-GPU layer.
            from ..multigpu import MultiGpuCoordinator, plan_placement
            plan = plan_placement(report.module, topology)
            MultiGpuCoordinator(machine, runtime, topology, plan)
        sanitizer = None
        if self.config.sanitize:
            # Imported lazily: the sanitizer package depends on this
            # module for its differential oracle.
            from ..sanitizer.sanitizer import CommSanitizer
            sanitizer = CommSanitizer(machine, runtime)
        exit_code = machine.run()
        if self.config.streams:
            # Program end implies cuCtxSynchronize: the critical path
            # includes every span still in flight.
            machine.clock.device_synchronize()
        globals_image: Dict[str, bytes] = {}
        if capture_globals:
            globals_image = capture_globals_image(machine, report.module)
        return ExecutionResult(
            exit_code=exit_code,
            stdout=tuple(machine.stdout),
            cpu_seconds=machine.clock.cpu_seconds,
            gpu_seconds=machine.clock.gpu_seconds,
            comm_seconds=machine.clock.comm_seconds,
            counters=dict(machine.clock.counters),
            events=list(machine.clock.events),
            globals_image=globals_image,
            sanitizer_report=sanitizer.finish() if sanitizer else None,
            instructions=machine.executed_instructions,
            critical_path_seconds=machine.clock.critical_path_s,
        )


#: Externals whose constant-argument calls create heap/stack
#: allocation units of statically known size.  Globals are exempt:
#: their device copies live in the module segment
#: (``cuModuleGetGlobal``), never in the capped cuMemAlloc arena.
_STATIC_ALLOC_SITES = ("malloc", "calloc", "declareAlloca")


def largest_static_unit(module: Module) -> Tuple[int, str]:
    """Size and label of the largest statically-sized heap or stack
    allocation unit any call site in ``module`` can create.

    Only constant-argument ``malloc``/``calloc``/``declareAlloca``
    calls count -- dynamically sized allocations are invisible to this
    check and still rely on the runtime's sentinel degradation.
    Returns ``(0, "")`` when there is no such site.
    """
    largest, label = 0, ""
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if not isinstance(inst, Call) \
                    or inst.callee.name not in _STATIC_ALLOC_SITES:
                continue
            args = inst.args
            if not args or not all(isinstance(a, Constant) for a in args):
                continue
            if inst.callee.name == "calloc":
                size = int(args[0].value) * int(args[1].value)
            else:
                size = int(args[0].value)
            if size > largest:
                largest = size
                label = f"{inst.callee.name}({size}) in {fn.name}"
    return largest, label


def capture_globals_image(machine: Machine,
                          module: Module) -> Dict[str, bytes]:
    """Final host bytes of every program-visible global.

    Compiler-synthesized string and registration-name globals are
    excluded: they are not observable program state.
    """
    image: Dict[str, bytes] = {}
    for name in module.globals:
        if name.startswith((".str", ".gname")):
            continue
        image[name] = machine.read_global(name)
    return image


def compile_and_run(source: str, opt_level: OptLevel = OptLevel.OPTIMIZED,
                    config: Optional[CgcmConfig] = None,
                    name: str = "program") -> ExecutionResult:
    """One-call convenience: compile MiniC at a level and simulate it."""
    if config is None:
        config = CgcmConfig(opt_level=opt_level)
    else:
        config.opt_level = opt_level
    compiler = CgcmCompiler(config)
    report = compiler.compile_source(source, name)
    return compiler.execute(report)
