"""repro: a from-scratch reproduction of CGCM (PLDI 2011).

"Automatic CPU-GPU Communication Management and Optimization",
Jablin et al., PLDI 2011.  The package contains the complete stack the
paper's system needs: a MiniC frontend, a typed compiler IR, a CPU
interpreter with a simulated GPU device and analytic cost model, the
CGCM run-time library, the compiler passes (DOALL parallelization,
communication management, glue kernels, alloca promotion, map
promotion), an idealized inspector-executor baseline, the 24 benchmark
programs, and the evaluation harness that regenerates the paper's
figures and tables.

Quick start::

    from repro import compile_and_run, OptLevel

    result = compile_and_run(minic_source, OptLevel.OPTIMIZED)
    print(result.stdout, result.total_seconds)
"""

from .api import CompiledWorkload, Session, compile_workload, default_session
from .core import (CgcmCompiler, CgcmConfig, CompileReport, ExecutionResult,
                   OptLevel, compile_and_run)
from .errors import (CgcmRuntimeError, CgcmUnsupportedError, FrontendError,
                     GpuError, InterpError, IRError, MemoryFault, ReproError,
                     TransformError)
from .frontend import compile_minic
from .gpu import CostModel
from .gpu.topology import Link, Topology
from .interp import Machine
from .runtime import CgcmRuntime

__version__ = "1.0.0"

__all__ = [
    "CgcmCompiler", "CgcmConfig", "CompileReport", "CompiledWorkload",
    "ExecutionResult", "Session", "compile_workload", "default_session",
    "Link", "Topology",
    "OptLevel", "compile_and_run", "compile_minic", "CostModel", "Machine",
    "CgcmRuntime", "ReproError", "CgcmRuntimeError", "CgcmUnsupportedError",
    "FrontendError", "GpuError", "InterpError", "IRError", "MemoryFault",
    "TransformError", "__version__",
]
