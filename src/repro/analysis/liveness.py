"""Register liveness: classic backward dataflow over virtual registers.

Used by the communication-management pass to find the live-in values of
outlined kernels, and by the DOALL outliner to decide which registers
must become kernel parameters.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Argument, Value
from .cfg import predecessor_map


def _is_register(value: Value) -> bool:
    """Registers are instruction results and arguments (not constants,
    globals, or undef)."""
    return isinstance(value, (Instruction, Argument))


class Liveness:
    """Per-block live-in/live-out register sets for one function."""

    def __init__(self, fn: Function):
        self.function = fn
        self.use: Dict[BasicBlock, Set[Value]] = {}
        self.defs: Dict[BasicBlock, Set[Value]] = {}
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._compute()

    def _compute(self) -> None:
        fn = self.function
        for block in fn.blocks:
            upward: Set[Value] = set()
            defined: Set[Value] = set()
            for inst in block.instructions:
                for operand in inst.operands:
                    if _is_register(operand) and operand not in defined:
                        upward.add(operand)
                if inst.produces_value:
                    defined.add(inst)
            self.use[block] = upward
            self.defs[block] = defined
            self.live_in[block] = set()
            self.live_out[block] = set()

        preds = predecessor_map(fn)
        changed = True
        while changed:
            changed = False
            for block in reversed(fn.blocks):
                out: Set[Value] = set()
                for succ in block.successors:
                    out |= self.live_in[succ]
                inn = self.use[block] | (out - self.defs[block])
                if out != self.live_out[block] or inn != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = inn
                    changed = True
        self._preds = preds

    def live_into_blocks(self, blocks: Set[BasicBlock]) -> Set[Value]:
        """Registers defined outside ``blocks`` but used inside them."""
        inside_defs: Set[Value] = set()
        for block in blocks:
            inside_defs |= self.defs[block]
        needed: Set[Value] = set()
        for block in blocks:
            for inst in block.instructions:
                for operand in inst.operands:
                    if _is_register(operand) and operand not in inside_defs:
                        needed.add(operand)
        return needed

    def defined_in_used_after(self, blocks: Set[BasicBlock]) -> Set[Value]:
        """Registers defined inside ``blocks`` and used outside them."""
        inside_defs: Set[Value] = set()
        for block in blocks:
            inside_defs |= self.defs[block]
        escaping: Set[Value] = set()
        for block in self.function.blocks:
            if block in blocks:
                continue
            for inst in block.instructions:
                for operand in inst.operands:
                    if operand in inside_defs:
                        escaping.add(operand)
        return escaping
