"""Unit-access graph: which allocation units co-occur at launch sites.

The multi-GPU placement pass needs to know, statically, which
allocation units each kernel launch touches and how often units are
touched *together* -- units co-accessed by one launch want to live on
one device, or every launch pays a peer broadcast.  This module builds
that graph from the same facts the static checker already computes
(:class:`~repro.staticcheck.context.CheckContext`): per-kernel access
summaries resolved through launch arguments back to host units.

Nodes are stable string labels (identical across rebuilds of the same
module, which is what placement determinism rests on):

* ``g:<name>``        -- a module global.
* ``h:<fn>:<n>``      -- the *n*-th heap allocation call site
  (``malloc``/``calloc``/``realloc``) in function ``<fn>``, in
  instruction order.
* ``a:<fn>:<n>``      -- likewise for escaping ``alloca`` sites.

Node weight is the unit's statically-known byte size (0 when the
allocation size is dynamic -- the runtime falls back to least-loaded
assignment for those).  Edge weight counts launch sites where both
endpoints are accessed by the same kernel invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Alloca, Call, LaunchKernel
from ..ir.module import Module
from ..ir.values import Constant, GlobalVariable
from .alias import Root

#: Heap entry points whose results become trackable allocation units.
_HEAP_ALLOC_SITES = ("malloc", "calloc", "realloc")


@dataclass(frozen=True)
class LaunchSite:
    """One static launch: the kernel plus the unit labels it touches."""

    kernel: str
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    #: Some operand could not be traced to a unit (placement still
    #: runs, but sharding must be conservative for this kernel).
    unknown: bool = False

    def touched(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for label in self.reads + self.writes:
            if label not in seen:
                seen.append(label)
        return tuple(seen)


@dataclass
class UnitGraph:
    """Co-access graph over allocation-unit labels."""

    #: label -> statically-known size in bytes (0 = dynamic).
    sizes: Dict[str, int] = field(default_factory=dict)
    #: sorted (label, label) pair -> number of co-accessing launches.
    edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    launches: List[LaunchSite] = field(default_factory=list)

    def add_unit(self, label: str, size: int) -> None:
        if label not in self.sizes or self.sizes[label] == 0:
            self.sizes[label] = size

    def add_edge(self, a: str, b: str, weight: int = 1) -> None:
        if a == b:
            return
        key = (a, b) if a < b else (b, a)
        self.edges[key] = self.edges.get(key, 0) + weight

    def affinity(self, label: str) -> Dict[str, int]:
        """Edge weights from ``label`` to every neighbour."""
        out: Dict[str, int] = {}
        for (a, b), w in self.edges.items():
            if a == label:
                out[b] = out.get(b, 0) + w
            elif b == label:
                out[a] = out.get(a, 0) + w
        return out


def _site_size(inst: Call) -> int:
    """Bytes a constant-argument heap call site allocates (else 0)."""
    args = inst.args
    if not args or not all(isinstance(a, Constant) for a in args):
        return 0
    if inst.callee.name == "calloc":
        return int(args[0].value) * int(args[1].value)
    return int(args[-1].value)


def label_units(module: Module) -> Dict[int, str]:
    """Deterministic label for every labelable root, keyed by ``id``.

    Keyed by object identity because IR values are not hashable by
    content; the walk order (functions, then instructions) fixes the
    per-function site numbering.
    """
    labels: Dict[int, str] = {}
    for g in module.globals.values():
        labels[id(g)] = f"g:{g.name}"
    for fn in module.defined_functions():
        heap_n = 0
        alloca_n = 0
        for inst in fn.instructions():
            if isinstance(inst, Call) \
                    and inst.callee.name in _HEAP_ALLOC_SITES:
                labels[id(inst)] = f"h:{fn.name}:{heap_n}"
                heap_n += 1
            elif isinstance(inst, Alloca):
                labels[id(inst)] = f"a:{fn.name}:{alloca_n}"
                alloca_n += 1
    return labels


def build_unit_graph(module: Module,
                     context: Optional[object] = None) -> UnitGraph:
    """Build the co-access graph for ``module``.

    ``context`` is an optional pre-built
    :class:`~repro.staticcheck.context.CheckContext` (the linter passes
    its own so kernel summaries are computed once).
    """
    from ..staticcheck.context import (CheckContext, launch_arg_host_roots)
    ctx = context if context is not None else CheckContext(module)
    labels = label_units(module)
    graph = UnitGraph()
    for g in module.globals.values():
        graph.add_unit(f"g:{g.name}", g.size)

    def resolve(root: Root) -> Optional[str]:
        label = labels.get(id(root))
        if label is None:
            return None
        if label.startswith("h:") and isinstance(root, Call):
            graph.add_unit(label, _site_size(root))
        elif label.startswith("a:") and isinstance(root, Alloca):
            count = root.count
            size = root.allocated_type.size * int(count.value) \
                if isinstance(count, Constant) else 0
            graph.add_unit(label, size)
        else:
            graph.add_unit(label, graph.sizes.get(label, 0))
        return label

    for fn in module.defined_functions():
        for inst in fn.instructions():
            if not isinstance(inst, LaunchKernel):
                continue
            access = ctx.kernel_access(inst.kernel)
            unknown = access.unknown
            reads: List[str] = []
            writes: List[str] = []

            def collect(roots, into):
                nonlocal unknown
                for root in roots:
                    label = resolve(root)
                    if label is None:
                        unknown = True
                    elif label not in into:
                        into.append(label)

            collect(access.reads, reads)
            collect(access.writes, writes)
            # The kernel's first formal is the thread id; launch args
            # bind formals 1..n, so formal index i is args[i - 1].
            for index in sorted(access.formal_reads | access.formal_writes):
                if index == 0 or index > len(inst.args):
                    unknown = True
                    continue
                mapped, raw = launch_arg_host_roots(inst.args[index - 1])
                hosts = mapped + raw
                if not hosts:
                    unknown = True
                for root in hosts:
                    label = resolve(root)
                    if label is None:
                        unknown = True
                        continue
                    if index in access.formal_reads and label not in reads:
                        reads.append(label)
                    if index in access.formal_writes and label not in writes:
                        writes.append(label)
            site = LaunchSite(inst.kernel.name, tuple(reads), tuple(writes),
                              unknown)
            graph.launches.append(site)
            touched = site.touched()
            for i, a in enumerate(touched):
                for b in touched[i + 1:]:
                    graph.add_edge(a, b)
    return graph
