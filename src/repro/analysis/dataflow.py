"""Generic iterative dataflow framework over the IR CFG.

The static checker (``repro.staticcheck``) and future optimization
passes share one worklist solver: a :class:`DataflowProblem` supplies
the direction, the boundary/initial states, a join, and a transfer
function; :func:`solve` iterates to a fixpoint over the reachable
blocks (seeded in reverse postorder so acyclic regions converge in one
sweep) and returns the per-block states.

States are treated as immutable values: transfer functions must return
fresh states rather than mutate their input, and ``join`` must be
monotone over a finite-height lattice for termination.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from .cfg import predecessor_map, reachable_blocks, reverse_postorder

#: Generous safety net: a correct finite-lattice problem converges in
#: O(blocks * lattice height) steps; hitting the cap means the problem
#: is not monotone (a bug worth surfacing loudly).
_MAX_STEPS_PER_BLOCK = 10_000


class DataflowProblem:
    """One dataflow problem: direction, lattice, and transfer."""

    #: ``"forward"`` (states flow entry -> exits) or ``"backward"``.
    direction: str = "forward"

    def boundary_state(self, fn: Function):
        """State at the boundary: the entry (forward) or every exit
        block (backward)."""
        raise NotImplementedError

    def initial_state(self, fn: Function):
        """Optimistic starting state for interior blocks."""
        raise NotImplementedError

    def join(self, states: List[object]):
        """Combine the states arriving over several CFG edges."""
        raise NotImplementedError

    def transfer_block(self, block: BasicBlock, state):
        """Push ``state`` through a whole block (instruction order
        follows the direction)."""
        instructions = block.instructions
        if self.direction != "forward":
            instructions = list(reversed(instructions))
        for inst in instructions:
            state = self.transfer_instruction(inst, state)
        return state

    def transfer_instruction(self, inst: Instruction, state):
        """Push ``state`` through one instruction (identity default)."""
        return state

    def states_equal(self, a, b) -> bool:
        return a == b


class DataflowResult:
    """Fixpoint states of one function, direction-relative.

    ``input_state(b)`` is the joined state *entering* block ``b`` in
    dataflow order (at the top of the block for a forward problem, at
    the bottom for a backward one); ``output_state(b)`` is the state
    after the block's transfer.
    """

    def __init__(self, fn: Function, problem: DataflowProblem,
                 block_in: Dict[BasicBlock, object],
                 block_out: Dict[BasicBlock, object]):
        self.function = fn
        self.problem = problem
        self._block_in = block_in
        self._block_out = block_out

    def input_state(self, block: BasicBlock):
        return self._block_in[block]

    def output_state(self, block: BasicBlock):
        return self._block_out[block]

    @property
    def blocks(self) -> List[BasicBlock]:
        """The analyzed (reachable) blocks."""
        return list(self._block_in)

    def instruction_states(self, block: BasicBlock
                           ) -> Iterator[Tuple[Instruction, object]]:
        """Replay the block, yielding ``(inst, state_before_inst)`` in
        dataflow order."""
        state = self._block_in[block]
        instructions = block.instructions
        if self.problem.direction != "forward":
            instructions = list(reversed(instructions))
        for inst in instructions:
            yield inst, state
            state = self.problem.transfer_instruction(inst, state)


def solve(fn: Function, problem: DataflowProblem) -> DataflowResult:
    """Run ``problem`` over ``fn`` to a fixpoint."""
    forward = problem.direction == "forward"
    reachable = reachable_blocks(fn)
    rpo = [b for b in reverse_postorder(fn) if b in reachable]
    preds = predecessor_map(fn)

    if forward:
        order = rpo
        boundary = {fn.entry_block}

        def incoming(block: BasicBlock) -> List[BasicBlock]:
            return [p for p in preds[block] if p in reachable]

        def outgoing(block: BasicBlock) -> List[BasicBlock]:
            return [s for s in block.successors if s in reachable]
    else:
        order = list(reversed(rpo))
        boundary = {b for b in reachable if not b.successors}

        def incoming(block: BasicBlock) -> List[BasicBlock]:
            return [s for s in block.successors if s in reachable]

        def outgoing(block: BasicBlock) -> List[BasicBlock]:
            return [p for p in preds[block] if p in reachable]

    block_in: Dict[BasicBlock, object] = {}
    block_out: Dict[BasicBlock, object] = {}

    pending = deque(order)
    queued = set(order)
    budget = _MAX_STEPS_PER_BLOCK * max(1, len(order))
    steps = 0
    while pending:
        steps += 1
        if steps > budget:
            raise RuntimeError(
                f"dataflow failed to converge on @{fn.name}: "
                "non-monotone transfer or infinite lattice")
        block = pending.popleft()
        queued.discard(block)

        arriving = [block_out[p] for p in incoming(block) if p in block_out]
        if block in boundary:
            arriving.append(problem.boundary_state(fn))
        if arriving:
            in_state = (arriving[0] if len(arriving) == 1
                        else problem.join(arriving))
        else:
            in_state = problem.initial_state(fn)

        old_out = block_out.get(block)
        block_in[block] = in_state
        out_state = problem.transfer_block(block, in_state)
        if old_out is not None and problem.states_equal(old_out, out_state):
            continue
        block_out[block] = out_state
        for succ in outgoing(block):
            if succ not in queued:
                queued.add(succ)
                pending.append(succ)

    return DataflowResult(fn, problem, block_in, block_out)
