"""Underlying-object alias analysis.

CGCM's optimizations only need to reason about *allocation units*, so
the alias analysis is a simple underlying-object walk: trace a pointer
value through GEPs, casts, and selects to the objects it may be based
on (allocas, globals, heap allocations, arguments, or unknown).

Two pointers based on distinct identified objects cannot alias; any
involvement of an unknown root is conservatively treated as aliasing.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple, Union

from ..ir.instructions import (Alloca, BinaryOp, Call, Cast, GetElementPtr,
                               Instruction, Load, Select, Store)
from ..ir.values import Argument, Constant, GlobalVariable, Value

from ..runtime.api import ADDRESS_OBSERVING_FUNCTIONS, MAP_FUNCTIONS

#: Sentinel root for pointers we cannot trace.
UNKNOWN = "<unknown>"

#: Externals whose result is a fresh allocation (an identified object).
_ALLOCATING_CALLS = frozenset({"malloc", "calloc", "realloc",
                               "declareAlloca"})

#: Run-time calls returning translated device pointers.
_MAP_CALLS = frozenset(MAP_FUNCTIONS)

Root = Union[Value, str]


def underlying_objects(value: Value, _depth: int = 0) -> FrozenSet[Root]:
    """The set of objects ``value`` may be based on."""
    if _depth > 64:
        return frozenset({UNKNOWN})
    if isinstance(value, (GlobalVariable, Alloca, Argument)):
        return frozenset({value})
    if isinstance(value, Constant):
        return frozenset({value})  # null / literal address: distinct
    if isinstance(value, GetElementPtr):
        return underlying_objects(value.pointer, _depth + 1)
    if isinstance(value, Cast):
        if value.kind in ("bitcast", "inttoptr", "ptrtoint"):
            return underlying_objects(value.value, _depth + 1)
        return frozenset({UNKNOWN})
    if isinstance(value, Select):
        return (underlying_objects(value.if_true, _depth + 1)
                | underlying_objects(value.if_false, _depth + 1))
    if isinstance(value, BinaryOp) and value.op in ("add", "sub"):
        # Pointer arithmetic through integers: the pointer side carries
        # the object; integers contribute nothing.
        return (underlying_objects(value.lhs, _depth + 1)
                | underlying_objects(value.rhs, _depth + 1))
    if isinstance(value, Call):
        if value.callee.name in _ALLOCATING_CALLS:
            return frozenset({value})  # the call IS the object
        if value.callee.name in _MAP_CALLS:
            # Device pointers never alias host objects.
            return frozenset({value})
        return frozenset({UNKNOWN})
    if isinstance(value, Load):
        # See through clang -O0 spill slots: a load from an alloca that
        # is only ever directly loaded/stored yields the union of the
        # values stored into it.
        pointer = value.pointer
        if isinstance(pointer, Alloca) and _is_direct_slot(pointer):
            roots: FrozenSet[Root] = frozenset()
            stored_any = False
            fn = pointer.function
            if fn is not None:
                for inst in fn.instructions():
                    if isinstance(inst, Store) and inst.pointer is pointer:
                        stored_any = True
                        roots |= underlying_objects(inst.value, _depth + 1)
            if stored_any:
                return roots
        # Likewise for *global* pointer variables (``double *image;``):
        # the module is a closed world, so if the global is only ever
        # directly loaded/stored, every value it can hold is visible.
        if isinstance(pointer, GlobalVariable):
            module = _module_of(value)
            if module is not None and _is_direct_global_slot(pointer,
                                                             module):
                roots = frozenset()
                stored_any = False
                for fn in module.defined_functions():
                    for inst in fn.instructions():
                        if isinstance(inst, Store) \
                                and inst.pointer is pointer:
                            stored_any = True
                            roots |= underlying_objects(inst.value,
                                                        _depth + 1)
                if stored_any:
                    return roots
        return frozenset({UNKNOWN})
    if isinstance(value, Instruction):
        return frozenset({UNKNOWN})
    return frozenset({UNKNOWN})


def _module_of(value: Value):
    if isinstance(value, Instruction) and value.parent is not None \
            and value.parent.parent is not None:
        return value.parent.parent.module
    return None


def _is_direct_global_slot(gv: GlobalVariable, module) -> bool:
    """Is this global only ever the direct target of loads/stores
    (never GEP'd, cast, or passed by address) across the whole module?
    Then every value it may hold is one of the visibly stored ones.

    Casts that only feed the run-time's registration/mapping entry
    points are exempt: they observe the slot's address, not its value.
    """
    benign_cast_users = frozenset(ADDRESS_OBSERVING_FUNCTIONS)
    for fn in module.defined_functions():
        uses = None
        for inst in fn.instructions():
            for operand in inst.operands:
                if operand is not gv:
                    continue
                direct = (isinstance(inst, Load)
                          and inst.pointer is gv) or \
                    (isinstance(inst, Store) and inst.pointer is gv
                     and inst.value is not gv)
                if direct:
                    continue
                if isinstance(inst, Cast):
                    if uses is None:
                        uses = fn.compute_uses()
                    users = uses.get(inst, [])
                    if users and all(
                            isinstance(u, Call)
                            and u.callee.name in benign_cast_users
                            for u in users):
                        continue
                return False
    return True


def _is_direct_slot(alloca: Alloca) -> bool:
    """Is this alloca only ever the direct target of loads/stores?"""
    fn = alloca.function
    if fn is None:
        return False
    for inst in fn.instructions():
        for operand in inst.operands:
            if operand is not alloca:
                continue
            direct = (isinstance(inst, Load) and inst.pointer is alloca) \
                or (isinstance(inst, Store) and inst.pointer is alloca
                    and inst.value is not alloca)
            if not direct:
                return False
    return True


def root_sort_key(root: Root) -> Tuple:
    """Deterministic ordering key for alias roots.

    ``underlying_objects`` returns frozensets whose iteration order
    varies between interpreter runs (hash randomization); passes that
    report roots or pick candidates from them must iterate in this
    order instead.  Sorts by kind, then by name/position: globals by
    name, arguments by (function, index), instructions (allocas, heap
    calls) by (function, block position, instruction position),
    constants by value, UNKNOWN last.
    """
    if isinstance(root, GlobalVariable):
        return (0, root.name, 0, 0)
    if isinstance(root, Argument):
        fn = root.function
        return (1, fn.name if fn is not None else "", root.index, 0)
    if isinstance(root, Instruction):
        block = root.parent
        fn = block.parent if block is not None else None
        if fn is not None and block is not None:
            try:
                return (2, fn.name, fn.blocks.index(block),
                        block.index(root))
            except ValueError:
                pass
        return (2, "", 0, 0)
    if isinstance(root, Constant):
        return (3, repr(root.value), 0, 0)
    return (4, str(root), 0, 0)


def ordered_roots(roots: Iterable[Root]) -> List[Root]:
    """``roots`` in the deterministic :func:`root_sort_key` order."""
    return sorted(roots, key=root_sort_key)


def is_identified(root: Root) -> bool:
    """Identified objects are provably distinct from one another."""
    if root is UNKNOWN:
        return False
    if isinstance(root, Argument):
        return False  # two different arguments may point to one object
    if isinstance(root, Constant):
        return True
    return isinstance(root, (GlobalVariable, Alloca, Call))


def may_alias_roots(a: FrozenSet[Root], b: FrozenSet[Root]) -> bool:
    """Can pointers with roots ``a`` and ``b`` touch the same memory?"""
    for root_a in a:
        for root_b in b:
            if root_a is root_b or root_a == root_b:
                return True
            if not is_identified(root_a) or not is_identified(root_b):
                return True
    return False


def may_alias(p: Value, q: Value) -> bool:
    """May the pointers ``p`` and ``q`` alias?"""
    return may_alias_roots(underlying_objects(p), underlying_objects(q))


def points_into(value: Value, root: Root) -> bool:
    """May ``value`` point into the allocation unit rooted at ``root``?"""
    return may_alias_roots(underlying_objects(value), frozenset({root}))
