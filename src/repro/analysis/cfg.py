"""CFG utilities: predecessor maps and orderings."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.block import BasicBlock
from ..ir.function import Function


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each block to the blocks that branch to it."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors:
            preds[succ].append(block)
    return preds


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable last)."""
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors))]
        visited.add(block)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(fn.entry_block)
    rpo = list(reversed(order))
    for block in fn.blocks:
        if block not in visited:
            rpo.append(block)
    return rpo


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry."""
    seen: Set[BasicBlock] = set()
    work = [fn.entry_block]
    while work:
        block = work.pop()
        if block in seen:
            continue
        seen.add(block)
        work.extend(block.successors)
    return seen
