"""Affine address analysis and the DOALL cross-iteration conflict test.

The simple DOALL parallelizer (paper section 6.1 uses "a simple
automatic DOALL parallelizer") must prove that two dynamic iterations
of a candidate loop never touch conflicting addresses.  We express
every memory access as an affine form over the candidate loop's
induction variable and the (constant-bounded) induction variables of
the loops nested inside it::

    address = sum(coeff_v * iv_v) + const + sum(symbols)

where symbols are loop-invariant but statically unknown values (array
base pointers and the like).  Two accesses conflict across iterations
``i != i'`` of the candidate loop iff zero lies in the reachable range
of their address difference -- an interval computation over the inner
induction ranges plus a divisibility check on the outer coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..ir.instructions import (Alloca, BinaryOp, Cast, GetElementPtr,
                               Instruction, Load, Select, Store)
from ..ir.types import ArrayType, StructType
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .loops import CountedLoop, Loop


@dataclass(frozen=True)
class IvRange:
    """Half-open value range of an inner induction variable."""

    start: int
    stop: int
    step: int

    @property
    def min_value(self) -> int:
        return self.start

    @property
    def max_value(self) -> int:
        if self.stop <= self.start:
            return self.start
        span = (self.stop - 1 - self.start) // self.step
        return self.start + span * self.step


class AffineContext:
    """Everything needed to build affine forms inside one DOALL
    candidate loop:

    * ``outer_ivar``    -- the candidate's induction alloca; the two
      compared accesses use *different* values of it (delta != 0),
      optionally bounded by ``outer_range`` (the trip count),
    * ``inner_ranges``  -- induction allocas of loops nested inside the
      candidate; the two accesses' instances vary *independently*,
    * ``fixed_ranges``  -- induction allocas of loops *enclosing* the
      candidate: both accesses see the *same* (unknown, bounded) value,
      so equal coefficients cancel exactly (crucial for triangular
      updates like LU's ``A[i][j] -= colk[i] * rowk[j]``).
    """

    def __init__(self, counted: CountedLoop,
                 inner_ranges: Dict[Alloca, IvRange],
                 fixed_ranges: Optional[Dict[Alloca, IvRange]] = None,
                 outer_range: Optional[IvRange] = None):
        self.counted = counted
        self.outer_ivar = counted.ivar
        self.inner_ranges = inner_ranges
        self.fixed_ranges = fixed_ranges or {}
        self.outer_range = outer_range
        self.loop_blocks = counted.loop.blocks
        self._stable_slots: Dict[Alloca, str] = {}
        self._stable_globals: Dict[GlobalVariable, bool] = {}

    def is_invariant(self, value: Value) -> bool:
        if isinstance(value, (Constant, Argument, GlobalVariable)):
            return True
        if isinstance(value, Load) and isinstance(value.pointer, Alloca) \
                and value.pointer in self.fixed_ranges:
            return False  # modelled as a bounded fixed variable instead
        if isinstance(value, Instruction):
            return value.parent not in self.loop_blocks
        return False

    def stable_slot(self, load: Load) -> Optional[Alloca]:
        """The scalar spill slot this in-loop load reads, if the slot
        is never stored inside the loop (so every load yields the same
        value -- e.g. a function parameter like ``r`` in
        ``A[r][q][p]``).  Such loads become symbols keyed by the slot,
        letting equal terms cancel across compared accesses."""
        pointer = load.pointer
        if not isinstance(pointer, Alloca):
            return None
        if not pointer.allocated_type.is_scalar:
            return None
        cached = self._stable_slots.get(pointer)
        if cached is not None:
            return pointer if cached == "stable" else None
        fn = pointer.function
        verdict = "stable"
        if fn is None:
            verdict = "unstable"
        else:
            for inst in fn.instructions():
                if isinstance(inst, Store) and inst.pointer is pointer \
                        and inst.parent in self.loop_blocks:
                    verdict = "unstable"
                    break
                if not isinstance(inst, (Load, Store)) \
                        and pointer in inst.operands:
                    verdict = "unstable"  # address escapes
                    break
        self._stable_slots[pointer] = verdict
        return pointer if verdict == "stable" else None

    def stable_global_slot(self, load: Load) -> bool:
        """Is this a load of a direct-use global pointer slot with no
        stores inside the loop?  Then all in-loop loads agree and the
        global can key an affine symbol."""
        from .alias import _is_direct_global_slot, _module_of
        pointer = load.pointer
        if not isinstance(pointer, GlobalVariable):
            return False
        if not pointer.value_type.is_scalar:
            return False
        cached = self._stable_globals.get(pointer)
        if cached is not None:
            return cached
        module = _module_of(load)
        verdict = False
        if module is not None \
                and _is_direct_global_slot(pointer, module):
            verdict = True
            fn = load.parent.parent if load.parent is not None else None
            if fn is not None:
                for inst in fn.instructions():
                    if isinstance(inst, Store) \
                            and inst.pointer is pointer \
                            and inst.parent in self.loop_blocks:
                        verdict = False
                        break
        self._stable_globals[pointer] = verdict
        return verdict


@dataclass
class Affine:
    """An affine address form; ``unknown`` poisons everything."""

    coeffs: Dict[Alloca, int] = field(default_factory=dict)
    const: int = 0
    symbols: Dict[Value, int] = field(default_factory=dict)
    unknown: bool = False

    @staticmethod
    def poison() -> "Affine":
        return Affine(unknown=True)

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine(const=value)

    @staticmethod
    def symbol(value: Value) -> "Affine":
        return Affine(symbols={value: 1})

    @staticmethod
    def induction(ivar: Alloca) -> "Affine":
        return Affine(coeffs={ivar: 1})

    def add(self, other: "Affine", sign: int = 1) -> "Affine":
        if self.unknown or other.unknown:
            return Affine.poison()
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + sign * coeff
        symbols = dict(self.symbols)
        for sym, mult in other.symbols.items():
            symbols[sym] = symbols.get(sym, 0) + sign * mult
        return Affine({v: c for v, c in coeffs.items() if c},
                      self.const + sign * other.const,
                      {s: m for s, m in symbols.items() if m})

    def scale(self, factor: int) -> "Affine":
        if self.unknown:
            return Affine.poison()
        if factor == 0:
            return Affine.constant(0)
        return Affine({v: c * factor for v, c in self.coeffs.items()},
                      self.const * factor,
                      {s: m * factor for s, m in self.symbols.items()})

    @property
    def is_constant_int(self) -> bool:
        return not (self.unknown or self.coeffs or self.symbols)


def affine_of(value: Value, ctx: AffineContext,
              _depth: int = 0) -> Affine:
    """Build the affine form of an integer/pointer value."""
    if _depth > 64:
        return Affine.poison()
    if isinstance(value, Constant):
        if isinstance(value.value, int):
            return Affine.constant(value.value)
        return Affine.poison()
    if ctx.is_invariant(value):
        return Affine.symbol(value)
    if isinstance(value, Load):
        pointer = value.pointer
        if isinstance(pointer, Alloca):
            if pointer is ctx.outer_ivar or pointer in ctx.inner_ranges \
                    or pointer in ctx.fixed_ranges:
                return Affine.induction(pointer)
            slot = ctx.stable_slot(value)
            if slot is not None:
                # Every in-loop load of this slot sees one value:
                # symbol keyed by the slot so equal terms cancel.
                return Affine.symbol(slot)
        if isinstance(pointer, GlobalVariable) \
                and ctx.stable_global_slot(value):
            return Affine.symbol(pointer)
        return Affine.poison()
    if isinstance(value, Cast):
        if value.kind in ("sext", "zext", "trunc", "bitcast", "inttoptr",
                          "ptrtoint"):
            return affine_of(value.value, ctx, _depth + 1)
        return Affine.poison()
    if isinstance(value, BinaryOp):
        lhs = affine_of(value.lhs, ctx, _depth + 1)
        rhs = affine_of(value.rhs, ctx, _depth + 1)
        if value.op == "add":
            return lhs.add(rhs)
        if value.op == "sub":
            return lhs.add(rhs, sign=-1)
        if value.op == "mul":
            if rhs.is_constant_int:
                return lhs.scale(rhs.const)
            if lhs.is_constant_int:
                return rhs.scale(lhs.const)
            return Affine.poison()
        if value.op == "shl" and rhs.is_constant_int:
            return lhs.scale(1 << rhs.const)
        return Affine.poison()
    if isinstance(value, GetElementPtr):
        return _affine_of_gep(value, ctx, _depth)
    if isinstance(value, Select):
        return Affine.poison()
    return Affine.poison()


def _affine_of_gep(gep: GetElementPtr, ctx: AffineContext,
                   depth: int) -> Affine:
    result = affine_of(gep.pointer, ctx, depth + 1)
    pointee = gep.pointer.type.pointee
    indices = gep.indices
    result = result.add(affine_of(indices[0], ctx,
                                  depth + 1).scale(pointee.size))
    current = pointee
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            current = current.element
            result = result.add(affine_of(index, ctx,
                                          depth + 1).scale(current.size))
        elif isinstance(current, StructType):
            if not isinstance(index, Constant):
                return Affine.poison()
            result = result.add(
                Affine.constant(current.field_offset(index.value)))
            current = current.fields[index.value][1]
        else:
            return Affine.poison()
    return result


@dataclass
class AccessForm:
    """One memory access: its affine address and width in bytes."""

    affine: Affine
    width: int
    is_write: bool


def access_form(inst: Instruction, ctx: AffineContext) -> AccessForm:
    if isinstance(inst, Load):
        return AccessForm(affine_of(inst.pointer, ctx), inst.type.size,
                          False)
    if isinstance(inst, Store):
        return AccessForm(affine_of(inst.pointer, ctx),
                          inst.value.type.size, True)
    raise TypeError(f"not a memory access: {inst!r}")


def conflicts_across_iterations(f: AccessForm, g: AccessForm,
                                ctx: AffineContext) -> bool:
    """May ``f`` (at iteration i) and ``g`` (at iteration i' != i)
    touch overlapping bytes?  Conservative: True when unsure."""
    af, ag = f.affine, g.affine
    if af.unknown or ag.unknown:
        return True
    if af.symbols != ag.symbols:
        # Different unknown bases: if they are based on provably
        # different objects the caller already separated them, so any
        # mismatch here is "don't know".
        return True
    outer = ctx.outer_ivar
    coeff = af.coeffs.get(outer, 0)
    if coeff != ag.coeffs.get(outer, 0):
        return True  # outer strides differ: interval logic breaks down
    # Address difference at iterations (i, i'):
    #   D = coeff*(i - i') + R,   R in [lo, hi]
    # where R collects the constant offset, the independent spans of
    # both accesses' inner induction variables, and the shared spans of
    # enclosing (fixed) induction variables.
    lo = hi = af.const - ag.const
    for var in set(af.coeffs) | set(ag.coeffs):
        if var is outer:
            continue
        fixed = ctx.fixed_ranges.get(var)
        if fixed is not None:
            # Both accesses observe the same value: only the coefficient
            # *difference* matters, and it cancels when equal.
            diff = af.coeffs.get(var, 0) - ag.coeffs.get(var, 0)
            if diff:
                ends = (diff * fixed.min_value, diff * fixed.max_value)
                lo += min(ends)
                hi += max(ends)
            continue
        rng = ctx.inner_ranges.get(var)
        if rng is None:
            return True
        # f's inner iv and g's inner iv vary independently, so both
        # contribute their full span to the interval.
        for inner_coeff in (af.coeffs.get(var, 0), -ag.coeffs.get(var, 0)):
            if inner_coeff == 0:
                continue
            ends = (inner_coeff * rng.min_value,
                    inner_coeff * rng.max_value)
            lo += min(ends)
            hi += max(ends)
    # Divisibility structure: every variable term contributes a
    # multiple of its coefficient, so achievable R values live on the
    # lattice { base_const + lattice_gcd * k } intersected with
    # [lo, hi].
    import math
    lattice_gcd = 0
    base_const = af.const - ag.const
    for var in set(af.coeffs) | set(ag.coeffs):
        if var is outer:
            continue
        if var in ctx.fixed_ranges:
            term = abs(af.coeffs.get(var, 0) - ag.coeffs.get(var, 0))
            lattice_gcd = math.gcd(lattice_gcd, term)
        else:
            lattice_gcd = math.gcd(lattice_gcd,
                                   abs(af.coeffs.get(var, 0)))
            lattice_gcd = math.gcd(lattice_gcd,
                                   abs(ag.coeffs.get(var, 0)))

    # Byte ranges [A_f, A_f+w_f) and [A_g, A_g+w_g) overlap iff
    # D = coeff*delta + R lies in [-(w_g-1), w_f-1].  When the
    # candidate's trip count is known, |delta| is bounded by it.
    max_delta = None
    if ctx.outer_range is not None:
        trips = max(0, (ctx.outer_range.stop - ctx.outer_range.start
                        + ctx.outer_range.step - 1)
                    // ctx.outer_range.step)
        max_delta = max(1, trips - 1)
    win_lo = -(g.width - 1)
    win_hi = f.width - 1
    return _conflict_exists(coeff, win_lo, win_hi, lo, hi, base_const,
                            lattice_gcd, max_delta)


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


_MAX_DELTA_ENUMERATION = 1 << 16


def _conflict_exists(coeff: int, win_lo: int, win_hi: int, lo: int,
                     hi: int, base: int, lattice: int,
                     max_delta: Optional[int]) -> bool:
    """Is there delta != 0 (|delta| <= max_delta) and an achievable
    R in [lo, hi] with R in base + lattice*Z, such that
    coeff*delta + R falls in [win_lo, win_hi]?  Conservative: True on
    enumeration blow-up."""
    if lo > hi:
        return False
    if coeff == 0:
        # delta is irrelevant; any two iterations may collide.
        return _lattice_hits(base, lattice, max(lo, win_lo),
                             min(hi, win_hi))
    # coeff*delta must land in [A, B] = [win_lo - hi, win_hi - lo].
    bound_a = win_lo - hi
    bound_b = win_hi - lo
    if coeff > 0:
        delta_lo = _ceil_div(bound_a, coeff)
        delta_hi = bound_b // coeff
    else:
        delta_lo = _ceil_div(bound_b, coeff)
        delta_hi = bound_a // coeff
    if max_delta is not None:
        delta_lo = max(delta_lo, -max_delta)
        delta_hi = min(delta_hi, max_delta)
    if delta_hi - delta_lo > _MAX_DELTA_ENUMERATION:
        return True  # give up conservatively
    for delta in range(delta_lo, delta_hi + 1):
        if delta == 0:
            continue
        shift = coeff * delta
        if _lattice_hits(base, lattice, max(lo, win_lo - shift),
                         min(hi, win_hi - shift)):
            return True
    return False


def _lattice_hits(base: int, lattice: int, lo: int, hi: int) -> bool:
    """Does { base + lattice*k } intersect [lo, hi]?"""
    if lo > hi:
        return False
    if lattice == 0:
        return lo <= base <= hi
    k_lo = _ceil_div(lo - base, lattice)
    return base + lattice * k_lo <= hi
