"""Dominator and postdominator trees (Cooper-Harvey-Kennedy)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import predecessor_map, reverse_postorder


class DominatorTree:
    """Immediate dominators for every reachable block of a function."""

    def __init__(self, fn: Function):
        self.function = fn
        rpo = [b for b in reverse_postorder(fn)]
        preds = predecessor_map(fn)
        index = {block: i for i, block in enumerate(rpo)}
        entry = fn.entry_block
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                candidates = [p for p in preds[block]
                              if p in idom and p in index]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = intersect(new_idom, pred)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self._idom = idom

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The idom of ``block`` (the entry dominates itself)."""
        return self._idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        current: Optional[BasicBlock] = b
        while current is not None:
            if current is a:
                return True
            parent = self._idom.get(current)
            if parent is current:
                return False
            current = parent
        return False

    def walk_up(self, block: BasicBlock) -> Iterator[BasicBlock]:
        """Yield block, idom(block), ... up to the entry."""
        current: Optional[BasicBlock] = block
        while current is not None:
            yield current
            parent = self._idom.get(current)
            if parent is current:
                return
            current = parent


class PostDominatorTree:
    """Immediate postdominators over the reversed CFG.

    Functions may have several ``ret``/``unreachable`` exits, so the
    reverse CFG is rooted at a virtual exit node whose predecessors are
    every block without successors.  Blocks that cannot reach any exit
    (infinite loops) have no postdominator information; for them
    :meth:`postdominates` conservatively answers False.
    """

    _VIRTUAL_EXIT = object()

    def __init__(self, fn: Function):
        self.function = fn
        virt = PostDominatorTree._VIRTUAL_EXIT
        cfg_preds = predecessor_map(fn)
        exits = [b for b in fn.blocks if not b.successors]

        # Reverse postorder of the *reversed* CFG from the virtual exit
        # (reverse-graph successors of a block are its CFG predecessors).
        visited = {virt}
        postorder: List[object] = []
        stack = [(virt, iter(exits))]
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(cfg_preds[succ])))
                    advanced = True
                    break
            if not advanced:
                postorder.append(node)
                stack.pop()
        rpo = list(reversed(postorder))
        index = {node: i for i, node in enumerate(rpo)}
        ipdom: Dict[object, object] = {virt: virt}

        def intersect(a: object, b: object) -> object:
            while a is not b:
                while index[a] > index[b]:
                    a = ipdom[a]
                while index[b] > index[a]:
                    b = ipdom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is virt:
                    continue
                # Reverse-graph predecessors: CFG successors, plus the
                # virtual exit for exit blocks.
                preds = [s for s in block.successors
                         if s in ipdom and s in index]
                if not block.successors:
                    preds.append(virt)
                if not preds:
                    continue
                new_ipdom = preds[0]
                for pred in preds[1:]:
                    new_ipdom = intersect(new_ipdom, pred)
                if ipdom.get(block) is not new_ipdom:
                    ipdom[block] = new_ipdom
                    changed = True

        self._ipdom = ipdom

    def immediate_postdominator(self,
                                block: BasicBlock) -> Optional[BasicBlock]:
        """The ipdom of ``block`` (None for exit blocks, for blocks
        that reach no exit, and for blocks outside the function)."""
        parent = self._ipdom.get(block)
        if parent is None or parent is PostDominatorTree._VIRTUAL_EXIT:
            return None
        return parent  # type: ignore[return-value]

    def postdominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if every path from ``b`` to an exit passes through
        ``a`` (reflexive; conservatively False when ``b`` reaches no
        exit)."""
        virt = PostDominatorTree._VIRTUAL_EXIT
        if b not in self._ipdom:
            return False
        current: object = b
        while True:
            if current is a:
                return True
            if current is virt:
                return False
            parent = self._ipdom.get(current)
            if parent is None or parent is current:
                return False
            current = parent

    def walk_up(self, block: BasicBlock) -> Iterator[BasicBlock]:
        """Yield block, ipdom(block), ... up to the last real block."""
        virt = PostDominatorTree._VIRTUAL_EXIT
        current: object = block
        while current is not None and current is not virt:
            yield current  # type: ignore[misc]
            parent = self._ipdom.get(current)
            if parent is current:
                return
            current = parent
