"""Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import predecessor_map, reverse_postorder


class DominatorTree:
    """Immediate dominators for every reachable block of a function."""

    def __init__(self, fn: Function):
        self.function = fn
        rpo = [b for b in reverse_postorder(fn)]
        preds = predecessor_map(fn)
        index = {block: i for i, block in enumerate(rpo)}
        entry = fn.entry_block
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                candidates = [p for p in preds[block]
                              if p in idom and p in index]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = intersect(new_idom, pred)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self._idom = idom

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The idom of ``block`` (the entry dominates itself)."""
        return self._idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        current: Optional[BasicBlock] = b
        while current is not None:
            if current is a:
                return True
            parent = self._idom.get(current)
            if parent is current:
                return False
            current = parent
        return False

    def walk_up(self, block: BasicBlock) -> Iterator[BasicBlock]:
        """Yield block, idom(block), ... up to the entry."""
        current: Optional[BasicBlock] = block
        while current is not None:
            yield current
            parent = self._idom.get(current)
            if parent is current:
                return
            current = parent
