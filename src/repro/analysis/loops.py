"""Natural loop detection and counted-loop recognition.

CGCM's optimizations work on *regions* that are either whole functions
or loop bodies (paper Algorithm 4); the DOALL parallelizer needs the
stronger :class:`CountedLoop` shape (canonical induction variable with
loop-invariant bounds) produced by :func:`recognize_counted_loop`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Compare, CondBranch,
                               Instruction, Load, Store)
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .cfg import predecessor_map, reachable_blocks
from .dominators import DominatorTree


class Loop:
    """One natural loop: header plus the body that can reach the latch."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def depth(self) -> int:
        depth = 1
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def latches(self) -> List[BasicBlock]:
        return [b for b in self.blocks
                if self.header in b.successors and b is not self.header]

    def exit_edges(self) -> List[tuple]:
        """(from_block, to_block) pairs leaving the loop."""
        edges = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks:
                    edges.append((block, succ))
        return edges

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


def find_loops(fn: Function) -> List[Loop]:
    """All natural loops of ``fn``, outermost first, nesting linked."""
    domtree = DominatorTree(fn)
    preds = predecessor_map(fn)
    reachable = reachable_blocks(fn)
    loops_by_header: Dict[BasicBlock, Loop] = {}

    for block in fn.blocks:
        if block not in reachable:
            continue
        for succ in block.successors:
            if succ in reachable and domtree.dominates(succ, block):
                header = succ
                body = _natural_loop_blocks(header, block, preds)
                loop = loops_by_header.get(header)
                if loop is None:
                    loops_by_header[header] = Loop(header, body)
                else:
                    loop.blocks |= body

    loops = list(loops_by_header.values())
    # Link nesting: the parent is the smallest strictly-containing loop.
    for loop in loops:
        best: Optional[Loop] = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.blocks and loop.blocks <= other.blocks:
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
        loop.parent = best
        if best is not None:
            best.children.append(loop)
    loops.sort(key=lambda l: l.depth)
    return loops


def _natural_loop_blocks(header: BasicBlock, latch: BasicBlock,
                         preds: Dict[BasicBlock, List[BasicBlock]]
                         ) -> Set[BasicBlock]:
    blocks = {header, latch}
    work = [latch]
    while work:
        block = work.pop()
        if block is header:
            continue
        for pred in preds.get(block, []):
            if pred not in blocks:
                blocks.add(pred)
                work.append(pred)
    return blocks


def loop_preheader(loop: Loop,
                   preds: Dict[BasicBlock, List[BasicBlock]]
                   ) -> Optional[BasicBlock]:
    """The unique out-of-loop predecessor of the header, if there is one."""
    outside = [p for p in preds.get(loop.header, [])
               if p not in loop.blocks]
    if len(outside) == 1 and len(outside[0].successors) == 1:
        return outside[0]
    return None


class CountedLoop:
    """A canonicalized counted loop::

        i = start
        while (i < end):   # header: load i; cmp; cbr
            body
            i += step      # step block (the unique latch)

    ``ivar`` is the alloca holding the induction variable; ``start``,
    ``end``, and ``step`` are loop-invariant values (step a constant).
    """

    def __init__(self, loop: Loop, ivar: Alloca, start: Value, end: Value,
                 step: int, pred: str, preheader: BasicBlock,
                 exit_block: BasicBlock, latch: BasicBlock,
                 compare: Compare, end_computation: List[Instruction]):
        self.loop = loop
        self.ivar = ivar
        self.start = start
        self.end = end
        self.step = step
        self.pred = pred
        self.preheader = preheader
        self.exit_block = exit_block
        self.latch = latch
        self.compare = compare
        #: Header instructions (in order) that compute ``end`` from
        #: loop-invariant memory; cloneable above the loop.
        self.end_computation = end_computation

    @property
    def body_blocks(self) -> Set[BasicBlock]:
        """Loop blocks excluding header and latch."""
        return self.loop.blocks - {self.loop.header, self.latch}

    def __repr__(self) -> str:
        return (f"<CountedLoop {self.ivar.name} "
                f"{self.pred} step={self.step}>")


def recognize_counted_loop(fn: Function, loop: Loop) -> Optional[CountedLoop]:
    """Match ``loop`` against the canonical counted shape, or None.

    Requirements (sufficient for the frontend's ``for`` lowering):

    * single out-of-loop predecessor of the header (preheader),
    * header is ``%iv = load %i; %c = cmp {lt,le} %iv, END; cbr``,
    * exactly one latch, ending ``load i; add step; store i``,
    * the only stores to the induction alloca inside the loop are in
      the latch; END is loop-invariant; STEP is a positive constant,
    * the single loop exit is the header's false edge.
    """
    preds = predecessor_map(fn)
    preheader = loop_preheader(loop, preds)
    if preheader is None:
        return None
    latches = loop.latches()
    if len(latches) != 1:
        return None
    latch = latches[0]

    header = loop.header
    pattern = _match_header(header, loop)
    if pattern is None:
        return None
    ivar, end, pred, compare, exit_block, end_computation = pattern

    step = _match_latch(latch, ivar)
    if step is None or step <= 0:
        return None

    # The induction alloca must only be stored in the latch (inside the
    # loop) and must actually be an alloca in this function.
    if not isinstance(ivar, Alloca):
        return None
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, Store) and inst.pointer is ivar \
                    and block is not latch:
                return None

    # Single exit: only the header may leave the loop.
    for from_block, to_block in loop.exit_edges():
        if from_block is not header or to_block is not exit_block:
            return None

    start = _find_start_value(preheader, ivar)
    if start is None or not _is_invariant_value(start, loop):
        return None

    return CountedLoop(loop, ivar, start, end, step, pred, preheader,
                       exit_block, latch, compare, end_computation)


def _match_header(header: BasicBlock, loop: Loop):
    insts = header.instructions
    if len(insts) < 3:
        return None
    term = insts[-1]
    if not isinstance(term, CondBranch):
        return None
    compare = term.condition
    if not isinstance(compare, Compare) or compare.parent is not header:
        return None
    if compare.pred not in ("lt", "le"):
        return None
    load = compare.lhs
    if not isinstance(load, Load) or load.parent is not header:
        return None
    ivar = load.pointer
    if term.if_true in loop.blocks and term.if_false not in loop.blocks:
        exit_block = term.if_false
    else:
        return None
    # The bound may be computed in the header from loop-invariant
    # memory (e.g. ``i < n`` loads the local n each iteration); gather
    # that computation so callers can clone it above the loop.
    end_computation = _invariant_computation(compare.rhs, header, loop)
    if end_computation is None:
        return None
    allowed = {load, compare, term} | set(end_computation)
    for inst in insts:
        if inst not in allowed:
            return None
    return (ivar, compare.rhs, compare.pred, compare, exit_block,
            end_computation)


def _invariant_computation(value: Value, header: BasicBlock,
                           loop: Loop) -> Optional[List[Instruction]]:
    """Header instructions computing a loop-invariant ``value``.

    Returns them in block order, or None if the value may vary across
    iterations.  An empty list means the value is already invariant.
    """
    if _is_invariant_value(value, loop):
        return []
    if not isinstance(value, Instruction) or value.parent is not header:
        return None
    needed: Set[Instruction] = set()
    work: List[Instruction] = [value]
    while work:
        inst = work.pop()
        if inst in needed:
            continue
        needed.add(inst)
        if isinstance(inst, Load):
            if not _is_stable_location(inst.pointer, loop):
                return None
            continue
        if not isinstance(inst, (BinaryOp, Compare)) \
                and inst.opcode != "cast":
            return None
        for operand in inst.operands:
            if _is_invariant_value(operand, loop):
                continue
            if isinstance(operand, Instruction) \
                    and operand.parent is header:
                work.append(operand)
            else:
                return None
    return [inst for inst in header.instructions if inst in needed]


def _is_stable_location(pointer: Value, loop: Loop) -> bool:
    """True if loads of ``pointer`` are the same on every iteration:
    a non-escaping alloca with no stores inside the loop."""
    if not isinstance(pointer, Alloca):
        return False
    fn = pointer.function
    if fn is None:
        return False
    for inst in fn.instructions():
        if isinstance(inst, Store):
            if inst.pointer is pointer and inst.parent in loop.blocks:
                return False
            if inst.value is pointer:
                return False  # address escapes into memory
        elif isinstance(inst, Load):
            continue
        elif pointer in inst.operands:
            return False  # address escapes into a call/gep/cast
    return True


def _match_latch(latch: BasicBlock, ivar: Value) -> Optional[int]:
    """Return the constant step if the latch is ``i += step``."""
    step: Optional[int] = None
    for inst in latch.instructions:
        if isinstance(inst, Store) and inst.pointer is ivar:
            add = inst.value
            if not isinstance(add, BinaryOp) or add.op != "add":
                return None
            lhs, rhs = add.lhs, add.rhs
            if isinstance(lhs, Load) and lhs.pointer is ivar \
                    and isinstance(rhs, Constant):
                candidate = int(rhs.value)
            elif isinstance(rhs, Load) and rhs.pointer is ivar \
                    and isinstance(lhs, Constant):
                candidate = int(lhs.value)
            else:
                return None
            if step is not None:
                return None  # two updates
            step = candidate
    return step


def _find_start_value(preheader: BasicBlock, ivar: Value) -> Optional[Value]:
    start: Optional[Value] = None
    for inst in preheader.instructions:
        if isinstance(inst, Store) and inst.pointer is ivar:
            start = inst.value
    return start


def _is_invariant_value(value: Value, loop: Loop) -> bool:
    """Is ``value`` guaranteed to be the same on every loop iteration?"""
    if isinstance(value, (Constant, Argument, GlobalVariable)):
        return True
    if isinstance(value, Instruction):
        return value.parent not in loop.blocks
    return False
