"""Mod/ref analysis: does CPU code in a region touch an allocation unit?

Map promotion needs to prove that between hoisted ``map`` and ``unmap``
calls no *CPU* instruction reads or writes the allocation unit (GPU
accesses through kernel launches are exactly what the mapping is for,
so launches are ignored; run-time library calls manage the unit
coherently and are likewise excluded -- paper Algorithm 4).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Call, Instruction, LaunchKernel, Load, Store
from ..ir.values import Argument, Value
from ..runtime.api import RUNTIME_FUNCTION_NAMES
from .alias import Root, UNKNOWN, points_into, underlying_objects

#: Externals that never touch user memory.
_PURE_EXTERNALS = frozenset({
    "sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "tan", "floor",
    "ceil", "fmax", "fmin", "abs_i64", "exp2", "atan", "srand", "rand_f64",
    "rand_i64", "print_i64", "print_f64", "exit", "malloc", "calloc",
})
#: Externals that read/write memory reachable from their arguments.
_MEMORY_EXTERNALS = frozenset({"memcpy", "memset", "print_str", "free",
                               "realloc"})


class ModRefAnalysis:
    """Answers "does this region mod or ref this object?" queries."""

    def __init__(self):
        self._function_cache: Dict[Tuple[Function, Root], Tuple[bool, bool]] = {}
        self._in_progress: Set[Tuple[Function, Root]] = set()
        self._arg_cache: Dict[Function, Tuple[bool, bool]] = {}
        self._arg_in_progress: Set[Function] = set()

    # -- region queries ------------------------------------------------------

    def region_mod_ref(self, blocks: Iterable[BasicBlock], root: Root,
                       exclude: Optional[Set[Instruction]] = None
                       ) -> Tuple[bool, bool]:
        """(mod, ref) of CPU code in ``blocks`` w.r.t. ``root``."""
        exclude = exclude or set()
        mod = ref = False
        for block in blocks:
            for inst in block.instructions:
                if inst in exclude:
                    continue
                inst_mod, inst_ref = self._instruction_mod_ref(inst, root)
                mod = mod or inst_mod
                ref = ref or inst_ref
                if mod and ref:
                    return True, True
        return mod, ref

    def call_mod_ref(self, inst: Call, root: Root) -> Tuple[bool, bool]:
        """(mod, ref) of one call site w.r.t. ``root`` -- public entry
        point for clients (e.g. the static checker) that reason about
        individual calls rather than regions."""
        return self._call_mod_ref(inst, root)

    def instruction_mod_ref(self, inst: Instruction,
                            root: Root) -> Tuple[bool, bool]:
        """(mod, ref) of a single instruction w.r.t. ``root``."""
        return self._instruction_mod_ref(inst, root)

    def _instruction_mod_ref(self, inst: Instruction,
                             root: Root) -> Tuple[bool, bool]:
        if isinstance(inst, Load):
            return False, points_into(inst.pointer, root)
        if isinstance(inst, Store):
            return points_into(inst.pointer, root), False
        if isinstance(inst, LaunchKernel):
            return False, False  # GPU-side access: not CPU mod/ref
        if isinstance(inst, Call):
            return self._call_mod_ref(inst, root)
        return False, False

    def _call_mod_ref(self, inst: Call, root: Root) -> Tuple[bool, bool]:
        name = inst.callee.name
        if name in RUNTIME_FUNCTION_NAMES:
            return False, False  # managed coherently by the run-time
        if inst.callee.is_declaration:
            if name in _PURE_EXTERNALS:
                return False, False
            if name in _MEMORY_EXTERNALS:
                touches = any(points_into(arg, root) for arg in inst.args
                              if arg.type.is_pointer)
                return touches, touches
            return True, True  # unknown external: be conservative
        # Defined callee: does its body touch the object (transitively)?
        body_mod, body_ref = self._function_mod_ref(inst.callee, root)
        # Accesses through the callee's own arguments count only if one
        # of the actuals can point into the object.
        arg_mod, arg_ref = self._function_arg_mod_ref(inst.callee)
        passes_object = any(points_into(arg, root) for arg in inst.args
                            if arg.type.is_pointer)
        if passes_object:
            body_mod = body_mod or arg_mod
            body_ref = body_ref or arg_ref
        return body_mod, body_ref

    # -- whole-function summaries ------------------------------------------------

    def _function_mod_ref(self, fn: Function,
                          root: Root) -> Tuple[bool, bool]:
        """Does ``fn`` (transitively) access ``root`` *not* through its
        own arguments?"""
        key = (fn, root)
        cached = self._function_cache.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return True, True  # recursion: conservative
        self._in_progress.add(key)
        mod = ref = False
        for inst in fn.instructions():
            if isinstance(inst, Load):
                if self._non_argument_access(inst.pointer, root):
                    ref = True
            elif isinstance(inst, Store):
                if self._non_argument_access(inst.pointer, root):
                    mod = True
            elif isinstance(inst, Call):
                call_mod, call_ref = self._call_mod_ref(inst, root)
                mod = mod or call_mod
                ref = ref or call_ref
            if mod and ref:
                break
        self._in_progress.discard(key)
        self._function_cache[key] = (mod, ref)
        return mod, ref

    def _non_argument_access(self, pointer: Value, root: Root) -> bool:
        roots = underlying_objects(pointer)
        non_arg_roots = frozenset(r for r in roots
                                  if not isinstance(r, Argument))
        if not non_arg_roots:
            return False
        from .alias import may_alias_roots
        return may_alias_roots(non_arg_roots, frozenset({root}))

    def _function_arg_mod_ref(self, fn: Function) -> Tuple[bool, bool]:
        """Does ``fn`` load/store through its pointer arguments?"""
        cached = self._arg_cache.get(fn)
        if cached is not None:
            return cached
        if fn in self._arg_in_progress:
            return True, True  # recursion: conservative
        self._arg_in_progress.add(fn)
        mod = ref = False
        for inst in fn.instructions():
            if isinstance(inst, Load):
                if self._based_on_argument(inst.pointer):
                    ref = True
            elif isinstance(inst, Store):
                if self._based_on_argument(inst.pointer):
                    mod = True
            elif isinstance(inst, Call) and not inst.callee.is_declaration:
                # Argument-reachable memory may be forwarded.
                callee_mod, callee_ref = self._function_arg_mod_ref(
                    inst.callee)
                mod = mod or callee_mod
                ref = ref or callee_ref
            if mod and ref:
                break
        self._arg_in_progress.discard(fn)
        self._arg_cache[fn] = (mod, ref)
        return mod, ref

    def _based_on_argument(self, pointer: Value) -> bool:
        roots = underlying_objects(pointer)
        return any(isinstance(r, Argument) or r is UNKNOWN for r in roots)
