"""Call graph over direct calls, with recursion detection.

MiniC has no function pointers, so the graph is exact.  Map promotion
and alloca promotion climb this graph; recursive functions are
ineligible (paper section 5.1).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.function import Function
from ..ir.instructions import Call, LaunchKernel
from ..ir.module import Module


class CallGraph:
    """Direct-call graph of one module (kernels included via launches)."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[Function, Set[Function]] = {}
        self.callers: Dict[Function, Set[Function]] = {}
        self.call_sites: Dict[Function, List[Call]] = {}
        for fn in module.functions.values():
            self.callees.setdefault(fn, set())
            self.callers.setdefault(fn, set())
            self.call_sites.setdefault(fn, [])
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, Call):
                    callee = inst.callee
                    self.callees[fn].add(callee)
                    self.callers.setdefault(callee, set()).add(fn)
                    self.call_sites.setdefault(callee, []).append(inst)
                elif isinstance(inst, LaunchKernel):
                    self.callees[fn].add(inst.kernel)
                    self.callers.setdefault(inst.kernel, set()).add(fn)
        self._recursive = self._find_recursive()

    def _find_recursive(self) -> Set[Function]:
        """Functions on a call-graph cycle (Tarjan SCC)."""
        index: Dict[Function, int] = {}
        lowlink: Dict[Function, int] = {}
        on_stack: Set[Function] = set()
        stack: List[Function] = []
        recursive: Set[Function] = set()
        counter = [0]

        def strongconnect(fn: Function) -> None:
            index[fn] = lowlink[fn] = counter[0]
            counter[0] += 1
            stack.append(fn)
            on_stack.add(fn)
            for callee in self.callees.get(fn, ()):
                if callee not in index:
                    strongconnect(callee)
                    lowlink[fn] = min(lowlink[fn], lowlink[callee])
                elif callee in on_stack:
                    lowlink[fn] = min(lowlink[fn], index[callee])
            if lowlink[fn] == index[fn]:
                component: List[Function] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is fn:
                        break
                if len(component) > 1:
                    recursive.update(component)
                elif fn in self.callees.get(fn, ()):
                    recursive.add(fn)

        for fn in self.module.functions.values():
            if fn not in index:
                strongconnect(fn)
        return recursive

    def is_recursive(self, fn: Function) -> bool:
        return fn in self._recursive

    def callers_of(self, fn: Function) -> Set[Function]:
        return self.callers.get(fn, set())

    def call_sites_of(self, fn: Function) -> List[Call]:
        return list(self.call_sites.get(fn, ()))

    def bottom_up(self) -> List[Function]:
        """Defined functions ordered callees-before-callers (best effort
        in the presence of cycles)."""
        order: List[Function] = []
        visited: Set[Function] = set()

        def visit(fn: Function) -> None:
            if fn in visited:
                return
            visited.add(fn)
            for callee in self.callees.get(fn, ()):
                visit(callee)
            if not fn.is_declaration:
                order.append(fn)

        for fn in self.module.functions.values():
            visit(fn)
        return order
