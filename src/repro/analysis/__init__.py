"""Compiler analyses: CFG, dominators, loops, liveness, call graph,
use-based type inference, aliasing, mod/ref, and affine dependence."""

from .cfg import predecessor_map, reachable_blocks, reverse_postorder
from .dataflow import DataflowProblem, DataflowResult, solve
from .dominators import DominatorTree, PostDominatorTree
from .loops import (CountedLoop, Loop, find_loops, loop_preheader,
                    recognize_counted_loop)
from .liveness import Liveness
from .callgraph import CallGraph
from .typeinfer import (MAX_SUPPORTED_DEPTH, PointerDepths,
                        infer_pointer_depths)
from .alias import (UNKNOWN, is_identified, may_alias, may_alias_roots,
                    ordered_roots, points_into, root_sort_key,
                    underlying_objects)
from .modref import ModRefAnalysis
from .affine import (AccessForm, Affine, AffineContext, IvRange, access_form,
                     affine_of, conflicts_across_iterations)

__all__ = [
    "predecessor_map", "reachable_blocks", "reverse_postorder",
    "DataflowProblem", "DataflowResult", "solve",
    "DominatorTree", "PostDominatorTree", "CountedLoop", "Loop",
    "find_loops", "loop_preheader",
    "recognize_counted_loop", "Liveness", "CallGraph",
    "MAX_SUPPORTED_DEPTH", "PointerDepths", "infer_pointer_depths",
    "UNKNOWN", "is_identified", "may_alias", "may_alias_roots",
    "ordered_roots", "points_into", "root_sort_key", "underlying_objects",
    "ModRefAnalysis", "AccessForm",
    "Affine", "AffineContext", "IvRange", "access_form", "affine_of",
    "conflicts_across_iterations",
]
