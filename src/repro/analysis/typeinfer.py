"""Use-based pointer type inference (paper section 4).

"The C and C++ type systems are insufficient to determine which
live-in values are pointers or to determine the indirection level of a
pointer.  The compiler ignores these types and instead infers type
based on usage within the GPU function. [...] If a value flows to the
address operand of a load or store, potentially through additions,
casts, sign extensions, or other operations, the compiler labels the
value a pointer.  Similarly, if the result of a load operation flows
to another memory operation, the compiler labels the pointer operand
of the load a double pointer."

The inference deliberately never consults IR pointer types -- the
whole point is circumventing the unreliable C type system.  It is
field-insensitive (types flow through pointer arithmetic) and
interprocedural across device functions called from the kernel.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import CgcmUnsupportedError
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Call, Cast, GetElementPtr,
                               Instruction, Load, Select, Store)
from ..ir.module import Module
from ..ir.values import GlobalVariable, Value

#: CGCM supports at most double indirection (paper Table 1: "Max
#: Indirection 2").
MAX_SUPPORTED_DEPTH = 2


class PointerDepths:
    """Inferred indirection depth for every value in a kernel.

    Depth 0 = not a pointer, 1 = pointer, 2 = pointer to pointers.
    """

    def __init__(self, kernel: Function, module: Module):
        self.kernel = kernel
        self.module = module
        self.depths: Dict[Value, int] = {}
        self.functions = self._reachable_device_functions()
        self._infer()

    def _reachable_device_functions(self) -> List[Function]:
        seen: Set[Function] = set()
        order: List[Function] = []
        work = [self.kernel]
        while work:
            fn = work.pop()
            if fn in seen or fn.is_declaration:
                continue
            seen.add(fn)
            order.append(fn)
            for inst in fn.instructions():
                if isinstance(inst, Call):
                    work.append(inst.callee)
        return order

    def depth_of(self, value: Value) -> int:
        return self.depths.get(value, 0)

    def _raise_depth(self, value: Value, depth: int,
                     work: List[Value]) -> None:
        if depth > self.depths.get(value, 0):
            self.depths[value] = depth
            work.append(value)

    def _infer(self) -> None:
        # Collect flow edges: value -> values it flows *from* (so a
        # depth discovered at a use propagates back to its sources).
        sources: Dict[Value, List[Value]] = {}
        loads_by_result: Dict[Value, Value] = {}
        call_bindings: List[Tuple[Value, Value]] = []

        def add_flow(result: Value, source: Value) -> None:
            sources.setdefault(result, []).append(source)

        # Stack spill slots (clang -O0 keeps every local in an alloca):
        # a value stored to a slot flows to every load of that slot.
        slot_stores: Dict[Value, List[Value]] = {}
        for fn in self.functions:
            slots = _direct_slots(fn)
            for inst in fn.instructions():
                if isinstance(inst, Store) and inst.pointer in slots:
                    slot_stores.setdefault(inst.pointer,
                                           []).append(inst.value)

        work: List[Value] = []
        for fn in self.functions:
            slots = _direct_slots(fn)
            for inst in fn.instructions():
                if isinstance(inst, Load):
                    self._raise_depth(inst.pointer, 1, work)
                    if inst.pointer in slots:
                        for stored in slot_stores.get(inst.pointer, ()):
                            add_flow(inst, stored)
                    else:
                        loads_by_result[inst] = inst.pointer
                elif isinstance(inst, Store):
                    self._raise_depth(inst.pointer, 1, work)
                elif isinstance(inst, GetElementPtr):
                    add_flow(inst, inst.pointer)
                elif isinstance(inst, Cast):
                    add_flow(inst, inst.value)
                elif isinstance(inst, BinaryOp):
                    if inst.op in ("add", "sub"):
                        add_flow(inst, inst.lhs)
                        add_flow(inst, inst.rhs)
                elif isinstance(inst, Select):
                    add_flow(inst, inst.if_true)
                    add_flow(inst, inst.if_false)
                elif isinstance(inst, Call) and not inst.callee.is_declaration:
                    for formal, actual in zip(inst.callee.args, inst.args):
                        call_bindings.append((formal, actual))

        # Fixed point: pointer-ness flows from uses back to sources,
        # and loading from a pointer whose result is itself a pointer
        # makes the loaded-from pointer doubly indirect.
        changed = True
        while changed:
            changed = False
            before = dict(self.depths)
            for value, value_sources in sources.items():
                depth = self.depths.get(value, 0)
                if depth:
                    for source in value_sources:
                        self._raise_depth(source, depth, work)
            for result, pointer in loads_by_result.items():
                result_depth = self.depths.get(result, 0)
                if result_depth:
                    self._raise_depth(pointer, result_depth + 1, work)
            for formal, actual in call_bindings:
                formal_depth = self.depths.get(formal, 0)
                if formal_depth:
                    self._raise_depth(actual, formal_depth, work)
            changed = before != self.depths

    # -- restriction checks (paper section 2.3) ---------------------------

    def check_restrictions(self) -> List[str]:
        """Violations of CGCM's two restrictions in this kernel."""
        problems: List[str] = []
        for value, depth in self.depths.items():
            if isinstance(value, Alloca):
                continue  # spill slots carry their content's depth + 1
            if depth > MAX_SUPPORTED_DEPTH:
                problems.append(
                    f"@{self.kernel.name}: value {value.ref} has "
                    f"indirection depth {depth} (max "
                    f"{MAX_SUPPORTED_DEPTH})")
        for fn in self.functions:
            for inst in fn.instructions():
                if not isinstance(inst, Store) \
                        or isinstance(inst.pointer, Alloca):
                    continue  # spilling to the thread stack is fine
                if self.depth_of(inst.value) >= 1 \
                        or inst.value.type.is_pointer:
                    problems.append(
                        f"@{fn.name}: kernel stores a pointer into memory")
        return problems

    def require_supported(self) -> None:
        problems = self.check_restrictions()
        if problems:
            raise CgcmUnsupportedError("; ".join(problems))

    # -- live-in classification ---------------------------------------------

    def live_in_depths(self) -> Dict[Value, int]:
        """Depth of each kernel live-in: formal parameters (beyond the
        thread id) and globals used anywhere in the device code."""
        result: Dict[Value, int] = {}
        for arg in self.kernel.args[1:]:
            result[arg] = self.depth_of(arg)
        for fn in self.functions:
            for inst in fn.instructions():
                for operand in inst.operands:
                    if isinstance(operand, GlobalVariable):
                        depth = max(self.depth_of(operand), 1)
                        result[operand] = max(result.get(operand, 0), depth)
        return result


def _direct_slots(fn: Function) -> Set[Value]:
    """Allocas used only as direct load/store targets (spill slots)."""
    slots: Set[Value] = set()
    disqualified: Set[Value] = set()
    for inst in fn.instructions():
        if isinstance(inst, Alloca):
            slots.add(inst)
    for inst in fn.instructions():
        for operand in inst.operands:
            if operand not in slots:
                continue
            is_direct = (isinstance(inst, Load)
                         and inst.pointer is operand) or \
                (isinstance(inst, Store) and inst.pointer is operand
                 and inst.value is not operand)
            if not is_direct:
                disqualified.add(operand)
    return slots - disqualified


def infer_pointer_depths(kernel: Function, module: Module) -> PointerDepths:
    """Run use-based type inference for one kernel."""
    return PointerDepths(kernel, module)
