"""Static happens-before facts over the asynchronous streams IR.

The comm-overlap transform (``transforms/comm_overlap``) rewrites
map/unmap calls into their asynchronous twins: an ``mapAsync`` issues
an HtoD copy on the upload stream, an ``unmapAsync`` issues a DtoH
write-back on the download stream ordered after the latest compute
work, and a ``cgcmSync`` is the host barrier that drains the download
stream.  The *scheduler* (``gpu/timing.SimClock``) defines the real
ordering semantics; this module rebuilds the same relation statically:

* **host program order** -- every IR instruction *issues* in program
  order on the host;
* **per-stream FIFO** -- operations on one stream complete in issue
  order;
* **event edges** -- a write-back waits on the compute event recorded
  at its issue (so launches happen-before later write-backs), an async
  upload waits on a pending write-back of its own unit
  (``_writeback_deps``), and a launch waits on both copy cursors (so
  every copy issued before a launch happens-before it);
* **barriers** -- ``cgcmSync`` happens-after every write-back issued
  before it.

Two views are provided:

:class:`HappensBeforeProblem`
    A forward dataflow over *pending asynchronous tokens*: which
    allocation units have an un-fenced write-back or upload in flight
    at each program point.  This is the engine behind the
    ``staticcheck/hbcheck`` auditor; it is interprocedural via
    :class:`HBSummary` records replayed at call sites
    (``staticcheck.mapstate`` style).

:func:`build_hb_graph`
    An explicit must-happens-before graph (issue and completion nodes,
    edges derived from the four rules above, with dominance standing
    in for host program order across blocks).  Sound but not complete:
    ``ordered(a, b)`` answering True is a proof; answering False only
    means no proof was found.  Used by tests to cross-validate the
    dataflow checker and by documentation as the reference relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import (Alloca, Call, Instruction, LaunchKernel,
                               Load, Store)
from ..ir.values import Argument, Constant, GlobalVariable
from ..runtime.api import ENTRY_POINTS, EntryOp, MAP_FUNCTIONS, UnitKind
from . import dataflow
from .alias import (UNKNOWN, Root, ordered_roots, underlying_objects)
from .dominators import DominatorTree
from .modref import ModRefAnalysis


def async_op_kind(name: str) -> Optional[str]:
    """``"h2d"`` / ``"d2h"`` / ``"sync"`` for stream operations, else
    None.  Derived from the runtime-API registry, never from literal
    name tables."""
    ep = ENTRY_POINTS.get(name)
    if ep is None:
        return None
    if ep.op is EntryOp.SYNC:
        return "sync"
    if not ep.is_async:
        return None
    if ep.op is EntryOp.MAP:
        return "h2d"
    if ep.op is EntryOp.UNMAP:
        return "d2h"
    return None


def _trackable(root: Root) -> bool:
    """Host allocation units the analysis keeps state for."""
    if root is UNKNOWN or isinstance(root, str) \
            or isinstance(root, Constant):
        return False
    if isinstance(root, Call):
        return root.callee.name not in MAP_FUNCTIONS  # device pointers
    return isinstance(root, (GlobalVariable, Alloca, Argument))


# ---------------------------------------------------------------------------
# Pending-token dataflow
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AsyncUnitState:
    """Pending asynchronous operations of one allocation unit."""

    #: An async write-back (DtoH) was issued and no host barrier has
    #: retired it: host reads/writes of the unit are unordered against
    #: the in-flight copy.
    wb_pending: bool = False
    #: The write-back's unit resolution was not a single identified
    #: root (weak update): hazards report as notes, not errors.
    wb_weak: bool = False
    #: The pending write-back crossed a call boundary (issued by a
    #: callee, or survived an unanalyzable call): only the run-time
    #: guard orders it, so hazards report as notes.
    wb_foreign: bool = False
    #: An async upload (HtoD) was issued on *some* path and no kernel
    #: launch has fenced it: a write-back issued now would read the
    #: device range the upload is still writing.
    h2d_pending: bool = False
    #: The upload is pending on *every* path (join is AND): a race
    #: against it is certain, not path-dependent -- required for an
    #: error-severity report under the precision contract.
    h2d_must: bool = False
    #: Upload unit resolution was weak.
    h2d_weak: bool = False

    @property
    def any_wb(self) -> bool:
        return self.wb_pending or self.wb_foreign

    @property
    def empty(self) -> bool:
        return self == _UNIT_DEFAULT


_UNIT_DEFAULT = AsyncUnitState()


def _join_unit(a: AsyncUnitState, b: AsyncUnitState) -> AsyncUnitState:
    if a == b:
        return a
    return AsyncUnitState(
        wb_pending=a.wb_pending or b.wb_pending,
        wb_weak=a.wb_weak or b.wb_weak,
        wb_foreign=a.wb_foreign or b.wb_foreign,
        h2d_pending=a.h2d_pending or b.h2d_pending,
        h2d_must=a.h2d_must and b.h2d_must,
        h2d_weak=a.h2d_weak or b.h2d_weak,
    )


@dataclass
class HBState:
    """Dataflow state: pending tokens per unit plus path facts."""

    #: Only non-default unit states are stored.
    units: Dict[Root, AsyncUnitState] = field(default_factory=dict)
    #: Some async write-back was issued on *some* path to here (the
    #: download stream's completion event has been recorded at least
    #: once) -- a barrier with this False waits on nothing that was
    #: ever recorded.
    recorded: bool = False
    #: A full write-back barrier executed on *every* path since entry
    #: (must-fact: join is AND); exported as the summary's must_fence.
    fenced: bool = False
    #: An unanalyzable (recursive / summary-less) call happened: sync
    #: liveness warnings are suppressed downstream.
    tainted: bool = False

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HBState)
                and self.units == other.units
                and self.recorded == other.recorded
                and self.fenced == other.fenced
                and self.tainted == other.tainted)


@dataclass
class HBSummary:
    """Externally visible asynchronous effect of one function."""

    #: Module-visible units that may have a pending write-back when the
    #: function returns (argument roots are callee-side; call sites
    #: translate them to actuals).
    pending_exit: Tuple[Root, ...]
    #: Every path through the function executes a write-back barrier.
    must_fence: bool
    #: The function may issue an async write-back.
    recorded: bool
    #: The function may launch a kernel (fences pending uploads).
    any_launch: bool
    #: The summary is incomplete (unanalyzable calls inside).
    tainted: bool


class HappensBeforeProblem(dataflow.DataflowProblem):
    """Forward pending-token dataflow for one function.

    ``modref`` decides what counts as a host *touch* of a pending unit
    -- the exact same oracle the comm-overlap transform uses to place
    its ``cgcmSync`` calls, so transform and checker can never drift.
    ``coverage`` maps pointer-array units to their element units
    (``CheckContext.coverage``); ``summaries`` maps defined functions
    to :class:`HBSummary` records (filled bottom-up by the driver).
    """

    direction = "forward"

    def __init__(self, fn: Function, modref: ModRefAnalysis,
                 coverage: Dict[Root, FrozenSet[Root]],
                 summaries: Dict[Function, object]):
        self.fn = fn
        self.modref = modref
        self.coverage = coverage
        self.summaries = summaries

    # -- lattice -----------------------------------------------------------

    def boundary_state(self, fn: Function) -> HBState:
        return HBState()

    def initial_state(self, fn: Function) -> HBState:
        return HBState()

    def join(self, states: List[HBState]) -> HBState:
        result = HBState(units=dict(states[0].units),
                         recorded=states[0].recorded,
                         fenced=states[0].fenced,
                         tainted=states[0].tainted)
        for other in states[1:]:
            for root in set(result.units) | set(other.units):
                a = result.units.get(root, _UNIT_DEFAULT)
                b = other.units.get(root, _UNIT_DEFAULT)
                joined = _join_unit(a, b)
                if joined.empty:
                    result.units.pop(root, None)
                else:
                    result.units[root] = joined
            result.recorded = result.recorded or other.recorded
            result.fenced = result.fenced and other.fenced
            result.tainted = result.tainted or other.tainted
        return result

    # -- helpers -----------------------------------------------------------

    def _get(self, state: HBState, root: Root) -> AsyncUnitState:
        return state.units.get(root, _UNIT_DEFAULT)

    def _set(self, state: HBState, root: Root,
             unit: AsyncUnitState) -> HBState:
        units = dict(state.units)
        if unit.empty:
            units.pop(root, None)
        else:
            units[root] = unit
        return HBState(units, state.recorded, state.fenced, state.tainted)

    def unit_roots(self, value) -> Tuple[List[Root], bool]:
        """(trackable roots, strong) of a runtime-call unit operand."""
        roots = [r for r in ordered_roots(underlying_objects(value))
                 if _trackable(r)]
        return roots, len(roots) == 1

    def _element_roots(self, call: Call) -> List[Root]:
        out: List[Root] = []
        for unit in ordered_roots(underlying_objects(call.args[0])):
            for element in ordered_roots(self.coverage.get(unit) or ()):
                if _trackable(element) and element not in out:
                    out.append(element)
        return out

    def touched_roots(self, inst: Instruction,
                      state: HBState) -> List[Root]:
        """Pending units ``inst`` may touch, per the mod/ref oracle."""
        touched = []
        for root in ordered_roots(state.units):
            mod, ref = self.modref.instruction_mod_ref(inst, root)
            if mod or ref:
                touched.append(root)
        return touched

    # -- transfer ----------------------------------------------------------

    def transfer_instruction(self, inst: Instruction,
                             state: HBState) -> HBState:
        if isinstance(inst, Call):
            return self._transfer_call(inst, state)
        if isinstance(inst, LaunchKernel):
            return self._fence_uploads(state)
        if isinstance(inst, (Load, Store)):
            return self._transfer_touch(inst, state)
        return state

    def _transfer_touch(self, inst: Instruction, state: HBState) -> HBState:
        """A host access of a pending unit: the hazard (if any) is
        reported against the *first* touch by the report phase; after
        it, the run-time guard has synchronized the unit's write-backs,
        so the pending token is retired to avoid cascading reports."""
        for root in self.touched_roots(inst, state):
            s = self._get(state, root)
            if s.any_wb:
                state = self._set(state, root, replace(
                    s, wb_pending=False, wb_weak=False, wb_foreign=False))
        return state

    def _fence_uploads(self, state: HBState) -> HBState:
        """A kernel launch waits on both copy cursors: every upload
        issued before it happens-before the launch (and everything
        after it)."""
        changed = False
        units = dict(state.units)
        for root, s in state.units.items():
            if s.h2d_pending:
                cleared = replace(s, h2d_pending=False, h2d_must=False,
                                  h2d_weak=False)
                if cleared.empty:
                    units.pop(root)
                else:
                    units[root] = cleared
                changed = True
        if not changed:
            return state
        return HBState(units, state.recorded, state.fenced, state.tainted)

    def _drain_writebacks(self, state: HBState) -> HBState:
        units = {}
        for root, s in state.units.items():
            cleared = replace(s, wb_pending=False, wb_weak=False,
                              wb_foreign=False)
            if not cleared.empty:
                units[root] = cleared
        return HBState(units, state.recorded, True, state.tainted)

    def _transfer_call(self, inst: Call, state: HBState) -> HBState:
        name = inst.callee.name
        op = async_op_kind(name)
        if op == "h2d":
            roots, strong = self.unit_roots(inst.args[0])
            for root in roots:
                s = self._get(state, root)
                state = self._set(state, root, replace(
                    s, h2d_pending=True, h2d_must=True,
                    h2d_weak=s.h2d_weak or not strong))
            if ENTRY_POINTS[name].unit_kind is UnitKind.ARRAY:
                for element in self._element_roots(inst):
                    s = self._get(state, element)
                    state = self._set(state, element, replace(
                        s, h2d_pending=True, h2d_must=True,
                        h2d_weak=True))
            return state
        if op == "d2h":
            roots, strong = self.unit_roots(inst.args[0])
            for root in roots:
                s = self._get(state, root)
                state = self._set(state, root, replace(
                    s, wb_pending=True, wb_weak=s.wb_weak or not strong))
            if ENTRY_POINTS[name].unit_kind is UnitKind.ARRAY:
                for element in self._element_roots(inst):
                    s = self._get(state, element)
                    state = self._set(state, element, replace(
                        s, wb_pending=True, wb_weak=True))
            return HBState(state.units, True, state.fenced, state.tainted)
        if op == "sync":
            return self._drain_writebacks(state)
        if name in ENTRY_POINTS:
            # Synchronous map/unmap/release and the declare entry
            # points have no asynchronous ordering effect (their copies
            # block the host; release's deferred free is FIFO-ordered
            # behind the unit's own write-back on the download stream).
            return state
        if inst.callee.is_declaration:
            return self._transfer_touch(inst, state)
        return self._transfer_defined(inst, state)

    def _weaken_uploads(self, state: HBState) -> HBState:
        """A call that *may* launch a kernel: it may or may not fence a
        pending upload, so the race fact survives but is no longer a
        proof (note severity downstream)."""
        units = {}
        for root, s in state.units.items():
            if s.h2d_pending:
                s = replace(s, h2d_weak=True)
            units[root] = s
        return HBState(units, state.recorded, state.fenced, state.tainted)

    def _transfer_defined(self, inst: Call, state: HBState) -> HBState:
        # The callee touching a pending unit resolves it (its own
        # inserted syncs or the run-time guard); hazards are reported
        # at the call site by the report phase.
        state = self._transfer_touch(inst, state)
        summary = self.summaries.get(inst.callee)
        if not isinstance(summary, HBSummary):
            # Recursive / unknown callee: it may issue, fence, launch,
            # or touch anything.  Pending tokens survive but only as
            # weak/foreign (note-severity) facts, and sync-liveness
            # warnings are suppressed downstream.
            units = {}
            for root, s in state.units.items():
                if s.wb_pending:
                    s = replace(s, wb_foreign=True)
                if s.h2d_pending:
                    s = replace(s, h2d_weak=True)
                units[root] = s
            return HBState(units, True, state.fenced, True)
        if summary.any_launch:
            # May-launch, not must-launch: weaken rather than clear.
            state = self._weaken_uploads(state)
        if summary.must_fence:
            state = self._drain_writebacks(state)
        recorded = state.recorded or summary.recorded
        tainted = state.tainted or summary.tainted
        state = HBState(dict(state.units), recorded, state.fenced, tainted)
        for root in summary.pending_exit:
            for target in self._translate_root(inst, root):
                s = self._get(state, target)
                state = self._set(state, target, replace(
                    s, wb_pending=True, wb_foreign=True))
        return state

    def _translate_root(self, call: Call, root: Root) -> List[Root]:
        """Callee-side summary root -> caller-side roots."""
        if isinstance(root, Argument):
            if root.index >= len(call.args):
                return []
            actual = call.args[root.index]
            return [r for r in ordered_roots(underlying_objects(actual))
                    if _trackable(r)]
        return [root]


# ---------------------------------------------------------------------------
# Explicit must-happens-before graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HBNode:
    """One end of an operation: its host issue or its completion."""

    inst: Instruction
    phase: str  #: "issue" (host program point) or "done" (completion)

    def __repr__(self) -> str:
        return f"<{self.phase}:{self.inst!r}>"


class HBGraph:
    """A must-happens-before relation over one function's stream ops.

    Nodes are (instruction, phase) pairs; ``ordered(a, b)`` is True
    only when a proof of ordering exists from host program order
    (approximated by dominance), per-stream FIFO, event edges, and
    barriers.  Sound, not complete.
    """

    def __init__(self, fn: Function):
        self.fn = fn
        self.nodes: List[HBNode] = []
        self._succs: Dict[HBNode, List[HBNode]] = {}
        self._doms = DominatorTree(fn)

    def add_node(self, node: HBNode) -> None:
        self.nodes.append(node)
        self._succs.setdefault(node, [])

    def add_edge(self, a: HBNode, b: HBNode) -> None:
        self._succs.setdefault(a, [])
        if b not in self._succs[a]:
            self._succs[a].append(b)

    def successors(self, node: HBNode) -> List[HBNode]:
        return list(self._succs.get(node, ()))

    def issue_before(self, a: Instruction, b: Instruction) -> bool:
        """Host program order, dominance-approximated: ``a`` issues
        before ``b`` on every path that reaches ``b``."""
        if a.parent is None or b.parent is None:
            return False
        if a.parent is b.parent:
            return a.parent.index(a) < b.parent.index(b)
        return self._doms.dominates(a.parent, b.parent)

    def ordered(self, a: HBNode, b: HBNode) -> bool:
        """Is ``a`` proven to happen before ``b``?"""
        seen = {a}
        work = [a]
        while work:
            node = work.pop()
            if node == b:
                return True
            # Issue nodes inherit host program order implicitly.
            if node.phase == "issue" and b.phase == "issue" \
                    and self.issue_before(node.inst, b.inst):
                return True
            for succ in self._succs.get(node, ()):  # explicit edges
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
            if node.phase == "issue":
                for other in self.nodes:
                    if other.phase == "issue" and other not in seen \
                            and self.issue_before(node.inst, other.inst):
                        seen.add(other)
                        work.append(other)
        return False


def build_hb_graph(fn: Function) -> HBGraph:
    """Construct the must-happens-before graph of one function.

    Stream operations get an issue and a done node; launches likewise
    (issue = host enqueue, done = kernel completion); ``cgcmSync`` and
    host memory accesses are single host nodes (their issue *is* their
    completion -- the host blocks).
    """
    graph = HBGraph(fn)
    ops: List[Tuple[Call, str]] = []        # async stream calls
    launches: List[LaunchKernel] = []
    syncs: List[Call] = []

    for inst in fn.instructions():
        if isinstance(inst, Call):
            kind = async_op_kind(inst.callee.name)
            if kind in ("h2d", "d2h"):
                issue, done = HBNode(inst, "issue"), HBNode(inst, "done")
                graph.add_node(issue)
                graph.add_node(done)
                graph.add_edge(issue, done)
                ops.append((inst, kind))
            elif kind == "sync":
                graph.add_node(HBNode(inst, "issue"))
                syncs.append(inst)
        elif isinstance(inst, LaunchKernel):
            issue, done = HBNode(inst, "issue"), HBNode(inst, "done")
            graph.add_node(issue)
            graph.add_node(done)
            graph.add_edge(issue, done)
            launches.append(inst)
        elif isinstance(inst, (Load, Store)):
            graph.add_node(HBNode(inst, "issue"))

    def done(inst: Instruction) -> HBNode:
        return HBNode(inst, "done")

    # Per-stream FIFO: completions follow issue order within a stream.
    for (a, kind_a) in ops:
        for (b, kind_b) in ops:
            if kind_a == kind_b and graph.issue_before(a, b):
                graph.add_edge(done(a), done(b))
    for a in launches:
        for b in launches:
            if graph.issue_before(a, b):
                graph.add_edge(done(a), done(b))

    # Launches wait on both copy cursors; write-backs wait on the
    # compute event recorded at issue; uploads wait on a pending
    # write-back of their own unit (the run-time's _writeback_deps).
    for (op, kind) in ops:
        for launch in launches:
            if graph.issue_before(op, launch):
                graph.add_edge(done(op), done(launch))
        if kind == "d2h":
            for launch in launches:
                if graph.issue_before(launch, op):
                    graph.add_edge(done(launch), done(op))
            op_roots = frozenset(underlying_objects(op.args[0]))
            for (other, other_kind) in ops:
                if other_kind == "h2d" and graph.issue_before(op, other):
                    other_roots = frozenset(
                        underlying_objects(other.args[0]))
                    if op_roots & other_roots:
                        graph.add_edge(done(op), done(other))

    # Barriers: cgcmSync happens-after every write-back issued before
    # it (the host blocks until the download stream drains).
    for sync in syncs:
        for (op, kind) in ops:
            if kind == "d2h" and graph.issue_before(op, sync):
                graph.add_edge(done(op), HBNode(sync, "issue"))
    return graph
