"""Instruction set of the repro IR.

The IR is a register machine over typed virtual registers.  Each
instruction that produces a value *is* that value (it subclasses
:class:`Value`), as in LLVM.  Control flow uses explicit basic blocks
with a single terminator at the end of each block.

There is no phi instruction: the MiniC frontend emits allocas for
mutable locals (clang ``-O0`` style), which is also the representation
CGCM's analyses expect -- the interesting objects are allocation units
in memory, not SSA values.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

from ..errors import IRError
from .types import (ArrayType, FloatType, IntType, PointerType, StructType,
                    Type, VOID, I1, I64, pointer_to)
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from .block import BasicBlock
    from .function import Function

#: Integer-only binary opcodes.
INT_ONLY_BINOPS = frozenset({"and", "or", "xor", "shl", "shr"})
#: All binary opcodes; arithmetic ones work on both ints and floats.
BINARY_OPS = frozenset({"add", "sub", "mul", "div", "rem"}) | INT_ONLY_BINOPS
#: Comparison predicates (signed for integers).
COMPARE_PREDICATES = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
#: Cast kinds.
CAST_KINDS = frozenset({
    "bitcast", "trunc", "zext", "sext", "fptrunc", "fpext",
    "sitofp", "fptosi", "ptrtoint", "inttoptr",
})


class Instruction(Value):
    """Base class: a typed value computed from ``operands``."""

    opcode = "?"

    def __init__(self, type_: Type, operands: Sequence[Value],
                 name: str = ""):
        super().__init__(type_, name)
        self.operands: List[Value] = list(operands)
        self.parent: Optional["BasicBlock"] = None

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def produces_value(self) -> bool:
        return not self.type.is_void

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in operands; returns count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def erase(self) -> None:
        """Unlink this instruction from its parent block."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None


class Alloca(Instruction):
    """Reserve ``count`` x ``allocated_type`` bytes in the stack frame.

    The result is the address of the first element.  Each dynamic
    execution of an alloca in the entry block reuses the same slot; the
    interpreter allocates frame slots at function entry.
    """

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: Value, name: str = ""):
        super().__init__(pointer_to(allocated_type), [count], name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Value:
        return self.operands[0]


class Load(Instruction):
    """Read a scalar of the pointee type from memory."""

    opcode = "load"

    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"load from non-pointer {ptr.type}")
        super().__init__(ptr.type.pointee, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Write a scalar value to memory."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"store to non-pointer {ptr.type}")
        super().__init__(VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


def gep_result_type(ptr_type: Type, indices: Sequence[Value]) -> PointerType:
    """Compute the result type of a GEP, LLVM-style.

    The first index steps over whole pointees; each later index drills
    into an array element or (with a constant index) a struct field.
    """
    if not isinstance(ptr_type, PointerType):
        raise IRError(f"gep base must be a pointer, got {ptr_type}")
    if not indices:
        raise IRError("gep requires at least one index")
    current: Type = ptr_type.pointee
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, Constant):
                raise IRError("struct gep index must be constant")
            fields = current.fields
            if not 0 <= index.value < len(fields):
                raise IRError(f"struct index {index.value} out of range")
            current = fields[index.value][1]
        else:
            raise IRError(f"cannot index into {current}")
    return pointer_to(current)


class GetElementPtr(Instruction):
    """Pointer arithmetic: compute the address of a sub-element."""

    opcode = "gep"

    def __init__(self, ptr: Value, indices: Sequence[Value], name: str = ""):
        result = gep_result_type(ptr.type, list(indices))
        super().__init__(result, [ptr, *indices], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic; operand types must match."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op {op!r}")
        if lhs.type != rhs.type:
            raise IRError(f"binop operand mismatch: {lhs.type} vs {rhs.type}")
        if op in INT_ONLY_BINOPS and not isinstance(lhs.type, IntType):
            raise IRError(f"{op} requires integer operands, got {lhs.type}")
        if not (lhs.type.is_integer or lhs.type.is_float):
            raise IRError(f"binop on non-arithmetic type {lhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    opcode = "binop"

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Compare(Instruction):
    """Relational comparison producing an ``i1``."""

    opcode = "cmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in COMPARE_PREDICATES:
            raise IRError(f"unknown compare predicate {pred!r}")
        if lhs.type != rhs.type:
            raise IRError(f"cmp operand mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(I1, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cast(Instruction):
    """Convert a value between types (width, signedness, ptr/int)."""

    opcode = "cast"

    def __init__(self, kind: str, value: Value, to_type: Type,
                 name: str = ""):
        if kind not in CAST_KINDS:
            raise IRError(f"unknown cast kind {kind!r}")
        _check_cast(kind, value.type, to_type)
        super().__init__(to_type, [value], name)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]


def _check_cast(kind: str, from_type: Type, to_type: Type) -> None:
    int_to_int = isinstance(from_type, IntType) and isinstance(to_type, IntType)
    fp_to_fp = isinstance(from_type, FloatType) and isinstance(to_type, FloatType)
    rules = {
        "trunc": int_to_int and from_type.size >= to_type.size,
        "zext": int_to_int and from_type.size <= to_type.size,
        "sext": int_to_int and from_type.size <= to_type.size,
        "fptrunc": fp_to_fp and from_type.size >= to_type.size,
        "fpext": fp_to_fp and from_type.size <= to_type.size,
        "sitofp": isinstance(from_type, IntType) and isinstance(to_type, FloatType),
        "fptosi": isinstance(from_type, FloatType) and isinstance(to_type, IntType),
        "ptrtoint": from_type.is_pointer and isinstance(to_type, IntType),
        "inttoptr": isinstance(from_type, IntType) and to_type.is_pointer,
        "bitcast": (from_type.is_pointer and to_type.is_pointer)
        or from_type == to_type,
    }
    if not rules[kind]:
        raise IRError(f"invalid {kind}: {from_type} -> {to_type}")


class Select(Instruction):
    """``cond ? if_true : if_false`` without control flow."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value,
                 name: str = ""):
        if cond.type != I1:
            raise IRError("select condition must be i1")
        if if_true.type != if_false.type:
            raise IRError("select arms must have the same type")
        super().__init__(if_true.type, [cond, if_true, if_false], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> Value:
        return self.operands[1]

    @property
    def if_false(self) -> Value:
        return self.operands[2]


class Call(Instruction):
    """Direct call to a module function or declared external."""

    opcode = "call"

    def __init__(self, callee: "Function", args: Sequence[Value],
                 name: str = ""):
        ftype = callee.type
        super().__init__(ftype.return_type, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands


class LaunchKernel(Instruction):
    """Spawn a 1-D grid of ``grid`` GPU threads running ``kernel``.

    The kernel's first formal parameter receives the thread id
    (0..grid-1); ``args`` bind the remaining parameters.  This models
    the CUDA ``kernel<<<...>>>(args)`` spawn in the paper's listings.
    """

    opcode = "launch"

    def __init__(self, kernel: "Function", grid: Value,
                 args: Sequence[Value]):
        if grid.type != I64:
            raise IRError("launch grid size must be i64")
        super().__init__(VOID, [grid, *args])
        self.kernel = kernel

    @property
    def grid(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]


class Terminator(Instruction):
    """Base for instructions that end a basic block."""

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> List["BasicBlock"]:
        return []


class Branch(Terminator):
    """Unconditional jump."""

    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new


class CondBranch(Terminator):
    """Two-way conditional jump on an ``i1``."""

    opcode = "cbr"

    def __init__(self, cond: Value, if_true: "BasicBlock",
                 if_false: "BasicBlock"):
        if cond.type != I1:
            raise IRError("cbr condition must be i1")
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.if_true is old:
            self.if_true = new
        if self.if_false is old:
            self.if_false = new


class Return(Terminator):
    """Return from the current function, optionally with a value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Unreachable(Terminator):
    """Marks control flow that must never be reached."""

    opcode = "unreachable"

    def __init__(self):
        super().__init__(VOID, [])
