"""Value hierarchy for the repro IR.

Everything an instruction can use as an operand is a :class:`Value`:
constants, global variables, function arguments, functions themselves,
and the results of other instructions.  Instructions live in
``instructions.py`` and are themselves values.
"""

from __future__ import annotations

from typing import Optional, Union

from .types import (FloatType, FunctionType, IntType, PointerType, Type,
                    pointer_to)


class Value:
    """Anything that can appear as an instruction operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    @property
    def ref(self) -> str:
        """How this value is spelled when used as an operand."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref}: {self.type}>"


class Constant(Value):
    """A compile-time constant scalar (int, float, or null pointer)."""

    def __init__(self, type_: Type, value: Union[int, float]):
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, FloatType):
            value = float(value)
        elif isinstance(type_, PointerType):
            value = int(value)
        else:
            raise ValueError(f"cannot make a constant of type {type_}")
        self.value = value

    @property
    def ref(self) -> str:
        if isinstance(self.type, PointerType):
            return "null" if self.value == 0 else str(self.value)
        if isinstance(self.type, FloatType):
            return repr(self.value)
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Constant) and self.type == other.type
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class UndefValue(Value):
    """An unspecified value of a given type (used by outlining spills)."""

    @property
    def ref(self) -> str:
        return "undef"


class GlobalRef:
    """Initializer element that resolves to another global's address.

    Used for pointer-typed initializers like ``char *xs[] = {s0, s1}``;
    the memory layout code patches in the referenced global's base
    address when the module image is built.
    """

    def __init__(self, name: str, offset: int = 0):
        self.name = name
        self.offset = offset

    def __repr__(self) -> str:
        if self.offset:
            return f"@{self.name}+{self.offset}"
        return f"@{self.name}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, GlobalRef) and self.name == other.name
                and self.offset == other.offset)

    def __hash__(self) -> int:
        return hash((self.name, self.offset))


#: Things accepted as a global initializer: ``None`` (zero-fill), a raw
#: byte string, a scalar, a GlobalRef, a str (NUL-terminated C string),
#: or a (possibly nested) list of initializers for arrays/structs.
Initializer = Union[None, bytes, int, float, str, GlobalRef, list]


class GlobalVariable(Value):
    """A module-level variable.

    Its :class:`Value` type is a *pointer* to ``value_type``, matching
    LLVM: using ``@g`` as an operand yields the global's address.
    """

    def __init__(self, name: str, value_type: Type,
                 initializer: Initializer = None,
                 is_read_only: bool = False):
        super().__init__(pointer_to(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_read_only = is_read_only

    @property
    def ref(self) -> str:
        return f"@{self.name}"

    @property
    def size(self) -> int:
        return self.value_type.size


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int,
                 function: Optional["object"] = None):
        super().__init__(type_, name)
        self.index = index
        self.function = function


class FunctionValue(Value):
    """Mixin base giving functions a ``@name`` operand spelling."""

    def __init__(self, ftype: FunctionType, name: str):
        super().__init__(ftype, name)

    @property
    def ref(self) -> str:
        return f"@{self.name}"
