"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

Exists mainly for the test-suite (IR fixtures as strings) and to
guarantee the printed form is a faithful serialization: ``parse`` and
``module_to_str`` round-trip.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import IRParseError
from .block import BasicBlock
from .function import Function
from .instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                           CondBranch, GetElementPtr, LaunchKernel, Load,
                           Return, Select, Store, Unreachable, BINARY_OPS)
from .module import Module
from .types import (ArrayType, FloatType, FunctionType, IntType, PointerType,
                    StructType, Type, VOID)
from .values import Constant, GlobalRef, UndefValue, Value

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<number>-?\d+\.\d+(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+|-?\d+)
  | (?P<arrow>->)
  | (?P<ellipsis>\.\.\.)
  | (?P<global>@[.A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<local>%[.A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<punct>[:,=(){}\[\]<>+])
""", re.VERBOSE)

_KEYWORD_OPCODES = {
    "store", "br", "cbr", "ret", "launch", "call", "unreachable",
}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r}>"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise IRParseError(f"bad character {source[pos]!r}", line)
        pos = match.end()
        kind = match.lastgroup or ""
        text = match.group()
        line += text.count("\n")
        if kind == "ws":
            continue
        tokens.append(_Token(kind, text, line))
    tokens.append(_Token("eof", "", line))
    return tokens


def _unquote(text: str) -> bytes:
    body = text[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        char = body[i]
        if char == "\\":
            nxt = body[i + 1]
            if nxt in ('"', "\\"):
                out.append(ord(nxt))
                i += 2
            else:
                out.append(int(body[i + 1:i + 3], 16))
                i += 3
        else:
            out.append(ord(char))
            i += 1
    return bytes(out)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.pos = 0
        self.module = Module()

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.pos]

    def _advance(self) -> _Token:
        token = self.current
        self.pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise IRParseError(
                f"expected {want!r}, found {token.text!r}", token.line)
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _error(self, message: str) -> IRParseError:
        return IRParseError(message, self.current.line)

    # -- types -----------------------------------------------------------

    def parse_type(self) -> Type:
        token = self.current
        if token.kind == "ident":
            simple = {
                "void": VOID, "i1": IntType(1), "i8": IntType(8),
                "i16": IntType(16), "i32": IntType(32), "i64": IntType(64),
                "f32": FloatType(32), "f64": FloatType(64),
            }
            if token.text in simple:
                self._advance()
                return simple[token.text]
            if token.text == "ptr":
                self._advance()
                self._expect("punct", "<")
                pointee = self.parse_type()
                self._expect("punct", ">")
                return PointerType(pointee)
            raise self._error(f"unknown type {token.text!r}")
        if token.kind == "punct" and token.text == "[":
            self._advance()
            count = int(self._expect("number").text)
            self._expect("ident", "x")
            element = self.parse_type()
            self._expect("punct", "]")
            return ArrayType(element, count)
        if token.kind == "local":
            name = self._advance().text[1:]
            struct = self.module.structs.get(name)
            if struct is None:
                raise self._error(f"unknown struct %{name}")
            return struct
        raise self._error(f"expected a type, found {token.text!r}")

    # -- module items ----------------------------------------------------

    def parse_module(self) -> Module:
        if self._accept("ident", "module"):
            self.module.name = _unquote(self._expect("string").text).decode()
        pending: List[Tuple[Function, List[_Token]]] = []
        while self.current.kind != "eof":
            keyword = self._expect("ident")
            if keyword.text == "struct":
                self._parse_struct()
            elif keyword.text == "global":
                self._parse_global()
            elif keyword.text == "declare":
                self._parse_declare()
            elif keyword.text in ("func", "kernel"):
                pending.append(
                    self._parse_function(is_kernel=keyword.text == "kernel"))
            else:
                raise self._error(f"unexpected {keyword.text!r} at top level")
        # Bodies parse only after every signature is registered, so a
        # launch may reference a kernel defined later in the file (the
        # printer emits functions in insertion order, and glue kernels
        # are created after the function that launches them).
        for fn, body_tokens in pending:
            sub = Parser("")
            sub.module = self.module
            sub.tokens = body_tokens + [_Token("punct", "}", 0),
                                        _Token("eof", "", 0)]
            sub.pos = 0
            sub._parse_body(fn)
        return self.module

    def _parse_struct(self) -> None:
        name = self._expect("local").text[1:]
        self._expect("punct", "{")
        fields: List[Tuple[str, Type]] = []
        if not self._accept("punct", "}"):
            while True:
                field_type = self.parse_type()
                field_name = self._expect("ident").text
                fields.append((field_name, field_type))
                if not self._accept("punct", ","):
                    break
            self._expect("punct", "}")
        self.module.add_struct(StructType(name, fields))

    def _parse_global(self) -> None:
        name = self._expect("global").text[1:]
        self._expect("punct", ":")
        value_type = self.parse_type()
        self._expect("punct", "=")
        init = self._parse_initializer()
        read_only = bool(self._accept("ident", "readonly"))
        self.module.add_global(name, value_type, init, read_only)

    def _parse_initializer(self):
        token = self.current
        if token.kind == "ident" and token.text == "zero":
            self._advance()
            return None
        if token.kind == "ident" and token.text in ("c", "s"):
            self._advance()
            data = _unquote(self._expect("string").text)
            return data if token.text == "c" else data.decode("utf-8")
        if token.kind == "number":
            text = self._advance().text
            return float(text) if any(c in text for c in ".eE") else int(text)
        if token.kind == "global":
            ref_name = self._advance().text[1:]
            offset = 0
            if self._accept("punct", "+"):
                offset = int(self._expect("number").text)
            return GlobalRef(ref_name, offset)
        if token.kind == "punct" and token.text == "{":
            self._advance()
            items = []
            if not self._accept("punct", "}"):
                while True:
                    items.append(self._parse_initializer())
                    if not self._accept("punct", ","):
                        break
                self._expect("punct", "}")
            return items
        raise self._error(f"bad initializer near {token.text!r}")

    def _parse_declare(self) -> None:
        name = self._expect("global").text[1:]
        self._expect("punct", ":")
        return_type = self.parse_type()
        self._expect("punct", "(")
        params: List[Type] = []
        variadic = False
        if not self._accept("punct", ")"):
            while True:
                if self._accept("ellipsis"):
                    variadic = True
                    break
                params.append(self.parse_type())
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ")")
        self.module.declare_function(
            name, FunctionType(return_type, params, variadic))

    # -- functions -------------------------------------------------------

    def _parse_function(self,
                        is_kernel: bool) -> Tuple[Function, List[_Token]]:
        name = self._expect("global").text[1:]
        self._expect("punct", "(")
        param_names: List[str] = []
        param_types: List[Type] = []
        if not self._accept("punct", ")"):
            while True:
                param_names.append(self._expect("local").text[1:])
                self._expect("punct", ":")
                param_types.append(self.parse_type())
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ")")
        self._expect("arrow")
        return_type = self.parse_type()
        ftype = FunctionType(return_type, param_types)
        fn = self.module.functions.get(name)
        if fn is None:
            fn = self.module.add_function(name, ftype, param_names, is_kernel)
        self._expect("punct", "{")
        depth = 0
        body_tokens: List[_Token] = []
        while True:
            token = self.current
            if token.kind == "eof":
                raise self._error("unterminated function body")
            if token.kind == "punct" and token.text == "{":
                depth += 1
            elif token.kind == "punct" and token.text == "}":
                if depth == 0:
                    break
                depth -= 1
            body_tokens.append(self._advance())
        self._expect("punct", "}")
        return fn, body_tokens

    def _parse_body(self, fn: Function) -> None:
        registers: Dict[str, Value] = {f"%{a.name}": a for a in fn.args}
        blocks: Dict[str, BasicBlock] = {}
        pending: List[Tuple[BasicBlock, List[_Token]]] = []

        # First pass: split the body into labelled blocks of tokens.
        while not (self.current.kind == "punct" and self.current.text == "}"):
            label = self._expect("ident").text
            self._expect("punct", ":")
            if label in blocks:
                raise self._error(f"duplicate block label {label}")
            block = BasicBlock(label, fn)
            blocks[label] = block
            fn.blocks.append(block)
            body_tokens: List[_Token] = []
            while not self._at_block_boundary():
                body_tokens.append(self._advance())
            pending.append((block, body_tokens))

        # Second pass: parse instructions with all labels resolved.
        for block, body_tokens in pending:
            sub = Parser("")
            sub.module = self.module
            sub.tokens = body_tokens + [_Token("eof", "", 0)]
            sub.pos = 0
            sub._parse_instructions(fn, block, registers, blocks)

    def _at_block_boundary(self) -> bool:
        token = self.current
        if token.kind == "eof":
            return True
        if token.kind == "punct" and token.text == "}":
            return True
        if (token.kind == "ident" and token.text not in _KEYWORD_OPCODES
                and self.tokens[self.pos + 1].kind == "punct"
                and self.tokens[self.pos + 1].text == ":"):
            return True
        return False

    def _parse_instructions(self, fn: Function, block: BasicBlock,
                            registers: Dict[str, Value],
                            blocks: Dict[str, BasicBlock]) -> None:
        while self.current.kind != "eof":
            inst_name = ""
            if self.current.kind == "local":
                inst_name = self._advance().text[1:]
                self._expect("punct", "=")
            opcode = self._expect("ident").text
            inst = self._parse_one(fn, opcode, inst_name, registers, blocks)
            inst.name = inst_name
            block.append(inst)
            if inst.produces_value:
                registers[f"%{inst_name}"] = inst

    def _parse_operand(self, registers: Dict[str, Value]) -> Value:
        operand_type = self.parse_type()
        token = self._advance()
        if token.kind == "local":
            value = registers.get(token.text)
            if value is None:
                raise IRParseError(f"use of undefined register {token.text}",
                                   token.line)
            return value
        if token.kind == "global":
            return self.module.get_global(token.text[1:])
        if token.kind == "number":
            text = token.text
            num = float(text) if any(c in text for c in ".eE") else int(text)
            return Constant(operand_type, num)
        if token.kind == "ident" and token.text == "null":
            return Constant(operand_type, 0)
        if token.kind == "ident" and token.text == "undef":
            return UndefValue(operand_type)
        raise IRParseError(f"bad operand {token.text!r}", token.line)

    def _parse_label(self, blocks: Dict[str, BasicBlock]) -> BasicBlock:
        self._expect("ident", "label")
        token = self._expect("local")
        target = blocks.get(token.text[1:])
        if target is None:
            raise IRParseError(f"unknown block {token.text}", token.line)
        return target

    def _parse_one(self, fn: Function, opcode: str, name: str,
                   registers: Dict[str, Value],
                   blocks: Dict[str, BasicBlock]):
        if opcode == "alloca":
            allocated = self.parse_type()
            self._expect("punct", ",")
            count = self._parse_operand(registers)
            return Alloca(allocated, count, name)
        if opcode == "load":
            return Load(self._parse_operand(registers), name)
        if opcode == "store":
            value = self._parse_operand(registers)
            self._expect("punct", ",")
            ptr = self._parse_operand(registers)
            return Store(value, ptr)
        if opcode == "gep":
            ptr = self._parse_operand(registers)
            indices = []
            while self._accept("punct", ","):
                indices.append(self._parse_operand(registers))
            return GetElementPtr(ptr, indices, name)
        if opcode in BINARY_OPS:
            lhs = self._parse_operand(registers)
            self._expect("punct", ",")
            rhs = self._parse_operand(registers)
            return BinaryOp(opcode, lhs, rhs, name)
        if opcode == "cmp":
            pred = self._expect("ident").text
            lhs = self._parse_operand(registers)
            self._expect("punct", ",")
            rhs = self._parse_operand(registers)
            return Compare(pred, lhs, rhs, name)
        if opcode == "cast":
            kind = self._expect("ident").text
            value = self._parse_operand(registers)
            self._expect("ident", "to")
            to_type = self.parse_type()
            return Cast(kind, value, to_type, name)
        if opcode == "select":
            cond = self._parse_operand(registers)
            self._expect("punct", ",")
            if_true = self._parse_operand(registers)
            self._expect("punct", ",")
            if_false = self._parse_operand(registers)
            return Select(cond, if_true, if_false, name)
        if opcode == "call":
            callee = self.module.get_function(self._expect("global").text[1:])
            self._expect("punct", "(")
            args = []
            if not self._accept("punct", ")"):
                while True:
                    args.append(self._parse_operand(registers))
                    if not self._accept("punct", ","):
                        break
                self._expect("punct", ")")
            return Call(callee, args, name)
        if opcode == "launch":
            kernel = self.module.get_function(self._expect("global").text[1:])
            self._expect("punct", "[")
            grid = self._parse_operand(registers)
            self._expect("punct", "]")
            self._expect("punct", "(")
            args = []
            if not self._accept("punct", ")"):
                while True:
                    args.append(self._parse_operand(registers))
                    if not self._accept("punct", ","):
                        break
                self._expect("punct", ")")
            return LaunchKernel(kernel, grid, args)
        if opcode == "br":
            return Branch(self._parse_label(blocks))
        if opcode == "cbr":
            cond = self._parse_operand(registers)
            self._expect("punct", ",")
            if_true = self._parse_label(blocks)
            self._expect("punct", ",")
            if_false = self._parse_label(blocks)
            return CondBranch(cond, if_true, if_false)
        if opcode == "ret":
            if self._accept("ident", "void"):
                return Return()
            return Return(self._parse_operand(registers))
        if opcode == "unreachable":
            return Unreachable()
        raise self._error(f"unknown opcode {opcode!r}")


def parse_module(source: str) -> Module:
    """Parse textual IR into a :class:`Module`."""
    return Parser(source).parse_module()
