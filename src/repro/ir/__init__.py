"""The repro compiler IR: types, values, instructions, and tooling.

A small LLVM-flavoured register IR.  Programs are :class:`Module`
objects holding globals and functions; functions hold basic blocks of
typed instructions.  Build IR with :class:`IRBuilder`, print it with
:func:`module_to_str`, parse the printed form with
:func:`parse_module`, and check invariants with :func:`verify_module`.
"""

from .types import (ArrayType, FloatType, FunctionType, IntType, PointerType,
                    StructType, Type, VoidType, VOID, I1, I8, I16, I32, I64,
                    F32, F64, RAW_PTR, POINTER_SIZE, pointer_to)
from .values import (Argument, Constant, GlobalRef, GlobalVariable,
                     Initializer, UndefValue, Value)
from .instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                           CondBranch, GetElementPtr, Instruction,
                           LaunchKernel, Load, Return, Select, Store,
                           Terminator, Unreachable, BINARY_OPS, CAST_KINDS,
                           COMPARE_PREDICATES)
from .block import BasicBlock
from .function import Function
from .module import Module
from .builder import IRBuilder
from .printer import (block_to_str, function_to_str, instruction_to_str,
                      module_to_str)
from .parser import parse_module
from .verifier import verify_function, verify_module

__all__ = [
    "ArrayType", "FloatType", "FunctionType", "IntType", "PointerType",
    "StructType", "Type", "VoidType", "VOID", "I1", "I8", "I16", "I32",
    "I64", "F32", "F64", "RAW_PTR", "POINTER_SIZE", "pointer_to",
    "Argument", "Constant", "GlobalRef", "GlobalVariable", "Initializer",
    "UndefValue", "Value",
    "Alloca", "BinaryOp", "Branch", "Call", "Cast", "Compare", "CondBranch",
    "GetElementPtr", "Instruction", "LaunchKernel", "Load", "Return",
    "Select", "Store", "Terminator", "Unreachable", "BINARY_OPS",
    "CAST_KINDS", "COMPARE_PREDICATES",
    "BasicBlock", "Function", "Module", "IRBuilder",
    "block_to_str", "function_to_str", "instruction_to_str", "module_to_str",
    "parse_module", "verify_function", "verify_module",
]
