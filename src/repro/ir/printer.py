"""Textual form of the repro IR.

The printed form round-trips through :mod:`repro.ir.parser`, which the
test-suite uses both to check the printer and to write IR fixtures
compactly.  The syntax is LLVM-flavoured::

    global @A : [8 x f64] = zero
    declare @sqrt : f64 (f64)
    kernel @k(%tid: i64, %A: ptr<f64>) -> void { ... }
    func @main() -> i32 {
    entry:
      %i = add i64 %a, i64 1
      cbr i1 %c, label %body, label %exit
    }
"""

from __future__ import annotations

from typing import List, Union

from .block import BasicBlock
from .function import Function
from .instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                           CondBranch, GetElementPtr, Instruction,
                           LaunchKernel, Load, Return, Select, Store,
                           Unreachable)
from .module import Module
from .values import (Constant, GlobalRef, GlobalVariable, Initializer,
                     UndefValue, Value)


def operand_to_str(value: Value) -> str:
    """Print an operand with its type, e.g. ``i64 %i`` or ``f64 2.5``."""
    return f"{value.type} {value.ref}"


def initializer_to_str(init: Initializer) -> str:
    if init is None:
        return "zero"
    if isinstance(init, bytes):
        return "c" + _quote_bytes(init)
    if isinstance(init, str):
        return "s" + _quote_bytes(init.encode("utf-8"))
    if isinstance(init, GlobalRef):
        if init.offset:
            return f"@{init.name}+{init.offset}"
        return f"@{init.name}"
    if isinstance(init, (int, float)):
        return repr(init)
    if isinstance(init, list):
        return "{ " + ", ".join(initializer_to_str(e) for e in init) + " }"
    raise TypeError(f"unprintable initializer: {init!r}")


def _quote_bytes(data: bytes) -> str:
    out = ['"']
    for byte in data:
        char = chr(byte)
        if char == '"':
            out.append('\\"')
        elif char == "\\":
            out.append("\\\\")
        elif 32 <= byte < 127:
            out.append(char)
        else:
            out.append(f"\\{byte:02x}")
    out.append('"')
    return "".join(out)


def instruction_to_str(inst: Instruction) -> str:
    """Render one instruction (without indentation)."""
    if isinstance(inst, Alloca):
        return (f"{inst.ref} = alloca {inst.allocated_type}, "
                f"{operand_to_str(inst.count)}")
    if isinstance(inst, Load):
        return f"{inst.ref} = load {operand_to_str(inst.pointer)}"
    if isinstance(inst, Store):
        return (f"store {operand_to_str(inst.value)}, "
                f"{operand_to_str(inst.pointer)}")
    if isinstance(inst, GetElementPtr):
        indices = ", ".join(operand_to_str(i) for i in inst.indices)
        return f"{inst.ref} = gep {operand_to_str(inst.pointer)}, {indices}"
    if isinstance(inst, BinaryOp):
        return (f"{inst.ref} = {inst.op} {operand_to_str(inst.lhs)}, "
                f"{operand_to_str(inst.rhs)}")
    if isinstance(inst, Compare):
        return (f"{inst.ref} = cmp {inst.pred} {operand_to_str(inst.lhs)}, "
                f"{operand_to_str(inst.rhs)}")
    if isinstance(inst, Cast):
        return (f"{inst.ref} = cast {inst.kind} "
                f"{operand_to_str(inst.value)} to {inst.type}")
    if isinstance(inst, Select):
        return (f"{inst.ref} = select {operand_to_str(inst.condition)}, "
                f"{operand_to_str(inst.if_true)}, "
                f"{operand_to_str(inst.if_false)}")
    if isinstance(inst, Call):
        args = ", ".join(operand_to_str(a) for a in inst.args)
        prefix = f"{inst.ref} = " if inst.produces_value else ""
        return f"{prefix}call @{inst.callee.name}({args})"
    if isinstance(inst, LaunchKernel):
        args = ", ".join(operand_to_str(a) for a in inst.args)
        return (f"launch @{inst.kernel.name}"
                f"[{operand_to_str(inst.grid)}]({args})")
    if isinstance(inst, Branch):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBranch):
        return (f"cbr {operand_to_str(inst.condition)}, "
                f"label %{inst.if_true.name}, label %{inst.if_false.name}")
    if isinstance(inst, Return):
        if inst.value is None:
            return "ret void"
        return f"ret {operand_to_str(inst.value)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    raise TypeError(f"unprintable instruction: {inst!r}")


def block_to_str(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {instruction_to_str(i)}" for i in block.instructions)
    return "\n".join(lines)


def function_to_str(fn: Function) -> str:
    params = ", ".join(f"%{a.name}: {a.type}" for a in fn.args)
    keyword = "kernel" if fn.is_kernel else "func"
    header = f"{keyword} @{fn.name}({params}) -> {fn.return_type}"
    if fn.is_declaration:
        param_types = ", ".join(str(t) for t in fn.type.param_types)
        variadic = ", ..." if fn.type.variadic else ""
        return f"declare @{fn.name} : {fn.return_type} ({param_types}{variadic})"
    body = "\n".join(block_to_str(b) for b in fn.blocks)
    return f"{header} {{\n{body}\n}}"


def module_to_str(module: Module) -> str:
    parts: List[str] = [f'module "{module.name}"']
    for struct in module.structs.values():
        fields = ", ".join(f"{ty} {name}" for name, ty in struct.fields)
        parts.append(f"struct %{struct.name} {{ {fields} }}")
    for gv in module.globals.values():
        ro = " readonly" if gv.is_read_only else ""
        parts.append(f"global @{gv.name} : {gv.value_type} = "
                     f"{initializer_to_str(gv.initializer)}{ro}")
    for fn in module.functions.values():
        if fn.is_declaration:
            parts.append(function_to_str(fn))
    for fn in module.functions.values():
        if not fn.is_declaration:
            parts.append(function_to_str(fn))
    return "\n\n".join(parts) + "\n"
