"""Type system for the repro IR.

The IR is typed much like LLVM's: integers of fixed bit width, IEEE
floats, pointers with a pointee type, fixed-length arrays, named
structs, and function types.  Sizes and alignments follow a 64-bit
LP64 data model (pointers are 8 bytes).

Types are immutable and compared structurally; the common scalar types
are exposed as module-level singletons (``I32``, ``F64``, ...).
"""

from __future__ import annotations

from typing import Sequence, Tuple

POINTER_SIZE = 8
POINTER_ALIGN = 8


class Type:
    """Base class for all IR types."""

    @property
    def size(self) -> int:
        """Size of a value of this type in bytes."""
        raise NotImplementedError

    @property
    def align(self) -> int:
        """Natural alignment of this type in bytes."""
        raise NotImplementedError

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_float or self.is_pointer

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> tuple:
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    """The absence of a value; only valid as a function return type."""

    @property
    def size(self) -> int:
        raise ValueError("void has no size")

    @property
    def align(self) -> int:
        raise ValueError("void has no alignment")

    def _key(self) -> tuple:
        return ("void",)

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A signed two's-complement integer of ``bits`` width.

    The IR follows C's model: arithmetic wraps at the type width and
    comparisons are signed unless an unsigned opcode is used.
    """

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    @property
    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def align(self) -> int:
        return self.size

    @property
    def min_value(self) -> int:
        if self.bits == 1:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if self.bits == 1:
            return 1
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int into this type's signed range (i1 is 0/1)."""
        if self.bits == 1:
            return value & 1
        mask = (1 << self.bits) - 1
        value &= mask
        if value > self.max_value:
            value -= 1 << self.bits
        return value

    def _key(self) -> tuple:
        return ("int", self.bits)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """An IEEE-754 binary float: 32-bit single or 64-bit double."""

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    @property
    def size(self) -> int:
        return self.bits // 8

    @property
    def align(self) -> int:
        return self.size

    def _key(self) -> tuple:
        return ("float", self.bits)

    def __str__(self) -> str:
        return f"f{self.bits}"


class PointerType(Type):
    """A pointer to values of ``pointee`` type.

    ``ptr<void>`` (spelled via :data:`VOID`) is the opaque pointer used
    for ``malloc`` results and bitcasts, mirroring C's ``void *``.
    """

    def __init__(self, pointee: Type):
        self.pointee = pointee

    @property
    def size(self) -> int:
        return POINTER_SIZE

    @property
    def align(self) -> int:
        return POINTER_ALIGN

    def _key(self) -> tuple:
        return ("ptr", self.pointee._key())

    def __str__(self) -> str:
        return f"ptr<{self.pointee}>"


class ArrayType(Type):
    """A fixed-length array of ``count`` elements of ``element`` type."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    @property
    def size(self) -> int:
        return self.element.size * self.count

    @property
    def align(self) -> int:
        return self.element.align

    def _key(self) -> tuple:
        return ("array", self.element._key(), self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(Type):
    """A named struct with ordered fields, laid out with natural padding."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]]):
        self.name = name
        self.fields = tuple(fields)

    @property
    def field_types(self) -> Tuple[Type, ...]:
        return tuple(ty for _, ty in self.fields)

    def field_index(self, name: str) -> int:
        for i, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_offset(self, index: int) -> int:
        """Byte offset of field ``index`` including alignment padding."""
        offset = 0
        for i, (_, ty) in enumerate(self.fields):
            offset = _align_up(offset, ty.align)
            if i == index:
                return offset
            offset += ty.size
        raise IndexError(index)

    @property
    def size(self) -> int:
        offset = 0
        for _, ty in self.fields:
            offset = _align_up(offset, ty.align) + ty.size
        return _align_up(offset, self.align) if self.fields else 0

    @property
    def align(self) -> int:
        return max((ty.align for _, ty in self.fields), default=1)

    def _key(self) -> tuple:
        return ("struct", self.name, tuple((n, t._key()) for n, t in self.fields))

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, return_type: Type, param_types: Sequence[Type],
                 variadic: bool = False):
        self.return_type = return_type
        self.param_types = tuple(param_types)
        self.variadic = variadic

    @property
    def size(self) -> int:
        raise ValueError("function types have no size")

    @property
    def align(self) -> int:
        raise ValueError("function types have no alignment")

    def _key(self) -> tuple:
        return ("func", self.return_type._key(),
                tuple(t._key() for t in self.param_types), self.variadic)

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        if self.variadic:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type} ({params})"


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)

#: The opaque pointer type used for untyped memory (C's ``void *``).
RAW_PTR = PointerType(I8)


def pointer_to(pointee: Type) -> PointerType:
    """Convenience constructor mirroring ``Type*`` in C."""
    return PointerType(pointee)
