"""Basic blocks: straight-line instruction sequences with one terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from ..errors import IRError
from .instructions import Instruction, Terminator

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock:
    """A labelled sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]  # type: ignore[return-value]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return term.successors if term is not None else []

    def predecessors(self) -> List["BasicBlock"]:
        """Blocks in the parent function that branch here (recomputed)."""
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors]

    def append(self, inst: Instruction) -> Instruction:
        """Add an instruction at the end (before nothing; caller ensures
        the block is not already terminated)."""
        if self.is_terminated:
            raise IRError(f"block {self.name} is already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        """Insert just before the terminator (or append if none)."""
        if self.is_terminated:
            return self.insert(len(self.instructions) - 1, inst)
        return self.append(inst)

    def index(self, inst: Instruction) -> int:
        return self.instructions.index(inst)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
