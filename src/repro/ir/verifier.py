"""Structural verifier for IR modules.

Run after construction and after every transform in the test-suite.
Construction-time checks (operand types) already reject most bad IR;
the verifier adds whole-function and whole-module invariants.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import IRError
from .function import Function
from .instructions import (Call, Instruction, LaunchKernel, Return,
                           Terminator)
from .module import Module
from .types import I64, VOID
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


def verify_module(module: Module) -> None:
    """Raise :class:`IRError` on the first broken invariant found."""
    for fn in module.functions.values():
        if not fn.is_declaration:
            verify_function(fn, module)


def verify_function(fn: Function, module: Module) -> None:
    if fn.is_kernel:
        if fn.return_type != VOID:
            raise IRError(f"kernel @{fn.name} must return void")
        if not fn.args or fn.args[0].type != I64:
            raise IRError(f"kernel @{fn.name} must take an i64 thread id "
                          "as its first parameter")
    if not fn.blocks:
        raise IRError(f"@{fn.name}: defined function has no blocks")

    defined: Set[Value] = set(fn.args)
    names: Set[str] = set()
    for block in fn.blocks:
        if block.parent is not fn:
            raise IRError(f"@{fn.name}/{block.name}: wrong parent link")
        if block.name in names:
            raise IRError(f"@{fn.name}: duplicate block name {block.name}")
        names.add(block.name)
        if not block.instructions:
            raise IRError(f"@{fn.name}/{block.name}: empty block")
        seen_terminator = False
        for i, inst in enumerate(block.instructions):
            is_last = i == len(block.instructions) - 1
            if seen_terminator:
                raise IRError(
                    f"@{fn.name}/{block.name}: instruction after "
                    f"terminator: {inst.opcode} at {i}")
            if inst.is_terminator:
                seen_terminator = True
                if not is_last:
                    # Diagnosed on the *next* iteration with the
                    # offending trailing instruction named; keep
                    # scanning so that message wins.
                    continue
            elif is_last:
                raise IRError(
                    f"@{fn.name}/{block.name}: terminator misplaced at "
                    f"instruction {i}")
            if inst.parent is not block:
                raise IRError(f"@{fn.name}/{block.name}: instruction has "
                              f"wrong parent link: {inst!r}")
            if inst.produces_value:
                if inst in defined:
                    raise IRError(f"@{fn.name}: instruction defined twice")
                defined.add(inst)
        term = block.instructions[-1]
        if isinstance(term, Return):
            _check_return(fn, term)
        if isinstance(term, Terminator):
            for succ in term.successors:
                if succ not in fn.blocks:
                    raise IRError(
                        f"@{fn.name}/{block.name}: branch to foreign "
                        f"block {succ.name}")

    # Every block must be reachable from the entry: transforms that
    # carve up the CFG must erase what they disconnect, and the
    # dataflow passes in repro.staticcheck assume a connected CFG.
    reachable: Set[object] = set()
    work = [fn.entry_block]
    while work:
        block = work.pop()
        if block in reachable:
            continue
        reachable.add(block)
        work.extend(block.successors)
    for block in fn.blocks:
        if block not in reachable:
            raise IRError(f"@{fn.name}/{block.name}: block unreachable "
                          "from entry")

    _check_operands(fn, module, defined)
    for inst in fn.instructions():
        if isinstance(inst, Call):
            _check_call(fn, inst, module)
        elif isinstance(inst, LaunchKernel):
            _check_launch(fn, inst, module)


def _check_return(fn: Function, term: Return) -> None:
    if fn.return_type == VOID:
        if term.value is not None:
            raise IRError(f"@{fn.name}: void function returns a value")
    else:
        if term.value is None:
            raise IRError(f"@{fn.name}: missing return value")
        if term.value.type != fn.return_type:
            raise IRError(
                f"@{fn.name}: returns {term.value.type}, "
                f"declared {fn.return_type}")


def _check_operands(fn: Function, module: Module,
                    defined: Set[Value]) -> None:
    for inst in fn.instructions():
        for op in inst.operands:
            if isinstance(op, (Constant, UndefValue)):
                continue
            if isinstance(op, GlobalVariable):
                if module.globals.get(op.name) is not op:
                    raise IRError(f"@{fn.name}: operand references global "
                                  f"@{op.name} not in module")
                continue
            if isinstance(op, Argument):
                if op.function is not fn:
                    raise IRError(f"@{fn.name}: foreign argument %{op.name}")
                continue
            if isinstance(op, Instruction):
                if op not in defined:
                    raise IRError(f"@{fn.name}: use of undefined register "
                                  f"%{op.name} in {inst.opcode}")
                continue
            raise IRError(f"@{fn.name}: unexpected operand {op!r}")


def _check_call(fn: Function, inst: Call, module: Module) -> None:
    callee = inst.callee
    if module.functions.get(callee.name) is not callee:
        raise IRError(f"@{fn.name}: call to @{callee.name} not in module")
    ftype = callee.type
    if ftype.variadic:
        if len(inst.args) < len(ftype.param_types):
            raise IRError(f"@{fn.name}: too few args to @{callee.name}")
    elif len(inst.args) != len(ftype.param_types):
        raise IRError(f"@{fn.name}: call to @{callee.name} has "
                      f"{len(inst.args)} args, expected "
                      f"{len(ftype.param_types)}")
    for arg, expected in zip(inst.args, ftype.param_types):
        if arg.type != expected:
            raise IRError(
                f"@{fn.name}: call to @{callee.name}: argument type "
                f"{arg.type} != parameter type {expected}")


def _check_launch(fn: Function, inst: LaunchKernel, module: Module) -> None:
    kernel = inst.kernel
    if not kernel.is_kernel:
        raise IRError(f"@{fn.name}: launch of non-kernel @{kernel.name}")
    if module.functions.get(kernel.name) is not kernel:
        raise IRError(f"@{fn.name}: launch of @{kernel.name} not in module")
    expected = kernel.type.param_types[1:]
    if len(inst.args) != len(expected):
        raise IRError(f"@{fn.name}: launch of @{kernel.name} has "
                      f"{len(inst.args)} args, expected {len(expected)}")
    for arg, ty in zip(inst.args, expected):
        if arg.type != ty:
            raise IRError(f"@{fn.name}: launch of @{kernel.name}: "
                          f"argument type {arg.type} != {ty}")
