"""Modules: a translation unit of globals and functions."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..errors import IRError
from .function import Function
from .types import FunctionType, StructType, Type
from .values import GlobalVariable, Initializer


class Module:
    """A complete IR program: globals, functions, and named structs."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}
        self.structs: Dict[str, StructType] = {}

    # -- globals ---------------------------------------------------------

    def add_global(self, name: str, value_type: Type,
                   initializer: Initializer = None,
                   is_read_only: bool = False) -> GlobalVariable:
        if name in self.globals:
            raise IRError(f"duplicate global @{name}")
        gv = GlobalVariable(name, value_type, initializer, is_read_only)
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"unknown global @{name}") from None

    # -- functions -------------------------------------------------------

    def add_function(self, name: str, ftype: FunctionType,
                     param_names: Optional[Sequence[str]] = None,
                     is_kernel: bool = False) -> Function:
        if name in self.functions:
            raise IRError(f"duplicate function @{name}")
        fn = Function(name, ftype, param_names, is_kernel, self)
        self.functions[name] = fn
        return fn

    def declare_function(self, name: str, ftype: FunctionType) -> Function:
        """Declare an external; idempotent if the signature matches."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.type != ftype:
                raise IRError(f"conflicting declarations of @{name}")
            return existing
        return self.add_function(name, ftype)

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"unknown function @{name}") from None

    def remove_function(self, name: str) -> None:
        del self.functions[name]

    # -- structs ---------------------------------------------------------

    def add_struct(self, struct: StructType) -> StructType:
        if struct.name in self.structs:
            raise IRError(f"duplicate struct %{struct.name}")
        self.structs[struct.name] = struct
        return struct

    # -- iteration -------------------------------------------------------

    def defined_functions(self) -> Iterator[Function]:
        return (f for f in self.functions.values() if not f.is_declaration)

    def kernels(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_kernel]

    def __repr__(self) -> str:
        return (f"<Module {self.name}: {len(self.globals)} globals, "
                f"{len(self.functions)} functions>")
