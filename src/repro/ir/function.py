"""Functions: named, typed, and made of basic blocks.

A function with no blocks is a *declaration* (an external like
``malloc`` or ``sqrt`` provided by the interpreter).  Functions whose
``is_kernel`` flag is set run on the simulated GPU and receive the
thread id as their first parameter.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, TYPE_CHECKING

from ..errors import IRError
from .block import BasicBlock
from .instructions import Instruction
from .types import FunctionType
from .values import Argument, FunctionValue

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class Function(FunctionValue):
    """A function definition or declaration within a module."""

    def __init__(self, name: str, ftype: FunctionType,
                 param_names: Optional[Sequence[str]] = None,
                 is_kernel: bool = False,
                 module: Optional["Module"] = None):
        super().__init__(ftype, name)
        if param_names is None:
            param_names = [f"arg{i}" for i in range(len(ftype.param_types))]
        if len(param_names) != len(ftype.param_types):
            raise IRError(f"{name}: parameter name/type count mismatch")
        self.args: List[Argument] = [
            Argument(ty, pname, i, self)
            for i, (ty, pname) in enumerate(zip(ftype.param_types, param_names))
        ]
        self.is_kernel = is_kernel
        #: Set by the DOALL parallelizer on kernels it outlined from
        #: proven-independent loops; the multi-GPU layer only shards
        #: grids of marked kernels.
        self.is_doall = False
        self.module = module
        self.blocks: List[BasicBlock] = []
        self._name_counter = itertools.count()
        self._taken_names: Dict[str, int] = {}

    @property
    def type(self) -> FunctionType:
        return self._type

    @type.setter
    def type(self, value: FunctionType) -> None:
        self._type = value

    @property
    def return_type(self):
        return self.type.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no body")
        return self.blocks[0]

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create, name, and append a fresh basic block."""
        block = BasicBlock(self.unique_name(hint), self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, after: BasicBlock, hint: str = "bb") -> BasicBlock:
        block = BasicBlock(self.unique_name(hint), self)
        self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def unique_name(self, hint: str = "t") -> str:
        """Return a register/block name unique within this function."""
        if hint not in self._taken_names:
            self._taken_names[hint] = 0
            return hint
        self._taken_names[hint] += 1
        candidate = f"{hint}.{self._taken_names[hint]}"
        while candidate in self._taken_names:
            self._taken_names[hint] += 1
            candidate = f"{hint}.{self._taken_names[hint]}"
        self._taken_names[candidate] = 0
        return candidate

    def instructions(self) -> Iterator[Instruction]:
        """Iterate every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"{self.name}: no block named {name}")

    def compute_uses(self) -> Dict[object, List[Instruction]]:
        """Map each value to the instructions that use it (recomputed)."""
        uses: Dict[object, List[Instruction]] = {}
        for inst in self.instructions():
            for op in inst.operands:
                uses.setdefault(op, []).append(inst)
        return uses

    def __repr__(self) -> str:
        kind = "kernel " if self.is_kernel else ""
        status = "decl" if self.is_declaration else f"{len(self.blocks)} blocks"
        return f"<{kind}Function @{self.name} ({status})>"
