"""IRBuilder: convenience API for emitting instructions.

The builder tracks an insertion block and appends instructions to it,
naming every value-producing instruction uniquely within the function.
It mirrors LLVM's IRBuilder in spirit but stays intentionally small.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..errors import IRError
from .block import BasicBlock
from .function import Function
from .instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                           CondBranch, GetElementPtr, Instruction,
                           LaunchKernel, Load, Return, Select, Store,
                           Unreachable)
from .types import (FloatType, IntType, PointerType, Type, I1, I32, I64)
from .values import Constant, Value

#: Python scalars are auto-wrapped into constants where a Value is expected.
Operand = Union[Value, int, float]


class IRBuilder:
    """Emits instructions at the end of a current basic block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise IRError("builder is not positioned inside a function")
        return self.block.parent

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, inst: Instruction, hint: str = "t") -> Instruction:
        if self.block is None:
            raise IRError("builder has no insertion block")
        if inst.produces_value and not inst.name:
            inst.name = self.function.unique_name(hint)
        self.block.append(inst)
        return inst

    def _value(self, operand: Operand, type_hint: Optional[Type] = None) -> Value:
        if isinstance(operand, Value):
            return operand
        if type_hint is None:
            type_hint = I64 if isinstance(operand, int) else None
        if type_hint is None:
            raise IRError(f"cannot infer constant type for {operand!r}")
        return Constant(type_hint, operand)

    # -- constants -------------------------------------------------------

    @staticmethod
    def const(type_: Type, value: Union[int, float]) -> Constant:
        return Constant(type_, value)

    @staticmethod
    def i64(value: int) -> Constant:
        return Constant(I64, value)

    @staticmethod
    def i32(value: int) -> Constant:
        return Constant(I32, value)

    @staticmethod
    def true(value: bool = True) -> Constant:
        return Constant(I1, int(value))

    # -- memory ----------------------------------------------------------

    def alloca(self, allocated_type: Type, count: Operand = 1,
               name: str = "") -> Alloca:
        count_v = self._value(count, I64)
        return self._emit(Alloca(allocated_type, count_v, name),
                          name or "addr")  # type: ignore[return-value]

    def load(self, ptr: Value, name: str = "") -> Load:
        return self._emit(Load(ptr, name), name or "val")  # type: ignore

    def store(self, value: Operand, ptr: Value) -> Store:
        if not isinstance(ptr.type, PointerType):
            raise IRError("store target must be a pointer")
        value_v = self._value(value, ptr.type.pointee)
        return self._emit(Store(value_v, ptr))  # type: ignore[return-value]

    def gep(self, ptr: Value, indices: Sequence[Operand],
            name: str = "") -> GetElementPtr:
        index_vs = [self._value(i, I64) for i in indices]
        return self._emit(GetElementPtr(ptr, index_vs, name),
                          name or "elem")  # type: ignore[return-value]

    # -- arithmetic ------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Operand,
              name: str = "") -> BinaryOp:
        rhs_v = self._value(rhs, lhs.type)
        return self._emit(BinaryOp(op, lhs, rhs_v, name),
                          name or op)  # type: ignore[return-value]

    def add(self, lhs: Value, rhs: Operand, name: str = "") -> BinaryOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Operand, name: str = "") -> BinaryOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Operand, name: str = "") -> BinaryOp:
        return self.binop("mul", lhs, rhs, name)

    def div(self, lhs: Value, rhs: Operand, name: str = "") -> BinaryOp:
        return self.binop("div", lhs, rhs, name)

    def rem(self, lhs: Value, rhs: Operand, name: str = "") -> BinaryOp:
        return self.binop("rem", lhs, rhs, name)

    def cmp(self, pred: str, lhs: Value, rhs: Operand,
            name: str = "") -> Compare:
        rhs_v = self._value(rhs, lhs.type)
        return self._emit(Compare(pred, lhs, rhs_v, name),
                          name or "cond")  # type: ignore[return-value]

    def select(self, cond: Value, if_true: Value, if_false: Value,
               name: str = "") -> Select:
        return self._emit(Select(cond, if_true, if_false, name),
                          name or "sel")  # type: ignore[return-value]

    # -- casts -----------------------------------------------------------

    def cast(self, kind: str, value: Value, to_type: Type,
             name: str = "") -> Value:
        if value.type == to_type and kind == "bitcast":
            return value
        return self._emit(Cast(kind, value, to_type, name),
                          name or kind)  # type: ignore[return-value]

    def int_cast(self, value: Value, to_type: IntType,
                 name: str = "") -> Value:
        """Sign-extend or truncate an integer to ``to_type``."""
        if value.type == to_type:
            return value
        assert isinstance(value.type, IntType)
        kind = "sext" if value.type.size < to_type.size else "trunc"
        return self.cast(kind, value, to_type, name)

    def bitcast(self, value: Value, to_type: Type, name: str = "") -> Value:
        if value.type == to_type:
            return value
        return self.cast("bitcast", value, to_type, name)

    # -- control flow ----------------------------------------------------

    def br(self, target: BasicBlock) -> Branch:
        return self._emit(Branch(target))  # type: ignore[return-value]

    def cbr(self, cond: Value, if_true: BasicBlock,
            if_false: BasicBlock) -> CondBranch:
        return self._emit(CondBranch(cond, if_true, if_false))  # type: ignore

    def ret(self, value: Optional[Operand] = None) -> Return:
        value_v: Optional[Value] = None
        if value is not None:
            value_v = self._value(value, self.function.return_type)
        return self._emit(Return(value_v))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())  # type: ignore[return-value]

    # -- calls -----------------------------------------------------------

    def call(self, callee: Function, args: Sequence[Operand],
             name: str = "") -> Call:
        ftype = callee.type
        if (not ftype.variadic and len(args) != len(ftype.param_types)):
            raise IRError(
                f"call to @{callee.name}: expected "
                f"{len(ftype.param_types)} args, got {len(args)}")
        arg_vs = []
        for i, arg in enumerate(args):
            hint = ftype.param_types[i] if i < len(ftype.param_types) else None
            arg_vs.append(self._value(arg, hint))
        return self._emit(Call(callee, arg_vs, name),
                          name or callee.name)  # type: ignore[return-value]

    def launch(self, kernel: Function, grid: Operand,
               args: Sequence[Value]) -> LaunchKernel:
        if not kernel.is_kernel:
            raise IRError(f"@{kernel.name} is not a kernel")
        grid_v = self._value(grid, I64)
        return self._emit(LaunchKernel(kernel, grid_v, list(args)))  # type: ignore
