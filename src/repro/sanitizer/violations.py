"""Violation taxonomy and the structured sanitizer report.

Each :class:`SanitizerViolation` names one communication-management
bug observed at run time: which allocation unit it hit (by the
runtime's name for globals, by base address for heap and stack
units), in which kernel epoch, and what went wrong.  Violations are
structured so tests can assert on :class:`ViolationKind` rather than
parsing messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class ViolationKind(enum.Enum):
    """The communication-bug classes the sanitizer detects."""

    #: A kernel read an allocation unit whose host copy was modified
    #: after the last HtoD copy: the device data is stale.
    STALE_READ = "stale-read"
    #: Host code read (or the program ended holding) an allocation unit
    #: whose device copy was written by a kernel and never copied back:
    #: the kernel's update is lost.
    LOST_UPDATE = "lost-update"
    #: An allocation unit still held map references when the program
    #: (or its registration scope) ended.
    REFCOUNT_LEAK = "refcount-leak"
    #: ``release`` was called on a unit whose reference count was
    #: already zero.
    DOUBLE_RELEASE = "double-release"
    #: ``cuMemFree`` hit a device buffer backing a unit that is still
    #: mapped (live references outstanding).
    DEVICE_FREE_LIVE = "device-free-live"
    #: Host code dereferenced a device pointer, or a kernel
    #: dereferenced a host pointer.
    POINTER_MIX = "pointer-mix"
    #: The sanitizer's independently tracked reference count diverged
    #: from the runtime's: the run-time library itself misbehaved.
    SHADOW_DESYNC = "shadow-desync"
    #: A read-only unit whose device copy is shared across in-flight
    #: serve requests was mutated: a kernel stored to it, or its device
    #: bytes no longer matched the shared content at run end.  Sharing
    #: is only sound for genuinely immutable data.
    SHARED_MUTATION = "shared-mutation"
    #: Under a multi-device topology, a launch ran on a device holding
    #: no valid copy of one of its operands -- the coordinator skipped
    #: (or mis-ordered) the peer broadcast that coherence requires.
    CROSS_DEVICE_STALE = "cross-device-stale"


@dataclass(frozen=True)
class SanitizerViolation:
    """One observed communication-management bug."""

    kind: ViolationKind
    unit: str                       #: allocation-unit label
    message: str
    epoch: int                      #: kernel epoch when observed
    address: Optional[int] = None   #: faulting address, if any

    def __str__(self) -> str:
        where = f" at {self.address:#x}" if self.address is not None else ""
        return (f"[{self.kind.value}] epoch {self.epoch} {self.unit}"
                f"{where}: {self.message}")


@dataclass
class SanitizerReport:
    """Everything one sanitized run observed."""

    violations: Tuple[SanitizerViolation, ...] = ()
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_kind(self, kind: ViolationKind) -> Tuple[SanitizerViolation, ...]:
        return tuple(v for v in self.violations if v.kind == kind)

    def kinds(self) -> Tuple[ViolationKind, ...]:
        return tuple(sorted({v.kind for v in self.violations},
                            key=lambda k: k.value))

    def summary(self) -> str:
        if self.clean:
            return "sanitizer: clean"
        lines = [f"sanitizer: {len(self.violations)} violation(s)"]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)
