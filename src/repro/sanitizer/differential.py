"""Differential oracle: CPU-only vs CGCM-managed GPU, byte for byte.

The strongest correctness statement this repository can make about
CGCM is *semantic transparency*: a program transformed for the GPU
must be observationally identical to its CPU-only interpretation.
This module executes a workload twice --

* **reference**: the untransformed module, CPU-only interpretation;
* **subject**: the module through the full CGCM pipeline at the
  requested level, with the communication sanitizer armed --

and compares everything observable byte-for-byte: exit code, stdout,
and the final bytes of every program-visible global.  The result
bundles the comparison with the sanitizer's violation report, so a
single :meth:`DifferentialReport.ok` check covers "the answer is
right" *and* "the communication that produced it was sound".

Exposed on the command line as ``python -m repro sanitize`` and to
the test-suite through the ``differential_oracle`` fixture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.compiler import (CgcmCompiler, ExecutionResult,
                             capture_globals_image)
from ..core.config import CgcmConfig, OptLevel
from ..errors import ReproError
from ..gpu.timing import CostModel
from ..interp.machine import Machine
from ..ir.module import Module
from ..runtime.cgcm import CgcmRuntime
from ..workloads import Workload, get_workload
from .sanitizer import CommSanitizer
from .violations import SanitizerReport, SanitizerViolation


@dataclass
class DifferentialReport:
    """Outcome of one CPU-vs-GPU differential run."""

    name: str
    level: str
    match: bool
    mismatches: Tuple[str, ...]
    sanitizer: SanitizerReport
    #: Set when the subject run died on a ReproError; the sanitizer
    #: report above still covers everything observed before the crash.
    error: Optional[str] = None
    reference: Optional[ExecutionResult] = None
    subject: Optional[ExecutionResult] = None

    @property
    def violations(self) -> Tuple[SanitizerViolation, ...]:
        return self.sanitizer.violations

    @property
    def ok(self) -> bool:
        return self.match and self.error is None and self.sanitizer.clean

    def summary(self) -> str:
        lines = [f"{self.name} [{self.level}]: "
                 f"{'OK' if self.ok else 'FAIL'}"]
        if self.error:
            lines.append(f"  subject run crashed: {self.error}")
        lines.extend(f"  mismatch: {m}" for m in self.mismatches)
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def run_differential(source: str, name: str = "program",
                     level: OptLevel = OptLevel.OPTIMIZED,
                     cost_model: Optional[CostModel] = None,
                     engine: str = "compiled") -> DifferentialReport:
    """Compile ``source`` once per side and compare the two runs."""
    if level == OptLevel.SEQUENTIAL:
        raise ValueError(
            "differential subject must be a parallelized level; "
            "sequential is the reference side")
    cost_model = cost_model if cost_model is not None else CostModel()

    reference_compiler = CgcmCompiler(
        CgcmConfig(opt_level=OptLevel.SEQUENTIAL, cost_model=cost_model,
                   engine=engine))
    reference_compiled = reference_compiler.compile_source(source, name)
    reference = _execute_reference(reference_compiled.module,
                                   reference_compiler.config)

    subject_compiler = CgcmCompiler(
        CgcmConfig(opt_level=level, cost_model=cost_model,
                   engine=engine))
    compiled = subject_compiler.compile_source(source, name)
    subject, sanitizer_report, error = _execute_sanitized(
        compiled.module, subject_compiler.config)

    if error is None:
        assert subject is not None
        mismatches = tuple(_compare(reference, subject))
    else:
        mismatches = ()
    return DifferentialReport(
        name=name, level=level.value,
        match=error is None and not mismatches,
        mismatches=mismatches, sanitizer=sanitizer_report, error=error,
        reference=reference, subject=subject)


def run_differential_workload(workload, level: OptLevel = OptLevel.OPTIMIZED,
                              cost_model: Optional[CostModel] = None,
                              engine: str = "compiled"
                              ) -> DifferentialReport:
    """Differential run of a named benchmark (or a Workload object)."""
    if not isinstance(workload, Workload):
        workload = get_workload(workload)
    return run_differential(workload.source, workload.name, level,
                            cost_model, engine)


def _execute_reference(module: Module,
                       config: CgcmConfig) -> ExecutionResult:
    """Run the untransformed module as the reference side.

    Unlike a plain sequential :meth:`CgcmCompiler.execute`, the
    reference machine carries a (passive) run-time library with all
    globals declared, so manual-mode programs that call
    ``map``/``unmap``/``release`` themselves are interpretable on
    both sides of the differential.  Programs without such calls run
    entirely on the CPU, exactly as before.
    """
    machine = Machine(module, config.cost_model, config.record_events,
                      engine=config.engine)
    runtime = CgcmRuntime(machine)
    runtime.declare_all_globals()
    exit_code = machine.run()
    return ExecutionResult(
        exit_code=exit_code,
        stdout=tuple(machine.stdout),
        cpu_seconds=machine.clock.cpu_seconds,
        gpu_seconds=machine.clock.gpu_seconds,
        comm_seconds=machine.clock.comm_seconds,
        counters=dict(machine.clock.counters),
        events=list(machine.clock.events),
        globals_image=capture_globals_image(machine, module))


def _execute_sanitized(module: Module, config: CgcmConfig):
    """Run the transformed module under the sanitizer.

    Unlike :meth:`CgcmCompiler.execute`, this survives a crashing
    subject: the sanitizer report and the machine state accumulated
    before the error are still returned, so a seeded bug that faults
    mid-run does not hide the violations that led up to it.
    """
    machine = Machine(module, config.cost_model, config.record_events,
                      engine=config.engine)
    runtime = CgcmRuntime(machine) if config.parallelize else None
    sanitizer = CommSanitizer(machine, runtime)
    error: Optional[str] = None
    result: Optional[ExecutionResult] = None
    try:
        exit_code = machine.run()
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    report = sanitizer.finish()
    if error is None:
        result = ExecutionResult(
            exit_code=exit_code,
            stdout=tuple(machine.stdout),
            cpu_seconds=machine.clock.cpu_seconds,
            gpu_seconds=machine.clock.gpu_seconds,
            comm_seconds=machine.clock.comm_seconds,
            counters=dict(machine.clock.counters),
            events=list(machine.clock.events),
            globals_image=capture_globals_image(machine, module),
            sanitizer_report=report,
        )
    return result, report, error


def _compare(reference: ExecutionResult,
             subject: ExecutionResult) -> List[str]:
    """Byte-for-byte observable comparison; returns mismatch lines."""
    mismatches: List[str] = []
    if reference.exit_code != subject.exit_code:
        mismatches.append(
            f"exit code: reference {reference.exit_code}, "
            f"subject {subject.exit_code}")
    if reference.stdout != subject.stdout:
        mismatches.append(_stdout_diff(reference.stdout, subject.stdout))
    names = sorted(set(reference.globals_image)
                   | set(subject.globals_image))
    for name in names:
        ref_bytes = reference.globals_image.get(name)
        sub_bytes = subject.globals_image.get(name)
        if ref_bytes is None or sub_bytes is None:
            side = "reference" if ref_bytes is None else "subject"
            mismatches.append(f"global {name}: missing on {side} side")
        elif ref_bytes != sub_bytes:
            offset = next(i for i, (a, b)
                          in enumerate(zip(ref_bytes, sub_bytes))
                          if a != b) if len(ref_bytes) == len(sub_bytes) \
                else min(len(ref_bytes), len(sub_bytes))
            mismatches.append(
                f"global {name}: bytes differ at offset {offset} "
                f"(size {len(ref_bytes)} vs {len(sub_bytes)})")
    return mismatches


def _stdout_diff(reference: Tuple[str, ...],
                 subject: Tuple[str, ...]) -> str:
    if len(reference) != len(subject):
        return (f"stdout: {len(reference)} line(s) on reference side, "
                f"{len(subject)} on subject side")
    for index, (ref_line, sub_line) in enumerate(zip(reference, subject)):
        if ref_line != sub_line:
            return (f"stdout line {index}: reference {ref_line!r}, "
                    f"subject {sub_line!r}")
    return "stdout: differs"
