"""The communication sanitizer: hook-driven shadow-state checking.

``CommSanitizer(machine, runtime)`` attaches to every observation
point the platform exposes:

* ``Machine.mem_hooks``     -- every interpreted load/store, in both
  address spaces (stale-read, lost-update, pointer-mixing);
* ``Machine.launch_hooks``  -- kernel epoch tracking;
* ``Machine.heap_hooks`` / ``Machine.frame_exit_hooks`` -- allocation
  unit lifetime (shadow expiry on free and scope exit);
* ``GpuDevice.observers``   -- the simulated driver API
  (``cuMemAlloc``/``cuMemFree``/``cuMemcpyHtoD``/``cuMemcpyDtoH``);
* ``CgcmRuntime.op_hooks``  -- ``map``/``unmap``/``release`` and their
  array variants (refcount shadowing, dirty-bit maintenance,
  double-release detection).

Attach it *before* the run starts and call :meth:`finish` after it
ends; ``finish`` performs the end-of-run checks (reference leaks,
kernel updates that were never copied back) and returns the
structured :class:`~repro.sanitizer.violations.SanitizerReport`.

The sanitizer is an observer: it never changes program-visible
behavior and never charges modelled time, so a sanitized run produces
byte-identical output to an unsanitized one.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from ..gpu.device import DriverEvent, GpuDevice
from ..interp.machine import Machine
from ..memory.layout import is_device_address
from ..runtime.cgcm import AllocationInfo, CgcmRuntime
from .shadow import ShadowState, ShadowUnit
from .violations import SanitizerReport, SanitizerViolation, ViolationKind

#: Safety valve: stop recording after this many violations so a buggy
#: loop cannot flood memory with one record per iteration.
MAX_VIOLATIONS = 200


class CommSanitizer:
    """Shadow-state tracker for one machine's communication behavior."""

    def __init__(self, machine: Machine,
                 runtime: Optional[CgcmRuntime] = None,
                 max_violations: int = MAX_VIOLATIONS):
        self.machine = machine
        self.runtime = runtime
        self.device: GpuDevice = machine.device
        self.shadow = ShadowState()
        self.violations: List[SanitizerViolation] = []
        self.max_violations = max_violations
        #: Mirrors the runtime's global epoch (one tick per launch).
        self.epoch = 0
        self.stats: Dict[str, int] = {
            "kernel_launches": 0, "maps": 0, "unmaps": 0, "releases": 0,
            "host_accesses": 0, "device_accesses": 0, "htod_copies": 0,
            "dtoh_copies": 0, "evictions": 0, "restores": 0,
            "refreshes": 0, "fallback_flushes": 0, "shared_attaches": 0,
        }
        #: Device base mid-eviction: its cuMemFree is the runtime
        #: reclaiming memory, not a lifetime bug.
        self._evicting: Optional[int] = None
        self._finished = False
        #: Independent mirror of the multi-GPU coordinator's coherence
        #: state: unit base -> devices holding a valid copy, and the
        #: home assignment each unit was given.  Maintained purely
        #: from coordinator events plus the map op-hook, never read
        #: back from the coordinator -- so a coordinator that skips a
        #: broadcast cannot also hide the evidence.
        self._mg_valid: Dict[int, set] = {}
        self._mg_home: Dict[int, int] = {}
        self._multigpu = getattr(runtime, "multigpu", None)
        machine.mem_hooks.append(self._on_mem)
        machine.launch_hooks.append(self._on_launch)
        machine.heap_hooks.append(self._on_heap)
        machine.frame_exit_hooks.append(self._on_frame_exit)
        self.device.observers.append(self._on_device)
        if runtime is not None:
            runtime.op_hooks.append(self._on_op)
        if self._multigpu is not None:
            self._multigpu.hooks.append(self._on_multigpu)
            self.stats.update({"mg_broadcasts": 0, "mg_gathers": 0,
                               "mg_launches": 0})

    # -- recording ----------------------------------------------------------

    def _record(self, kind: ViolationKind, unit: str, message: str,
                address: Optional[int] = None) -> None:
        if len(self.violations) >= self.max_violations:
            return
        self.violations.append(
            SanitizerViolation(kind, unit, message, self.epoch, address))

    # -- machine hooks -------------------------------------------------------

    def _on_launch(self, machine: Machine, kernel, grid: int,
                   args: List) -> None:
        self.epoch += 1
        self.stats["kernel_launches"] += 1

    def _on_heap(self, machine: Machine, kind: str, address: int,
                 size: int) -> None:
        if kind == "free" and address:
            self.shadow.drop_base(address)

    def _on_frame_exit(self, machine: Machine, frame_id: int) -> None:
        self.shadow.drop_frame(frame_id)

    def _on_mem(self, machine: Machine, kind: str, address: int,
                size: int) -> None:
        if machine.mode == "gpu":
            self.stats["device_accesses"] += 1
            if not is_device_address(address):
                self._record(
                    ViolationKind.POINTER_MIX, f"address {address:#x}",
                    "kernel dereferenced a host pointer", address)
                return
            unit = self.shadow.device_unit_at(address)
            if unit is None:
                # Device stack or scratch outside any mapped unit.
                return
            if kind == "store":
                unit.device_dirty = True
                unit.lost_reported = False
                if unit.shared:
                    # Dedup: one report per unit; the attach-digest
                    # check at finish() still covers later stores.
                    unit.shared = False
                    self._record(
                        ViolationKind.SHARED_MUTATION, unit.label,
                        "kernel stored to a read-only unit whose "
                        "device copy is shared across serve requests",
                        address)
            elif unit.host_dirty \
                    and unit.stale_reported_epoch != self.epoch:
                unit.stale_reported_epoch = self.epoch
                self._record(
                    ViolationKind.STALE_READ, unit.label,
                    f"kernel read device copy (synced at epoch "
                    f"{unit.map_epoch if unit.sync_epoch < 0 else unit.sync_epoch}) "
                    "but the host copy was modified since the last "
                    "HtoD transfer", address)
        else:
            self.stats["host_accesses"] += 1
            if is_device_address(address):
                self._record(
                    ViolationKind.POINTER_MIX, f"address {address:#x}",
                    "host code dereferenced a device pointer", address)
                return
            if self.runtime is None:
                return
            unit = self.shadow.host_unit_at(address,
                                            self.runtime.alloc_map)
            if unit is None:
                return
            if kind == "store":
                if unit.info.ref_count > 0 \
                        and unit.info.device_ptr is not None:
                    unit.host_dirty = True
            elif unit.device_dirty and not unit.lost_reported:
                unit.lost_reported = True
                self._record(
                    ViolationKind.LOST_UPDATE, unit.label,
                    "host read a unit whose device copy is dirty and "
                    "was never unmapped (kernel update lost)", address)

    # -- device driver observer ----------------------------------------------

    def _on_device(self, event: DriverEvent, address: int,
                   size: int) -> None:
        if event == DriverEvent.HTOD:
            self.stats["htod_copies"] += 1
        elif event == DriverEvent.DTOH:
            self.stats["dtoh_copies"] += 1
        elif event in (DriverEvent.FREE, DriverEvent.FREE_ASYNC):
            unit = self.shadow.device_unit_at(address)
            if unit is None:
                return
            if unit.info.ref_count > 0 and address != self._evicting:
                self._record(
                    ViolationKind.DEVICE_FREE_LIVE, unit.label,
                    f"cuMemFree of device buffer backing a unit with "
                    f"{unit.info.ref_count} live map reference(s)",
                    address)
            # The buffer is gone either way; stop matching it.
            if unit.device_base is not None:
                self.shadow.unregister_device(unit.device_base)

    # -- runtime operation hooks ----------------------------------------------

    def _on_op(self, stage: str, op: str, ptr: int,
               info: AllocationInfo) -> None:
        unit = self.shadow.unit_for(info)
        if stage == "pre":
            if op == "map":
                unit.pre_ref = info.ref_count
            elif op == "unmap":
                assert self.runtime is not None
                unit.will_copy = (
                    info.device_ptr is not None
                    and info.resident and not info.needs_refresh
                    and not info.is_read_only
                    and info.epoch != self.runtime.global_epoch)
            elif op == "evict":
                assert self.runtime is not None
                self._evicting = info.device_ptr
                unit.will_copy = (
                    not info.is_read_only and not info.is_array
                    and not info.needs_refresh
                    and info.epoch != self.runtime.global_epoch)
            elif op in ("restore", "refresh", "flush"):
                pass
            elif op == "release":
                self.stats["releases"] += 1
                unit.pre_ref = info.ref_count
                if info.ref_count <= 0:
                    self._record(
                        ViolationKind.DOUBLE_RELEASE, unit.label,
                        "release with zero outstanding references "
                        "(double release or release without map)", ptr)
            return
        # -- post stage ------------------------------------------------------
        if op == "map":
            self.stats["maps"] += 1
            if unit.pre_ref == 0:
                # A fresh HtoD copy: both images are now identical.
                unit.host_dirty = False
                unit.device_dirty = False
                unit.lost_reported = False
                unit.map_epoch = self.epoch
                self.shadow.register_device(unit)
                if info.base in self._mg_home:
                    # The upload targets the unit's home device and
                    # invalidates every peer copy.
                    self._mg_valid[info.base] = {self._mg_home[info.base]}
            if info.ref_count != unit.ref + 1:
                self._desync(unit, info, "map")
            unit.ref = info.ref_count
        elif op == "unmap":
            self.stats["unmaps"] += 1
            if unit.will_copy:
                # A DtoH copy happened: the device image won.
                unit.host_dirty = False
                unit.device_dirty = False
                unit.lost_reported = False
                unit.sync_epoch = self.epoch
                unit.will_copy = False
        elif op == "evict":
            self.stats["evictions"] += 1
            self._evicting = None
            if unit.will_copy:
                # The eviction write-back: the device image won.
                unit.host_dirty = False
                unit.device_dirty = False
                unit.lost_reported = False
                unit.sync_epoch = self.epoch
            unit.will_copy = False
            if unit.device_base is not None:
                # The FREE observer usually already unregistered it;
                # this is the belt to its braces.
                self.shadow.unregister_device(unit.device_base)
        elif op == "restore":
            # A full HtoD re-copy at the unit's stable device address:
            # both images are identical again.
            self.stats["restores"] += 1
            unit.host_dirty = False
            unit.device_dirty = False
            unit.lost_reported = False
            unit.map_epoch = self.epoch
            self.shadow.register_device(unit)
        elif op == "refresh":
            # HtoD re-copy of a host-authoritative resident unit (a
            # CPU-fallback launch wrote the host bytes).
            self.stats["refreshes"] += 1
            unit.host_dirty = False
            unit.device_dirty = False
            unit.lost_reported = False
            unit.map_epoch = self.epoch
        elif op == "flush":
            # DtoH write-back ahead of a CPU-fallback launch.
            self.stats["fallback_flushes"] += 1
            unit.host_dirty = False
            unit.device_dirty = False
            unit.lost_reported = False
            unit.sync_epoch = self.epoch
        elif op == "share":
            # The runtime elided this unit's HtoD: its device copy is
            # shared with another in-flight request.  Record the
            # content digest so finish() can prove the copy stayed
            # byte-identical, and flag sharing of anything mutable.
            self.stats["shared_attaches"] += 1
            unit.shared = True
            unit.shared_digest = hashlib.sha256(
                self.machine.cpu_memory.read(info.base,
                                             info.size)).digest()
            if not info.is_read_only:
                unit.shared = False
                self._record(
                    ViolationKind.SHARED_MUTATION, unit.label,
                    "runtime shared the device copy of a unit that is "
                    "not marked read-only", ptr)
        elif op == "release":
            if info.ref_count != unit.ref - 1:
                self._desync(unit, info, "release")
            unit.ref = info.ref_count
            if info.device_ptr is None and unit.device_base is not None:
                # Freed by the release; the observer usually already
                # unregistered it, this is the belt to its braces.
                self.shadow.unregister_device(unit.device_base)

    # -- multi-GPU coordinator observer ---------------------------------------

    def _on_multigpu(self, event: str, payload: dict) -> None:
        """Mirror coordinator coherence events and check launches.

        ``place``/``broadcast``/``gather`` maintain the mirror;
        ``launch`` is the checkpoint: every operand must already hold
        a valid copy on every device the launch runs on, or the read
        observes a peer's stale memory.
        """
        if event == "place":
            info = payload["unit"]
            self._mg_home[info.base] = payload["device"]
            self._mg_valid[info.base] = {payload["device"]}
        elif event == "broadcast":
            self.stats["mg_broadcasts"] += 1
            info = payload["unit"]
            self._mg_valid.setdefault(info.base, set()).add(payload["dst"])
        elif event == "gather":
            self.stats["mg_gathers"] += 1
            info = payload["unit"]
            self._mg_valid[info.base] = {payload["dst"]}
            self._mg_home[info.base] = payload["dst"]
        elif event == "launch":
            self.stats["mg_launches"] += 1
            devices = payload["devices"]
            for info in payload["reads"]:
                valid = self._mg_valid.get(info.base, set())
                for d in devices:
                    if d not in valid:
                        self._record(
                            ViolationKind.CROSS_DEVICE_STALE,
                            info.name or f"{info.base:#x}",
                            f"kernel {payload['kernel']} launched on "
                            f"gpu{d} but the device holds no valid "
                            f"copy of the unit (valid on "
                            f"{sorted(valid) or 'no device'}; missing "
                            "peer broadcast)")

    def _desync(self, unit: ShadowUnit, info: AllocationInfo,
                op: str) -> None:
        self._record(
            ViolationKind.SHADOW_DESYNC, unit.label,
            f"after {op}: runtime reference count {info.ref_count} != "
            f"shadow expectation {unit.ref + (1 if op == 'map' else -1)}")

    # -- end of run -----------------------------------------------------------

    def finish(self) -> SanitizerReport:
        """End-of-run checks; idempotent."""
        if not self._finished:
            self._finished = True
            for base in sorted(self.shadow.units):
                unit = self.shadow.units[base]
                if unit.info.ref_count > 0:
                    self._record(
                        ViolationKind.REFCOUNT_LEAK, unit.label,
                        f"{unit.info.ref_count} map reference(s) never "
                        "released by program exit")
                if unit.device_dirty and not unit.lost_reported:
                    unit.lost_reported = True
                    self._record(
                        ViolationKind.LOST_UPDATE, unit.label,
                        "device copy dirty at program exit; the final "
                        "unmap was skipped (kernel update lost)")
                if unit.shared_digest is not None \
                        and unit.device_base is not None:
                    digest = hashlib.sha256(self.device.memory.read(
                        unit.device_base, unit.info.size)).digest()
                    if digest != unit.shared_digest:
                        self._record(
                            ViolationKind.SHARED_MUTATION, unit.label,
                            "device bytes of a shared read-only unit "
                            "no longer match the content recorded at "
                            "share time")
        return SanitizerReport(tuple(self.violations), dict(self.stats))

    def detach(self) -> None:
        """Remove every hook this sanitizer installed."""
        for hooks, hook in (
                (self.machine.mem_hooks, self._on_mem),
                (self.machine.launch_hooks, self._on_launch),
                (self.machine.heap_hooks, self._on_heap),
                (self.machine.frame_exit_hooks, self._on_frame_exit),
                (self.device.observers, self._on_device)):
            if hook in hooks:
                hooks.remove(hook)
        if self.runtime is not None and self._on_op in self.runtime.op_hooks:
            self.runtime.op_hooks.remove(self._on_op)
        if self._multigpu is not None \
                and self._on_multigpu in self._multigpu.hooks:
            self._multigpu.hooks.remove(self._on_multigpu)
