"""Per-allocation-unit shadow records and their address indexes.

The sanitizer never trusts a single source of truth: it mirrors the
run-time library's allocation map with its own :class:`ShadowUnit`
per unit, carrying dirty bits for both address spaces, an
independently maintained reference count, and the epochs of the last
HtoD/DtoH synchronization.  Two indexes find the shadow record for an
arbitrary pointer: host lookups reuse the runtime's allocation map
(greatest-key-<=), device lookups go through a second
:class:`AvlTreeMap` keyed by device base address.  Both are fronted
by a small most-recently-used cache because interpreted array loops
touch the same unit thousands of times in a row.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..runtime.allocmap import AvlTreeMap
from ..runtime.cgcm import AllocationInfo

#: Entries kept in each most-recently-used lookup cache.
_CACHE_SIZE = 4


def unit_label(info: AllocationInfo) -> str:
    """A stable human-readable name for an allocation unit."""
    if info.is_global:
        return f"global {info.name}" if info.name else \
            f"global@{info.base:#x}"
    if info.frame_id is not None:
        return f"stack@{info.base:#x}"
    return f"heap@{info.base:#x}"


class ShadowUnit:
    """Sanitizer-side state of one allocation unit."""

    __slots__ = ("info", "label", "ref", "host_dirty", "device_dirty",
                 "device_base", "map_epoch", "sync_epoch",
                 "stale_reported_epoch", "lost_reported", "pre_ref",
                 "will_copy", "shared", "shared_digest")

    def __init__(self, info: AllocationInfo):
        self.info = info
        self.label = unit_label(info)
        #: Reference count tracked independently of the runtime's.
        self.ref = 0
        #: Host bytes modified since the last full HtoD copy while a
        #: device copy exists.
        self.host_dirty = False
        #: Device bytes written by a kernel since the last DtoH copy.
        self.device_dirty = False
        #: Device base while a device buffer backs this unit.
        self.device_base: Optional[int] = None
        self.map_epoch = -1
        self.sync_epoch = -1
        #: Dedup state so one bug reports once, not per access.
        self.stale_reported_epoch = -1
        self.lost_reported = False
        #: Scratch captured at the "pre" stage of a runtime operation.
        self.pre_ref = 0
        self.will_copy = False
        #: This unit's device copy is shared across serve requests
        #: (the runtime elided its HtoD via the sharing registry).
        self.shared = False
        #: SHA-256 of the shared content at attach time; the sanitizer
        #: re-hashes the device bytes at run end to prove immutability.
        self.shared_digest: Optional[bytes] = None

    @property
    def device_end(self) -> Optional[int]:
        if self.device_base is None:
            return None
        return self.device_base + self.info.size

    def __repr__(self) -> str:
        dirt = "".join((
            "H" if self.host_dirty else "-",
            "D" if self.device_dirty else "-"))
        return f"<ShadowUnit {self.label} refs={self.ref} dirty={dirt}>"


class ShadowState:
    """All shadow units plus the host/device lookup indexes."""

    def __init__(self):
        #: Shadow records keyed by host base address.
        self.units: Dict[int, ShadowUnit] = {}
        #: Device-resident units keyed by device base address.
        self.device_map = AvlTreeMap()
        #: Stack-registered unit bases per interpreter frame, so frame
        #: exit can expire the right shadows (addresses get reused).
        self.frame_units: Dict[int, List[int]] = {}
        self._host_cache: List[ShadowUnit] = []
        self._device_cache: List[ShadowUnit] = []

    # -- creation and expiry ----------------------------------------------

    def unit_for(self, info: AllocationInfo) -> ShadowUnit:
        """The shadow record for ``info``, created on first sight.

        Keyed by host base; if the runtime re-registered the same base
        (heap address reuse after free), a fresh record replaces the
        stale one.
        """
        unit = self.units.get(info.base)
        if unit is not None and unit.info is info:
            return unit
        unit = ShadowUnit(info)
        self.units[info.base] = unit
        if info.frame_id is not None:
            self.frame_units.setdefault(info.frame_id, []).append(info.base)
        self._host_cache.clear()
        return unit

    def drop_base(self, base: int) -> None:
        """Forget the unit at host ``base`` (heap free / scope exit)."""
        unit = self.units.pop(base, None)
        if unit is None:
            return
        if unit.device_base is not None:
            self.device_map.remove(unit.device_base)
            self._device_cache.clear()
        self._host_cache.clear()

    def drop_frame(self, frame_id: int) -> None:
        """Expire every stack registration of one returning frame."""
        for base in self.frame_units.pop(frame_id, ()):
            self.drop_base(base)

    # -- device interval registration --------------------------------------

    def register_device(self, unit: ShadowUnit) -> None:
        assert unit.info.device_ptr is not None
        if unit.device_base is not None \
                and unit.device_base != unit.info.device_ptr:
            self.device_map.remove(unit.device_base)
        unit.device_base = unit.info.device_ptr
        self.device_map.insert(unit.device_base, unit)
        self._device_cache.clear()

    def unregister_device(self, device_base: int) -> Optional[ShadowUnit]:
        entry = self.device_map.find(device_base)
        if entry is None:
            return None
        self.device_map.remove(device_base)
        entry.device_base = None
        self._device_cache.clear()
        return entry

    # -- pointer-to-unit lookup ---------------------------------------------

    def host_unit_at(self, address: int,
                     alloc_map: AvlTreeMap) -> Optional[ShadowUnit]:
        """Shadow unit containing host ``address``, or None."""
        for unit in self._host_cache:
            if unit.info.base <= address < unit.info.end:
                return unit
        entry = alloc_map.find_le(address)
        if entry is None:
            return None
        info = entry[1]
        if address >= info.end:
            return None
        unit = self.unit_for(info)
        self._remember(self._host_cache, unit)
        return unit

    def device_unit_at(self, address: int) -> Optional[ShadowUnit]:
        """Shadow unit whose device buffer contains ``address``."""
        for unit in self._device_cache:
            base = unit.device_base
            if base is not None and base <= address < base + unit.info.size:
                return unit
        entry = self.device_map.find_le(address)
        if entry is None:
            return None
        unit = entry[1]
        if unit.device_base is None \
                or address >= unit.device_base + unit.info.size:
            return None
        self._remember(self._device_cache, unit)
        return unit

    @staticmethod
    def _remember(cache: List[ShadowUnit], unit: ShadowUnit) -> None:
        if unit in cache:
            cache.remove(unit)
        cache.insert(0, unit)
        del cache[_CACHE_SIZE:]
