"""Communication sanitizer and differential oracle.

A correctness substrate for the CGCM reproduction, in the spirit of
``compute-sanitizer`` for real CUDA: :class:`CommSanitizer` shadows
every allocation unit the run-time library manages and reports
structured :class:`SanitizerViolation` records for stale device
reads, lost kernel updates, reference-count leaks, double releases,
frees of live-mapped buffers, and host/device pointer mixing;
:func:`run_differential` executes a workload CPU-only and
GPU-managed and compares the observable results byte-for-byte.
"""

from .differential import (DifferentialReport, run_differential,
                           run_differential_workload)
from .sanitizer import CommSanitizer, MAX_VIOLATIONS
from .shadow import ShadowState, ShadowUnit, unit_label
from .violations import (SanitizerReport, SanitizerViolation,
                         ViolationKind)

__all__ = [
    "CommSanitizer", "MAX_VIOLATIONS",
    "SanitizerReport", "SanitizerViolation", "ViolationKind",
    "ShadowState", "ShadowUnit", "unit_label",
    "DifferentialReport", "run_differential",
    "run_differential_workload",
]
