"""Exception hierarchy shared by every repro subsystem.

All errors raised by the compiler, runtime, and simulators derive from
:class:`ReproError` so callers can catch the whole family at once.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class IRError(ReproError):
    """Malformed IR detected while building or verifying a module."""


class IRParseError(IRError):
    """The textual IR parser rejected its input."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class FrontendError(ReproError):
    """A MiniC source program failed to lex, parse, or type-check."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class MemoryFault(ReproError):
    """An out-of-bounds or cross-address-space memory access.

    Raised by the simulated flat memories when a load, store, or copy
    touches bytes outside any live allocation, and in particular when a
    GPU pointer is dereferenced by CPU code or vice versa -- the exact
    bug class CGCM exists to prevent.
    """

    def __init__(self, message: str, address: int = 0):
        super().__init__(message)
        self.address = address


class InterpError(ReproError):
    """The IR interpreter hit an unrecoverable condition (bad opcode,
    call to an unknown function, division by zero, ...)."""


class CgcmRuntimeError(ReproError):
    """The CGCM run-time library was used incorrectly at execution time
    (unmapping a never-mapped pointer, releasing below a zero reference
    count, mapping an untracked allocation unit, ...)."""


class CgcmUnsupportedError(ReproError):
    """The program violates a documented CGCM restriction: pointers with
    three or more degrees of indirection, or kernels that store pointers
    into memory (paper section 2.3)."""


class GpuError(ReproError):
    """The simulated GPU driver rejected an operation (double free,
    unknown module global, out-of-range copy, ...)."""


class GpuOomError(GpuError):
    """``cuMemAlloc`` failed: the device heap is exhausted (or the
    fault injector decided it is).  ``transient`` distinguishes an
    injected hiccup (retry may succeed unchanged) from genuine
    capacity pressure (only freeing device memory can help)."""

    def __init__(self, message: str, size: int = 0,
                 transient: bool = False):
        super().__init__(message)
        self.size = size
        self.transient = transient


class GpuTransferError(GpuError):
    """A ``cuMemcpy`` in either direction failed transiently (bus
    fault injected by the resilience layer); the copy had no data
    effect and may be retried."""

    def __init__(self, message: str, address: int = 0, size: int = 0):
        super().__init__(message)
        self.address = address
        self.size = size


class GpuLaunchError(GpuError):
    """A kernel launch was rejected by the driver (injected fault);
    no thread of the grid ran."""

    def __init__(self, message: str, kernel: str = "", grid: int = 0):
        super().__init__(message)
        self.kernel = kernel
        self.grid = grid


class ConfigError(ReproError, ValueError):
    """A :class:`repro.core.config.CgcmConfig` combines flags that
    cannot work together; the message says which and what to change.

    Also a ``ValueError`` so pre-existing callers that caught the
    engine validation keep working.
    """


class TransformError(ReproError):
    """A compiler pass could not be applied to the given IR."""


class TransformValidationError(TransformError):
    """Translation validation rejected a pipeline pass: a before/after
    IR pair violates the pass's declared legality contract
    (``transforms/contract``).  Raised at the end of the pipeline when
    compiling with ``CgcmConfig(validate=True)``; carries the full
    :class:`~repro.core.compiler.CompileReport` (``report``) and the
    error-severity findings (``findings``) for reporting."""

    def __init__(self, report: "object", findings: "list"):
        stages = []
        for finding in findings:
            if finding.unit and finding.unit not in stages:
                stages.append(finding.unit)
        where = ", ".join(stages) if stages else "pipeline"
        super().__init__(
            f"translation validation failed after {where}: "
            f"{len(findings)} contract violation"
            f"{'s' if len(findings) != 1 else ''} "
            f"(first: {findings[0].render() if findings else '?'})")
        self.report = report
        self.findings = findings
