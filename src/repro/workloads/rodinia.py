"""The six Rodinia programs (MiniC ports, scaled down).

Rodinia programs are larger and more irregular than PolyBench: jagged
data, index arrays, reductions between kernels, and wavefront
parallelism.  These exercise CGCM's run-time-library strengths
(aliasing, indirection) and the glue-kernel optimization.
"""

from __future__ import annotations

from .data import PaperRow, Workload

CFD = Workload(
    name="cfd", suite="Rodinia",
    description="unstructured-grid Euler solver (flux computation)",
    paper=PaperRow(9, "GPU", (4.65, 77.96), (85.90, 0.16), 9, 3, 3),
    source=r"""
/* cfd (euler3d shape), 144 cells, 4 neighbours each, T=6.
   All state is heap-allocated (as in Rodinia) and indexed through an
   irregular neighbour table: CGCM's run-time tracking handles the
   malloc'd units; named-region techniques cannot. */
double factor;
double *density;
double *momentum;
double *energy;
double *flux_d;
double *flux_m;
double *flux_e;
long *neighbours;

void compute_fluxes(void) {
    for (int i = 0; i < 144; i++) {
        double fd = 0.0;
        double fm = 0.0;
        double fe = 0.0;
        for (int n = 0; n < 4; n++) {
            long nb = neighbours[i * 4 + n];
            double dd = density[nb] - density[i];
            double dm = momentum[nb] - momentum[i];
            double de = energy[nb] - energy[i];
            fd += dd * 0.25;
            fm += dm * 0.2 + dd * dm * 0.01;
            fe += de * 0.15;
        }
        flux_d[i] = fd;
        flux_m[i] = fm;
        flux_e[i] = fe;
    }
}

void apply_fluxes(void) {
    for (int i = 0; i < 144; i++) {
        density[i] = density[i] + factor * flux_d[i];
        momentum[i] = momentum[i] + factor * flux_m[i];
        energy[i] = energy[i] + factor * flux_e[i];
    }
}

int main(void) {
    density = (double *) malloc(144 * sizeof(double));
    momentum = (double *) malloc(144 * sizeof(double));
    energy = (double *) malloc(144 * sizeof(double));
    flux_d = (double *) malloc(144 * sizeof(double));
    flux_m = (double *) malloc(144 * sizeof(double));
    flux_e = (double *) malloc(144 * sizeof(double));
    neighbours = (long *) malloc(144 * 4 * sizeof(long));
    for (int i = 0; i < 144; i++) {
        density[i] = 1.0 + (i % 7) * 0.1;
        momentum[i] = (i % 5) * 0.2;
        energy[i] = 2.0 + (i % 3) * 0.3;
        for (int n = 0; n < 4; n++)
            neighbours[i * 4 + n] = (i + n * 11 + 1) % 144;
    }
    factor = 0.15;
    for (int t = 0; t < 6; t++) {
        compute_fluxes();
        apply_fluxes();
    }
    double cs = 0.0;
    for (int i = 0; i < 144; i++)
        cs += density[i] + momentum[i] * 0.5 + energy[i] * 0.25;
    print_f64(cs);
    return 0;
}
""")

HOTSPOT = Workload(
    name="hotspot", suite="Rodinia",
    description="thermal simulation stencil with power input",
    paper=PaperRow(2, "GPU", (2.78, 71.57), (92.60, 0.89), 2, 1, 1,
                   has_manual_parallelization=True),
    source=r"""
/* hotspot, 28x28 grid, T=10: ping-pong stencil in a time loop. */
double temp[28][28];
double power[28][28];
double next[28][28];

void step(void) {
    for (int i = 1; i < 27; i++)
        for (int j = 1; j < 27; j++)
            next[i][j] = temp[i][j]
                + 0.1 * (temp[i - 1][j] + temp[i + 1][j]
                         + temp[i][j - 1] + temp[i][j + 1]
                         - 4.0 * temp[i][j])
                + 0.05 * power[i][j];
    for (int i = 1; i < 27; i++)
        for (int j = 1; j < 27; j++)
            temp[i][j] = next[i][j];
}

int main(void) {
    for (int i = 0; i < 28; i++)
        for (int j = 0; j < 28; j++) {
            temp[i][j] = 328.0 + ((i * 3 + j) % 9) * 1.5;
            power[i][j] = ((i + j * 2) % 5) * 0.4;
        }
    for (int t = 0; t < 10; t++)
        step();
    double cs = 0.0;
    for (int i = 0; i < 28; i++)
        for (int j = 0; j < 28; j++)
            cs += temp[i][j] * ((i + j) % 3 + 1);
    print_f64(cs);
    return 0;
}
""")

KMEANS = Workload(
    name="kmeans", suite="Rodinia",
    description="k-means clustering (GPU assignment, CPU update)",
    paper=PaperRow(2, "Other", (0.65, 0.00), (10.84, 0.05), 2, 2, 2,
                   has_manual_parallelization=True),
    source=r"""
/* kmeans: 64 points, 4 features, 3 clusters, 3 iterations.
   The assignment step is DOALL over points; the centroid update is a
   sequential CPU scatter (paper: 'Other'-bound). */
double points[64][4];
double centroids[3][4];
double sums[3][4];
long counts[3];
long membership[64];

int main(void) {
    for (int i = 0; i < 64; i++)
        for (int f = 0; f < 4; f++)
            points[i][f] = ((i * 7 + f * 13) % 23) * 0.25;
    for (int c = 0; c < 3; c++)
        for (int f = 0; f < 4; f++)
            centroids[c][f] = points[c * 21][f];
    for (int iter = 0; iter < 4; iter++) {
        /* assignment: DOALL over points */
        for (int i = 0; i < 64; i++) {
            double best = 1.0e30;
            long best_c = 0;
            for (int c = 0; c < 3; c++) {
                double dist = 0.0;
                for (int f = 0; f < 4; f++) {
                    double d = points[i][f] - centroids[c][f];
                    dist += d * d;
                }
                if (dist < best) { best = dist; best_c = c; }
            }
            membership[i] = best_c;
        }
        /* update: sequential scatter on the CPU */
        for (int c = 0; c < 3; c++) {
            counts[c] = 0;
            for (int f = 0; f < 4; f++) sums[c][f] = 0.0;
        }
        for (int i = 0; i < 64; i++) {
            long c = membership[i];
            counts[c] = counts[c] + 1;
            for (int f = 0; f < 4; f++)
                sums[c][f] = sums[c][f] + points[i][f];
        }
        for (int c = 0; c < 3; c++)
            if (counts[c] > 0)
                for (int f = 0; f < 4; f++)
                    centroids[c][f] = sums[c][f] / counts[c];
    }
    double cs = 0.0;
    for (int i = 0; i < 64; i++) cs += membership[i] * (i % 5 + 1);
    for (int c = 0; c < 3; c++)
        for (int f = 0; f < 4; f++) cs += centroids[c][f];
    print_f64(cs);
    return 0;
}
""")

LUD = Workload(
    name="lud", suite="Rodinia",
    description="dense LU decomposition (Rodinia variant)",
    paper=PaperRow(6, "GPU", (3.77, 63.57), (91.56, 0.39), 6, 1, 1,
                   has_manual_parallelization=True),
    source=r"""
/* lud, 20x20, heap-allocated matrix (Rodinia style): staged pivot
   row/column keep the update DOALL; only CGCM can manage the
   malloc'd unit. */
double rowk[20];
double colk[20];
double pivot;

int main(void) {
    double *A = (double *) malloc(20 * 20 * sizeof(double));
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++) {
            A[i * 20 + j] = ((i * 5 + j * 7) % 13) * 0.3;
            if (i == j) A[i * 20 + j] = A[i * 20 + j] + 20.0;
        }
    for (int k = 0; k < 20; k++) {
        pivot = A[k * 20 + k];
        for (int j = k + 1; j < 20; j++)
            rowk[j] = A[k * 20 + j];
        for (int i = k + 1; i < 20; i++)
            colk[i] = A[i * 20 + k] / pivot;
        for (int i = k + 1; i < 20; i++)
            A[i * 20 + k] = colk[i];
        for (int i = k + 1; i < 20; i++)
            for (int j = k + 1; j < 20; j++)
                A[i * 20 + j] = A[i * 20 + j] - colk[i] * rowk[j];
    }
    double cs = 0.0;
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++)
            cs += A[i * 20 + j] * ((i * 3 + j) % 7 + 1);
    print_f64(cs);
    free(A);
    return 0;
}
""")

NW = Workload(
    name="nw", suite="Rodinia",
    description="Needleman-Wunsch sequence alignment (wavefront DP)",
    paper=PaperRow(4, "Other", (0.00, 2.44), (100.00, 24.19), 4, 2, 2,
                   has_manual_parallelization=True),
    source=r"""
/* nw, 24x24 DP matrix on the heap: anti-diagonal wavefronts are
   DOALL; each diagonal is a (tiny) kernel launch, so communication
   dominates before optimization (paper: 1126x slowdown unoptimized). */
double similarity[24][24];

double fmax3(double a, double b, double c) {
    double m = a;
    if (b > m) m = b;
    if (c > m) m = c;
    return m;
}

int main(void) {
    double *score = (double *) malloc(24 * 24 * sizeof(double));
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            similarity[i][j] = ((i * 13 + j * 7) % 9) * 0.5 - 2.0;
    for (int i = 0; i < 24; i++) {
        score[i * 24] = -1.0 * i;
        score[i] = -1.0 * i;
    }
    /* upper-left triangle of anti-diagonals */
    for (int d = 2; d < 24; d++) {
        for (int t = 1; t < d; t++) {
            score[t * 24 + d - t] = fmax3(
                score[(t - 1) * 24 + d - t - 1] + similarity[t][d - t],
                score[(t - 1) * 24 + d - t] - 1.0,
                score[t * 24 + d - t - 1] - 1.0);
        }
    }
    /* lower-right triangle */
    for (int d = 24; d < 47; d++) {
        for (int t = d - 23; t < 24; t++) {
            score[t * 24 + d - t] = fmax3(
                score[(t - 1) * 24 + d - t - 1] + similarity[t][d - t],
                score[(t - 1) * 24 + d - t] - 1.0,
                score[t * 24 + d - t - 1] - 1.0);
        }
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i++)
        cs += score[i * 24 + 23 - i % 3] * (i % 4 + 1);
    print_f64(cs);
    free(score);
    return 0;
}
""")

SRAD = Workload(
    name="srad", suite="Rodinia",
    description="speckle-reducing anisotropic diffusion",
    paper=PaperRow(6, "Other", (0.00, 27.08), (100.00, 6.20), 6, 1, 1,
                   has_manual_parallelization=True),
    source=r"""
/* srad, 20x20, T=6: heap-allocated image (Rodinia style); per-step
   global statistics (a sequential reduction -- glue-kernel bait) feed
   the diffusion kernels; the update reads pre-saved deltas (paper:
   4437x slowdown unoptimized). */
double q0sqr;
double *image;
double *coeff;
double *delta;

int main(void) {
    image = (double *) malloc(20 * 20 * sizeof(double));
    coeff = (double *) malloc(20 * 20 * sizeof(double));
    delta = (double *) malloc(20 * 20 * sizeof(double));
    /* acquire and log-compress the image: a sequential scanline
       recurrence stands in for the real application's file IO */
    double scan = 0.31;
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++) {
            scan = scan * 3.7 * (1.0 - scan);
            image[i * 20 + j] = exp(1.0 + scan * 0.5);
        }
    for (int t = 0; t < 6; t++) {
        /* statistics over a seed region (sequential reduction) */
        double sum = 0.0;
        double sum2 = 0.0;
        for (int i = 2; i < 18; i++) {
            sum += image[i * 20 + 6];
            sum2 += image[i * 20 + 6] * image[i * 20 + 6];
        }
        q0sqr = (sum2 / 16.0 - (sum / 16.0) * (sum / 16.0))
            / ((sum / 16.0) * (sum / 16.0) + 0.01);
        /* diffusion coefficient and saved delta (DOALL) */
        for (int i = 1; i < 19; i++)
            for (int j = 1; j < 19; j++) {
                double gx = image[(i + 1) * 20 + j]
                    - image[(i - 1) * 20 + j];
                double gy = image[i * 20 + j + 1]
                    - image[i * 20 + j - 1];
                double g2 = (gx * gx + gy * gy)
                    / (image[i * 20 + j] * image[i * 20 + j] + 0.01);
                coeff[i * 20 + j] = 1.0 / (1.0 + fabs(g2 - q0sqr)
                                           / (1.0 + q0sqr));
                delta[i * 20 + j] = image[(i + 1) * 20 + j]
                    + image[(i - 1) * 20 + j]
                    + image[i * 20 + j + 1] + image[i * 20 + j - 1]
                    - 4.0 * image[i * 20 + j];
            }
        /* update from the saved deltas (DOALL: no neighbour reads) */
        for (int i = 1; i < 19; i++)
            for (int j = 1; j < 19; j++)
                image[i * 20 + j] = image[i * 20 + j]
                    + 0.125 * coeff[i * 20 + j] * delta[i * 20 + j];
    }
    double cs = 0.0;
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++)
            cs += image[i * 20 + j] * ((i + j * 2) % 5 + 1);
    print_f64(cs);
    return 0;
}
""")

RODINIA = [CFD, HOTSPOT, KMEANS, LUD, NW, SRAD]
