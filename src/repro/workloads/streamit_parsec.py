"""The StreamIt (fm) and PARSEC (blackscholes) programs.

Both are Amdahl-limited in the paper: large sequential CPU phases
surround modest parallel kernels, so whole-program speedup saturates
near 1x even with perfect communication.
"""

from __future__ import annotations

from .data import PaperRow, Workload

FM = Workload(
    name="fm", suite="StreamIt",
    description="FM radio: synthesis, FIR low-pass, demodulation, EQ",
    paper=PaperRow(4, "Other", (0.00, 0.00), (0.00, 0.00), 4, 4, 4),
    source=r"""
/* fm: 1024 samples, 12-tap FIR, 2 equalizer bands.  Signal
   synthesis and FM demodulation are phase recurrences (inherently
   sequential, like the StreamIt pipeline's stateful filters); only
   the FIR stages are DOALL -- the program stays CPU-bound (paper:
   'Other', ~0% GPU and comm). */
double samples[1036];
double lowpassed[1024];
double demodulated[1024];
double band_low[1024];
double band_high[1024];
double output[1024];
double taps_low[12];
double taps_high[12];

int main(void) {
    /* synthesize the RF samples: sequential phase accumulator */
    double phase = 0.0;
    for (int i = 0; i < 1036; i++) {
        phase = phase + 0.05 + 0.01 * ((i % 13) - 6);
        if (phase > 6.2831853) phase = phase - 6.2831853;
        samples[i] = sin(phase) + 0.1 * cos(3.0 * phase);
    }
    for (int t = 0; t < 12; t++) {
        taps_low[t] = 1.0 / (1.0 + t);
        taps_high[t] = (t % 2 == 0) ? 0.5 / (1.0 + t) : -0.5 / (1.0 + t);
    }
    /* FIR low-pass (DOALL over output samples) */
    for (int i = 0; i < 1024; i++) {
        double acc = 0.0;
        for (int t = 0; t < 12; t++)
            acc += samples[i + t] * taps_low[t];
        lowpassed[i] = acc;
    }
    /* FM demodulation: phase-difference recurrence (sequential) */
    double prev = lowpassed[0];
    for (int i = 0; i < 1024; i++) {
        double current = lowpassed[i];
        demodulated[i] = atan(current * prev) * 2.5;
        prev = current * 0.7 + prev * 0.3;
    }
    /* two equalizer bands (DOALL each) */
    for (int i = 0; i < 1012; i++) {
        double acc = 0.0;
        for (int t = 0; t < 12; t++)
            acc += demodulated[i + t] * taps_low[t];
        band_low[i] = acc;
    }
    for (int i = 0; i < 1012; i++) {
        double acc = 0.0;
        for (int t = 0; t < 12; t++)
            acc += demodulated[i + t] * taps_high[t];
        band_high[i] = acc;
    }
    /* combine (DOALL) */
    for (int i = 0; i < 1012; i++)
        output[i] = band_low[i] * 0.6 + band_high[i] * 0.4;
    double cs = 0.0;
    for (int i = 0; i < 1012; i += 4) cs += output[i] * (i % 7 + 1);
    print_f64(cs);
    return 0;
}
""")

BLACKSCHOLES = Workload(
    name="blackscholes", suite="PARSEC",
    description="Black-Scholes option pricing",
    paper=PaperRow(1, "Other", (1.74, 3.23), (45.84, 0.96), 1, 1, 0),
    source=r"""
/* blackscholes: 512 heap-allocated options priced over 4 rounds.
   Parsing each option from its "record" and the final validation are
   sequential CPU phases, so the whole program is Amdahl-limited
   (paper: 'Other'; named regions handle 0 of its 1 kernel because the
   portfolio lives on the heap). */
double *spot;
double *strike;
double *rate;
double *volatility;
double *expiry;
double *prices;

double cndf(double x) {
    double ax = fabs(x);
    double k = 1.0 / (1.0 + 0.2316419 * ax);
    double w = 1.0 - 0.39894228 * exp(-0.5 * x * x)
        * (0.31938153 * k - 0.356563782 * k * k
           + 1.781477937 * k * k * k);
    if (x < 0.0) return 1.0 - w;
    return w;
}

int main(void) {
    spot = (double *) malloc(512 * sizeof(double));
    strike = (double *) malloc(512 * sizeof(double));
    rate = (double *) malloc(512 * sizeof(double));
    volatility = (double *) malloc(512 * sizeof(double));
    expiry = (double *) malloc(512 * sizeof(double));
    prices = (double *) malloc(512 * sizeof(double));
    /* "parse" the portfolio: a sequential recurrence models the IO
       and record decoding of the PARSEC input file */
    double seed = 0.37;
    for (int i = 0; i < 512; i++) {
        seed = seed * 3.9 * (1.0 - seed);   /* logistic map */
        double field1 = seed;
        seed = seed * 3.9 * (1.0 - seed);
        double field2 = seed;
        seed = seed * 3.9 * (1.0 - seed);
        double field3 = seed;
        spot[i] = 20.0 + field1 * 80.0;
        strike[i] = 20.0 + field2 * 80.0;
        rate[i] = 0.01 + field3 * 0.004;
        volatility[i] = 0.10 + 0.01 * (i % 9);
        expiry[i] = 0.25 + 0.125 * (i % 5);
    }
    for (int round = 0; round < 4; round++) {
        for (int i = 0; i < 512; i++) {
            double d1 = (log(spot[i] / strike[i])
                         + (rate[i]
                            + 0.5 * volatility[i] * volatility[i])
                         * expiry[i])
                / (volatility[i] * sqrt(expiry[i]));
            double d2 = d1 - volatility[i] * sqrt(expiry[i]);
            prices[i] = spot[i] * cndf(d1)
                - strike[i] * exp(-rate[i] * expiry[i]) * cndf(d2);
        }
    }
    /* sequential validation pass (running error accumulator) */
    double cs = 0.0;
    double prev = 0.0;
    for (int i = 0; i < 512; i++) {
        cs += prices[i] * (i % 5 + 1) + prev * 0.01;
        prev = prices[i] * 0.5 + prev * 0.5;
    }
    print_f64(cs);
    return 0;
}
""")

STREAMIT = [FM]
PARSEC = [BLACKSCHOLES]
