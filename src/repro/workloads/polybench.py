"""The 16 PolyBench programs, ported to MiniC.

PolyBench kernels are dense linear-algebra and stencil micro-benchmarks
with file-scope global arrays -- exactly the shape the paper's Table 3
evaluates.  Problem sizes are scaled down (the interpreter is Python
and timing is modelled), which preserves the communication *pattern*:
which allocation units cross the bus, per kernel invocation.

Each program ends with a checksum over its outputs printed via
``print_f64``; the harness compares checksums across configurations.
"""

from __future__ import annotations

from .data import PaperRow, Workload

GEMM = Workload(
    name="gemm", suite="PolyBench",
    description="C = alpha*A*B + beta*C (matrix multiply)",
    paper=PaperRow(4, "GPU", (73.49, 73.76), (19.69, 19.49), 4, 4, 4),
    source=r"""
/* gemm, N = 32 */
double A[32][32];
double B[32][32];
double C[32][32];
double alpha;
double beta;

void multiply(void) {
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) {
            double acc = 0.0;
            for (int k = 0; k < 32; k++)
                acc += alpha * A[i][k] * B[k][j];
            C[i][j] = C[i][j] * beta + acc;
        }
    }
}

int main(void) {
    alpha = 1.5;
    beta = 1.2;
    for (int i = 0; i < 32; i++)
        for (int j = 0; j < 32; j++) {
            A[i][j] = (i * j + 1) % 7 * 0.25;
            B[i][j] = (i + j * 2) % 9 * 0.5;
            C[i][j] = (i - j) * 0.125;
        }
    for (int rep = 0; rep < 4; rep++)
        multiply();
    double cs = 0.0;
    for (int i = 0; i < 32; i += 2)
        for (int j = 0; j < 32; j += 2)
            cs += C[i][j] * ((i + 2 * j) % 5 + 1);
    print_f64(cs);
    return 0;
}
""")

TWO_MM = Workload(
    name="2mm", suite="PolyBench",
    description="D = alpha*A*B*C + beta*D (two matrix multiplies)",
    paper=PaperRow(7, "GPU", (75.53, 77.25), (17.96, 18.25), 7, 7, 7),
    source=r"""
/* 2mm, N = 28 */
double A[28][28];
double B[28][28];
double C[28][28];
double D[28][28];
double tmp[28][28];

int main(void) {
    for (int i = 0; i < 28; i++)
        for (int j = 0; j < 28; j++) {
            A[i][j] = (i * 3 + j) % 5 * 0.5;
            B[i][j] = (i + j * 2) % 7 * 0.25;
            C[i][j] = (i * j + 3) % 4 * 0.75;
            D[i][j] = (i + j) % 3 * 1.5;
        }
    for (int rep = 0; rep < 3; rep++) {
    /* tmp = alpha * A * B */
    for (int i = 0; i < 28; i++)
        for (int j = 0; j < 28; j++) {
            double acc = 0.0;
            for (int k = 0; k < 28; k++)
                acc += 1.25 * A[i][k] * B[k][j];
            tmp[i][j] = acc;
        }
    /* D = tmp * C + beta * D */
    for (int i = 0; i < 28; i++)
        for (int j = 0; j < 28; j++) {
            double acc = D[i][j] * 1.05;
            for (int k = 0; k < 28; k++)
                acc += tmp[i][k] * C[k][j];
            D[i][j] = acc;
        }
    }
    double cs = 0.0;
    for (int i = 0; i < 28; i += 2)
        for (int j = 0; j < 28; j += 2)
            cs += D[i][j] * ((i * 2 + j) % 6 + 1);
    print_f64(cs);
    return 0;
}
""")

THREE_MM = Workload(
    name="3mm", suite="PolyBench",
    description="G = (A*B) * (C*D) (three matrix multiplies)",
    paper=PaperRow(10, "GPU", (78.75, 79.29), (17.86, 17.85), 10, 10, 10),
    source=r"""
/* 3mm, N = 24 */
double A[24][24];
double B[24][24];
double C[24][24];
double D[24][24];
double E[24][24];
double F[24][24];
double G[24][24];

int main(void) {
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++) {
            A[i][j] = (i * j + 1) % 5 * 0.4;
            B[i][j] = (i + j) % 7 * 0.3;
            C[i][j] = (i * 2 + j) % 4 * 0.6;
            D[i][j] = (i + j * 3) % 6 * 0.2;
        }
    for (int rep = 0; rep < 3; rep++) {
    /* E = A * B */
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++) {
            double acc = 0.0;
            for (int k = 0; k < 24; k++)
                acc += A[i][k] * B[k][j];
            E[i][j] = acc;
        }
    /* F = C * D */
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++) {
            double acc = 0.0;
            for (int k = 0; k < 24; k++)
                acc += C[i][k] * D[k][j];
            F[i][j] = acc;
        }
    /* G = E * F */
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++) {
            double acc = 0.0;
            for (int k = 0; k < 24; k++)
                acc += E[i][k] * F[k][j];
            G[i][j] = acc;
        }
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i += 2)
        for (int j = 0; j < 24; j += 2)
            cs += G[i][j] * ((i + j) % 5 + 1);
    print_f64(cs);
    return 0;
}
""")

ATAX = Workload(
    name="atax", suite="PolyBench",
    description="y = A^T (A x) (matrix transpose-vector products)",
    paper=PaperRow(3, "Comm.", (0.28, 0.28), (98.20, 98.44), 3, 3, 3),
    source=r"""
/* atax, N = 24: the y-accumulation launches one small kernel per row,
   so communication dominates (paper: comm-bound). */
double A[24][24];
double x[24];
double y[24];
double tmp[24];

int main(void) {
    for (int i = 0; i < 24; i++) {
        x[i] = 1.0 + i * 0.1;
        y[i] = 0.0;
        for (int j = 0; j < 24; j++)
            A[i][j] = ((i + j * 3) % 11) * 0.125;
    }
    /* tmp = A x  (DOALL over rows) */
    for (int i = 0; i < 24; i++) {
        double acc = 0.0;
        for (int j = 0; j < 24; j++)
            acc += A[i][j] * x[j];
        tmp[i] = acc;
    }
    /* y += A^T tmp: the i loop carries y, its j body is DOALL */
    for (int i = 0; i < 24; i++) {
        for (int j = 0; j < 24; j++)
            y[j] = y[j] + A[i][j] * tmp[i];
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i++) cs += y[i] * (i % 4 + 1);
    print_f64(cs);
    return 0;
}
""")

BICG = Workload(
    name="bicg", suite="PolyBench",
    description="s = A^T r; q = A p (BiCG sub-kernels)",
    paper=PaperRow(2, "Comm.", (4.36, 4.46), (72.38, 74.15), 2, 2, 2),
    source=r"""
/* bicg, N = 24 */
double A[24][24];
double r[24];
double s[24];
double p[24];
double q[24];

int main(void) {
    for (int i = 0; i < 24; i++) {
        r[i] = i * 0.25 + 1.0;
        p[i] = (i % 5) * 0.5;
        s[i] = 0.0;
        for (int j = 0; j < 24; j++)
            A[i][j] = ((i * 2 + j) % 9) * 0.2;
    }
    /* s = A^T r: i loop accumulates, j body is DOALL */
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            s[j] = s[j] + r[i] * A[i][j];
    /* q = A p (DOALL over rows) */
    for (int i = 0; i < 24; i++) {
        double acc = 0.0;
        for (int j = 0; j < 24; j++)
            acc += A[i][j] * p[j];
        q[i] = acc;
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i++) cs += s[i] + q[i] * 0.5;
    print_f64(cs);
    return 0;
}
""")

GESUMMV = Workload(
    name="gesummv", suite="PolyBench",
    description="y = alpha*A*x + beta*B*x (summed matrix-vector)",
    paper=PaperRow(2, "Comm.", (6.17, 6.29), (86.17, 86.74), 2, 2, 2),
    source=r"""
/* gesummv, N = 24 */
double A[24][24];
double B[24][24];
double x[24];
double y[24];

int main(void) {
    for (int i = 0; i < 24; i++) {
        x[i] = (i % 7) * 0.3;
        for (int j = 0; j < 24; j++) {
            A[i][j] = ((i + j) % 8) * 0.25;
            B[i][j] = ((i * 3 + j) % 6) * 0.5;
        }
    }
    for (int i = 0; i < 24; i++) {
        double va = 0.0;
        double vb = 0.0;
        for (int j = 0; j < 24; j++) {
            va += A[i][j] * x[j];
            vb += B[i][j] * x[j];
        }
        y[i] = 1.5 * va + 1.2 * vb;
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i++) cs += y[i] * (i % 3 + 1);
    print_f64(cs);
    return 0;
}
""")

GEMVER = Workload(
    name="gemver", suite="PolyBench",
    description="rank-2 update + two transposed matrix-vector products",
    paper=PaperRow(5, "Comm.", (4.06, 4.10), (88.21, 89.36), 5, 5, 5),
    source=r"""
/* gemver, N = 24 */
double A[24][24];
double u1[24];
double v1[24];
double u2[24];
double v2[24];
double w[24];
double x[24];
double y[24];
double z[24];

int main(void) {
    for (int i = 0; i < 24; i++) {
        u1[i] = i * 0.5;
        u2[i] = (i + 1) * 0.25;
        v1[i] = (i % 4) * 0.75;
        v2[i] = (i % 6) * 0.4;
        y[i] = (i % 5) * 0.3;
        z[i] = (i % 3) * 0.2;
        x[i] = 0.0;
        w[i] = 0.0;
        for (int j = 0; j < 24; j++)
            A[i][j] = ((i * j + 2) % 10) * 0.1;
    }
    /* A += u1 v1^T + u2 v2^T */
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    /* x = beta * A^T y + z: DOALL over i with column reads */
    for (int i = 0; i < 24; i++) {
        double acc = 0.0;
        for (int j = 0; j < 24; j++)
            acc += A[j][i] * y[j];
        x[i] = 1.2 * acc + z[i];
    }
    /* w = alpha * A x */
    for (int i = 0; i < 24; i++) {
        double acc = 0.0;
        for (int j = 0; j < 24; j++)
            acc += A[i][j] * x[j];
        w[i] = 1.5 * acc;
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i++) cs += w[i] + x[i] * 0.5;
    print_f64(cs);
    return 0;
}
""")

DOITGEN = Workload(
    name="doitgen", suite="PolyBench",
    description="multi-resolution analysis kernel (3D tensor contraction)",
    paper=PaperRow(3, "GPU", (87.48, 87.52), (11.29, 11.20), 3, 3, 3),
    source=r"""
/* doitgen, R=Q=P=14.  The per-slice temporary lives in a helper's
   frame: alloca promotion hoists it so map promotion can climb. */
double A[14][14][14];
double C4[14][14];

void process_slice(long r) {
    double sum[14][14];
    for (int q = 0; q < 14; q++)
        for (int p = 0; p < 14; p++) {
            double acc = 0.0;
            for (int s = 0; s < 14; s++)
                acc += A[r][q][s] * C4[s][p];
            sum[q][p] = acc;
        }
    for (int q = 0; q < 14; q++)
        for (int p = 0; p < 14; p++)
            A[r][q][p] = sum[q][p];
}

int main(void) {
    for (int r = 0; r < 14; r++)
        for (int q = 0; q < 14; q++)
            for (int p = 0; p < 14; p++)
                A[r][q][p] = ((r + q * 2 + p) % 7) * 0.25;
    for (int s = 0; s < 14; s++)
        for (int p = 0; p < 14; p++)
            C4[s][p] = ((s * p + 1) % 5) * 0.5;
    for (int r = 0; r < 14; r++)
        process_slice(r);
    double cs = 0.0;
    for (int r = 0; r < 14; r++)
        for (int q = 0; q < 14; q++)
            for (int p = 0; p < 14; p++)
                cs += A[r][q][p] * ((r + q + p) % 3 + 1);
    print_f64(cs);
    return 0;
}
""")

COVARIANCE = Workload(
    name="covariance", suite="PolyBench",
    description="covariance matrix of a data set",
    paper=PaperRow(4, "GPU", (77.12, 77.28), (18.61, 18.43), 4, 4, 4),
    source=r"""
/* covariance, N(points)=24, M(vars)=24 */
double data[24][24];
double cov[24][24];
double mean[24];

int main(void) {
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            data[i][j] = ((i * 5 + j * 3) % 13) * 0.3;
    for (int rep = 0; rep < 3; rep++) {
    /* column means (DOALL over columns) */
    for (int j = 0; j < 24; j++) {
        double acc = 0.0;
        for (int i = 0; i < 24; i++)
            acc += data[i][j];
        mean[j] = acc / 24.0;
    }
    /* center the data */
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            data[i][j] = data[i][j] - mean[j];
    /* covariance (DOALL over rows of cov) */
    for (int j1 = 0; j1 < 24; j1++)
        for (int j2 = 0; j2 < 24; j2++) {
            double acc = 0.0;
            for (int i = 0; i < 24; i++)
                acc += data[i][j1] * data[i][j2];
            cov[j1][j2] = acc / 23.0;
        }
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            cs += cov[i][j] * ((i + j) % 4 + 1);
    print_f64(cs);
    return 0;
}
""")

CORRELATION = Workload(
    name="correlation", suite="PolyBench",
    description="correlation matrix of a data set",
    paper=PaperRow(5, "GPU", (87.49, 87.39), (10.17, 10.12), 5, 5, 5),
    source=r"""
/* correlation, 24x24 */
double data[24][24];
double corr[24][24];
double mean[24];
double stddev[24];

int main(void) {
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            data[i][j] = ((i * 7 + j * 5 + 3) % 17) * 0.2;
    for (int rep = 0; rep < 3; rep++) {
    for (int j = 0; j < 24; j++) {
        double acc = 0.0;
        for (int i = 0; i < 24; i++)
            acc += data[i][j];
        mean[j] = acc / 24.0;
    }
    for (int j = 0; j < 24; j++) {
        double acc = 0.0;
        for (int i = 0; i < 24; i++)
            acc += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
        double sd = sqrt(acc / 24.0);
        stddev[j] = (sd <= 0.1) ? 1.0 : sd;
    }
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            data[i][j] = (data[i][j] - mean[j])
                / (sqrt(24.0) * stddev[j]);
    for (int j1 = 0; j1 < 24; j1++)
        for (int j2 = 0; j2 < 24; j2++) {
            double acc = 0.0;
            for (int i = 0; i < 24; i++)
                acc += data[i][j1] * data[i][j2];
            corr[j1][j2] = acc;
        }
    }
    double cs = 0.0;
    for (int i = 0; i < 24; i++)
        for (int j = 0; j < 24; j++)
            cs += corr[i][j] * ((i * 2 + j) % 5 + 1);
    print_f64(cs);
    return 0;
}
""")

GRAMSCHMIDT = Workload(
    name="gramschmidt", suite="PolyBench",
    description="Gram-Schmidt QR decomposition",
    paper=PaperRow(3, "Comm.", (1.82, 8.37), (98.18, 90.91), 3, 3, 3),
    source=r"""
/* gramschmidt, 12x12.  Column norms and projections are sequential
   CPU reductions between the kernels: the communication pattern stays
   cyclic even after optimization (comm-bound; the one program where
   the idealized inspector-executor beat CGCM). */
double A[12][12];
double R[12][12];
double Q[12][12];

int main(void) {
    for (int i = 0; i < 12; i++)
        for (int j = 0; j < 12; j++)
            A[i][j] = ((i * j + i + 1) % 11) * 0.25 + 1.0;
    for (int k = 0; k < 12; k++) {
        double acc = 0.0;
        for (int i = 0; i < 12; i++)
            acc += A[i][k] * A[i][k];
        double nrm = sqrt(acc);
        R[k][k] = nrm;
        for (int i = 0; i < 12; i++)
            Q[i][k] = A[i][k] / nrm;
        for (int j = k + 1; j < 12; j++) {
            double dot = 0.0;
            for (int i = 0; i < 12; i++)
                dot += Q[i][k] * A[i][j];
            R[k][j] = dot;
            for (int i = 0; i < 12; i++)
                A[i][j] = A[i][j] - Q[i][k] * dot;
        }
    }
    double cs = 0.0;
    for (int i = 0; i < 12; i++)
        for (int j = 0; j < 12; j++)
            cs += Q[i][j] + R[i][j] * 0.5;
    print_f64(cs);
    return 0;
}
""")

JACOBI_2D = Workload(
    name="jacobi-2d-imper", suite="PolyBench",
    description="2D Jacobi stencil with time steps",
    paper=PaperRow(3, "GPU", (7.20, 95.97), (92.82, 3.32), 3, 3, 3),
    source=r"""
/* jacobi-2d-imper, 32x32, T=8: the classic map-promotion showcase. */
double A[32][32];
double B[32][32];

int main(void) {
    for (int i = 0; i < 32; i++)
        for (int j = 0; j < 32; j++)
            A[i][j] = ((i * 3 + j * 7) % 13) * 0.5;
    for (int t = 0; t < 8; t++) {
        for (int i = 1; i < 31; i++)
            for (int j = 1; j < 31; j++)
                B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1]
                                 + A[i - 1][j] + A[i + 1][j]);
        for (int i = 1; i < 31; i++)
            for (int j = 1; j < 31; j++)
                A[i][j] = B[i][j];
    }
    double cs = 0.0;
    for (int i = 0; i < 32; i++)
        for (int j = 0; j < 32; j++)
            cs += A[i][j] * ((i + j) % 7 + 1);
    print_f64(cs);
    return 0;
}
""")

SEIDEL = Workload(
    name="seidel", suite="PolyBench",
    description="Gauss-Seidel stencil (inherently sequential sweeps)",
    paper=PaperRow(1, "Other", (0.01, 0.01), (0.59, 0.59), 1, 1, 1),
    source=r"""
/* seidel, 16x16, T=3: the sweep is a true recurrence in both
   dimensions, so only the init loop is DOALL (paper: 1 kernel,
   'Other'-bound). */
double A[16][16];

int main(void) {
    for (int i = 0; i < 16; i++)
        for (int j = 0; j < 16; j++)
            A[i][j] = ((i * 5 + j + 2) % 9) * 0.75;
    for (int t = 0; t < 3; t++)
        for (int i = 1; i < 15; i++)
            for (int j = 1; j < 15; j++)
                A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                           + A[i][j - 1] + A[i][j] + A[i][j + 1]
                           + A[i + 1][j - 1] + A[i + 1][j]
                           + A[i + 1][j + 1]) / 9.0;
    double cs = 0.0;
    for (int i = 0; i < 16; i++)
        for (int j = 0; j < 16; j++)
            cs += A[i][j] * (i % 3 + 1);
    print_f64(cs);
    return 0;
}
""")

LU = Workload(
    name="lu", suite="PolyBench",
    description="LU decomposition (no pivoting)",
    paper=PaperRow(3, "GPU", (0.41, 88.05), (99.59, 7.02), 3, 2, 2),
    source=r"""
/* lu, 20x20.  The pivot row/column are staged through buffers so the
   update is provably DOALL; the pivot grab is glue-kernel bait. */
double A[20][20];
double rowk[20];
double colk[20];
double pivot;

int main(void) {
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++) {
            A[i][j] = ((i * 7 + j * 3) % 11) * 0.25;
            if (i == j) A[i][j] = A[i][j] + 20.0;
        }
    for (int k = 0; k < 20; k++) {
        pivot = A[k][k];
        for (int j = k + 1; j < 20; j++)
            rowk[j] = A[k][j] / pivot;
        for (int j = k + 1; j < 20; j++)
            A[k][j] = rowk[j];
        for (int i = k + 1; i < 20; i++)
            colk[i] = A[i][k];
        for (int i = k + 1; i < 20; i++)
            for (int j = k + 1; j < 20; j++)
                A[i][j] = A[i][j] - colk[i] * rowk[j];
    }
    double cs = 0.0;
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++)
            cs += A[i][j] * ((i + 2 * j) % 5 + 1);
    print_f64(cs);
    return 0;
}
""")

LUDCMP = Workload(
    name="ludcmp", suite="PolyBench",
    description="LU decomposition plus forward/backward substitution",
    paper=PaperRow(5, "GPU", (1.23, 87.38), (98.10, 4.13), 5, 3, 3),
    source=r"""
/* ludcmp, 20x20: LU factorization plus a triangular solve.  The
   substitutions are sequential recurrences and stay on the CPU. */
double A[20][20];
double b[20];
double x[20];
double y[20];
double rowk[20];
double colk[20];
double pivot;

int main(void) {
    for (int i = 0; i < 20; i++) {
        b[i] = (i % 5) * 0.5 + 1.0;
        for (int j = 0; j < 20; j++) {
            A[i][j] = ((i * 3 + j * 5) % 13) * 0.2;
            if (i == j) A[i][j] = A[i][j] + 10.0;
        }
    }
    for (int k = 0; k < 20; k++) {
        pivot = A[k][k];
        for (int i = k + 1; i < 20; i++)
            colk[i] = A[i][k] / pivot;
        for (int i = k + 1; i < 20; i++)
            A[i][k] = colk[i];
        for (int j = k; j < 20; j++)
            rowk[j] = A[k][j];
        for (int i = k + 1; i < 20; i++)
            for (int j = k + 1; j < 20; j++)
                A[i][j] = A[i][j] - colk[i] * rowk[j];
    }
    /* forward substitution: L y = b (sequential) */
    for (int i = 0; i < 20; i++) {
        double acc = b[i];
        for (int j = 0; j < i; j++)
            acc -= A[i][j] * y[j];
        y[i] = acc;
    }
    /* backward substitution: U x = y (sequential) */
    for (int i = 19; i >= 0; i--) {
        double acc = y[i];
        for (int j = i + 1; j < 20; j++)
            acc -= A[i][j] * x[j];
        x[i] = acc / A[i][i];
    }
    double cs = 0.0;
    for (int i = 0; i < 20; i++) cs += x[i] * (i % 4 + 1);
    print_f64(cs);
    return 0;
}
""")

ADI = Workload(
    name="adi", suite="PolyBench",
    description="alternating-direction implicit integration",
    paper=PaperRow(7, "GPU", (0.02, 100.00), (99.98, 0.00), 7, 7, 7),
    source=r"""
/* adi, 32x32, T=7: row sweeps (recurrence along j, DOALL over i) and
   column sweeps (recurrence along i, DOALL over j) inside a time
   loop; map promotion makes the whole thing GPU-resident. */
double X[32][32];
double B[32][32];

void row_sweep(void) {
    for (int i = 0; i < 32; i++) {
        for (int j = 1; j < 32; j++)
            X[i][j] = X[i][j] - X[i][j - 1] * 0.25 / B[i][j - 1];
        for (int j = 1; j < 32; j++)
            B[i][j] = B[i][j] - 0.0625 / B[i][j - 1];
    }
}

void column_sweep(void) {
    for (int j = 0; j < 32; j++) {
        for (int i = 1; i < 32; i++)
            X[i][j] = X[i][j] - X[i - 1][j] * 0.25 / B[i - 1][j];
        for (int i = 1; i < 32; i++)
            B[i][j] = B[i][j] - 0.0625 / B[i - 1][j];
    }
}

int main(void) {
    for (int i = 0; i < 32; i++)
        for (int j = 0; j < 32; j++) {
            X[i][j] = ((i + j * 2) % 9) * 0.3 + 1.0;
            B[i][j] = ((i * 2 + j) % 7) * 0.2 + 2.0;
        }
    for (int t = 0; t < 7; t++) {
        row_sweep();
        column_sweep();
    }
    double cs = 0.0;
    for (int i = 0; i < 32; i++)
        for (int j = 0; j < 32; j++)
            cs += X[i][j] + B[i][j] * 0.5;
    print_f64(cs);
    return 0;
}
""")

POLYBENCH = [
    ADI, ATAX, BICG, CORRELATION, COVARIANCE, DOITGEN, GEMM, GEMVER,
    GESUMMV, GRAMSCHMIDT, JACOBI_2D, SEIDEL, LU, LUDCMP, TWO_MM, THREE_MM,
]
