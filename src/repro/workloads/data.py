"""Workload metadata: the paper's Table 3 reference numbers.

``PaperRow`` records what the paper measured for each program so the
evaluation harness (and EXPERIMENTS.md) can print paper-vs-measured
side by side.  Percentages are of total execution time; applicability
counts are kernels manageable by each technique.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 3."""

    kernels: int
    limiting_factor: str                 # "GPU" | "Comm." | "Other"
    gpu_pct: Tuple[float, float]         # (unoptimized, optimized)
    comm_pct: Tuple[float, float]        # (unoptimized, optimized)
    applicable_cgcm: int
    applicable_inspector_executor: int
    applicable_named_regions: int
    has_manual_parallelization: bool = False


@dataclass(frozen=True)
class Workload:
    """One benchmark program: MiniC source plus paper reference data."""

    name: str
    suite: str                           # PolyBench/Rodinia/StreamIt/PARSEC
    description: str
    source: str
    paper: PaperRow

    def __repr__(self) -> str:
        return f"<Workload {self.name} ({self.suite})>"
