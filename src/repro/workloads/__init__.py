"""The 24 benchmark programs of the paper's evaluation (section 6.2).

16 PolyBench, 6 Rodinia, 1 StreamIt, 1 PARSEC -- all ported to MiniC
with scaled-down problem sizes (timing is modelled, so size changes
wall-clock, not shape).  Access them by name via :func:`get_workload`
or iterate :data:`ALL_WORKLOADS`.
"""

from .data import PaperRow, Workload
from .polybench import POLYBENCH
from .rodinia import RODINIA
from .streamit_parsec import PARSEC, STREAMIT

ALL_WORKLOADS = tuple(POLYBENCH + RODINIA + STREAMIT + PARSEC)

_BY_NAME = {w.name: w for w in ALL_WORKLOADS}


def get_workload(name: str) -> Workload:
    """Look up one of the 24 benchmarks by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") \
            from None


def workload_names() -> tuple:
    return tuple(w.name for w in ALL_WORKLOADS)


__all__ = ["PaperRow", "Workload", "ALL_WORKLOADS", "POLYBENCH", "RODINIA",
           "STREAMIT", "PARSEC", "get_workload", "workload_names"]
