"""MiniC frontend: lexer, parser, and lowering to IR."""

from .lexer import Token, tokenize, unescape_string
from .parser import MiniCParser, parse_minic
from .lowering import MiniCLowering, compile_minic

__all__ = [
    "Token", "tokenize", "unescape_string", "MiniCParser", "parse_minic",
    "MiniCLowering", "compile_minic",
]
