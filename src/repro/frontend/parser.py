"""Recursive-descent parser for MiniC.

Produces the AST in :mod:`repro.frontend.ast`.  Constant expressions
in array dimensions and global initializers are folded here so the
rest of the pipeline only sees literal sizes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import FrontendError
from . import ast
from .lexer import Token, tokenize, unescape_string

_TYPE_KEYWORDS = frozenset({
    "int", "long", "char", "float", "double", "void", "unsigned", "signed",
    "const", "struct", "static", "extern", "restrict",
})

#: Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                         "^=", "<<=", ">>="})


class MiniCParser:
    """Parses one MiniC translation unit."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.struct_names: set = set()

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise FrontendError(f"expected {want!r}, found {token.text!r}",
                                token.line, token.column)
        return self._advance()

    def _error(self, message: str) -> FrontendError:
        return FrontendError(message, self.current.line, self.current.column)

    # -- types -----------------------------------------------------------

    def _at_type(self) -> bool:
        token = self.current
        return token.kind == "keyword" and token.text in _TYPE_KEYWORDS

    def _parse_base_type(self) -> Tuple[str, bool]:
        """Parse type keywords; returns (base_name, is_const).

        Handles modifier soup like ``const unsigned long int`` by
        treating signedness as a no-op (MiniC integers are signed) and
        ``long``/``long long``/``long int`` as the same 64-bit type.
        """
        is_const = False
        base: Optional[str] = None
        saw_modifier = False
        while self._at_type():
            text = self._advance().text
            if text == "const":
                is_const = True
                saw_modifier = True
            elif text in ("static", "extern", "restrict",
                          "unsigned", "signed"):
                saw_modifier = True
            elif text == "struct":
                name = self._expect("ident").text
                base = f"struct {name}"
            elif text == "long":
                base = "long"  # long, long long, unsigned long, ...
            elif text == "int":
                if base is None:
                    base = "int"  # but keep 'long int' as long
            else:
                base = text
        if base is None:
            if not saw_modifier:
                raise self._error("expected a type")
            base = "int"
        return base, is_const

    def _parse_type_spec(self) -> ast.TypeSpec:
        base, is_const = self._parse_base_type()
        pointers = 0
        while self._accept("op", "*"):
            self._accept("keyword", "const")
            self._accept("keyword", "restrict")
            pointers += 1
        return ast.TypeSpec(base, pointers, (), is_const)

    def _parse_array_dims(self, allow_empty: bool = False) -> Tuple[int, ...]:
        dims: List[int] = []
        while self._accept("op", "["):
            if allow_empty and self._accept("op", "]"):
                dims.append(-1)  # inferred from the initializer
                continue
            dims.append(self._parse_constant_int())
            self._expect("op", "]")
        return tuple(dims)

    def _parse_constant_int(self) -> int:
        expr = self.parse_conditional()
        value = _fold_int(expr)
        if value is None:
            raise FrontendError("expected an integer constant expression",
                                expr.line)
        return value

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            if (self.current.kind == "keyword"
                    and self.current.text == "struct"
                    and self._peek().kind == "ident"
                    and self._peek(2).text == "{"):
                program.structs.append(self._parse_struct_def())
                continue
            is_kernel = bool(self._accept("keyword", "__global__"))
            type_spec = self._parse_type_spec()
            name = self._expect("ident").text
            if self.current.text == "(":
                program.functions.append(
                    self._parse_function(type_spec, name, is_kernel))
            else:
                if is_kernel:
                    raise self._error("__global__ applies to functions")
                self._parse_global_declarators(program, type_spec, name)
        return program

    def _parse_struct_def(self) -> ast.StructDef:
        line = self.current.line
        self._expect("keyword", "struct")
        name = self._expect("ident").text
        self.struct_names.add(name)
        self._expect("op", "{")
        fields: List[ast.Param] = []
        while not self._accept("op", "}"):
            field_type = self._parse_type_spec()
            while True:
                field_name = self._expect("ident").text
                dims = self._parse_array_dims()
                fields.append(ast.Param(
                    ast.TypeSpec(field_type.base, field_type.pointers, dims),
                    field_name, self.current.line))
                if not self._accept("op", ","):
                    break
            self._expect("op", ";")
        self._expect("op", ";")
        return ast.StructDef(name, fields, line)

    def _parse_global_declarators(self, program: ast.Program,
                                  first_type: ast.TypeSpec,
                                  first_name: str) -> None:
        type_spec, name = first_type, first_name
        while True:
            line = self.current.line
            dims = self._parse_array_dims(allow_empty=True)
            full = ast.TypeSpec(type_spec.base, type_spec.pointers, dims,
                                type_spec.is_const)
            init: Optional[ast.Expr] = None
            init_list = None
            if self._accept("op", "="):
                if self.current.text == "{":
                    init_list = self._parse_brace_list()
                else:
                    init = self.parse_assignment()
            program.globals.append(ast.GlobalDef(
                full, name, init, init_list, type_spec.is_const, line))
            if not self._accept("op", ","):
                break
            # Subsequent declarators share the base type, not pointers.
            pointers = 0
            while self._accept("op", "*"):
                pointers += 1
            type_spec = ast.TypeSpec(type_spec.base, pointers, (),
                                     type_spec.is_const)
            name = self._expect("ident").text
        self._expect("op", ";")

    def _parse_brace_list(self) -> list:
        self._expect("op", "{")
        items: list = []
        if not self._accept("op", "}"):
            while True:
                if self.current.text == "{":
                    items.append(self._parse_brace_list())
                else:
                    items.append(self.parse_assignment())
                if not self._accept("op", ","):
                    break
                # C99 6.7.8: a trailing comma before the closing brace
                # is part of the grammar, not another initializer.
                if self.current.text == "}":
                    break
            self._expect("op", "}")
        return items

    def _parse_function(self, return_type: ast.TypeSpec, name: str,
                        is_kernel: bool) -> ast.FunctionDef:
        line = self.current.line
        self._expect("op", "(")
        params: List[ast.Param] = []
        if not self._accept("op", ")"):
            if (self.current.kind == "keyword"
                    and self.current.text == "void"
                    and self._peek().text == ")"):
                self._advance()
            else:
                while True:
                    param_type = self._parse_type_spec()
                    param_name = self._expect("ident").text
                    dims = self._parse_array_dims(allow_empty=True)
                    if dims:
                        # Array parameters decay to pointers, as in C.
                        param_type = ast.TypeSpec(
                            param_type.base, param_type.pointers + 1,
                            dims[1:] if len(dims) > 1 else ())
                    params.append(ast.Param(param_type, param_name,
                                            self.current.line))
                    if not self._accept("op", ","):
                        break
            self._expect("op", ")")
        body: Optional[ast.Block] = None
        if not self._accept("op", ";"):
            body = self._parse_block()
        return ast.FunctionDef(return_type, name, params, body, is_kernel,
                               line)

    # -- statements -----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self.current.line
        self._expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self._accept("op", "}"):
            statements.append(self._parse_statement())
        return ast.Block(line, statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.text == "{":
            return self._parse_block()
        if token.kind == "keyword":
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "do":
                return self._parse_do_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                line = self._advance().line
                value = None
                if self.current.text != ";":
                    value = self.parse_expression()
                self._expect("op", ";")
                return ast.Return(line, value)
            if token.text == "break":
                line = self._advance().line
                self._expect("op", ";")
                return ast.Break(line)
            if token.text == "continue":
                line = self._advance().line
                self._expect("op", ";")
                return ast.Continue(line)
            if token.text in _TYPE_KEYWORDS:
                return self._parse_local_declaration()
        if self._accept("op", ";"):
            return ast.Block(token.line, [])
        line = token.line
        expr = self.parse_expression()
        self._expect("op", ";")
        return ast.ExprStmt(line, expr)

    def _parse_local_declaration(self) -> ast.Stmt:
        line = self.current.line
        base = self._parse_type_spec()
        declarations: List[ast.Stmt] = []
        type_spec = base
        while True:
            name = self._expect("ident").text
            dims = self._parse_array_dims()
            full = ast.TypeSpec(type_spec.base, type_spec.pointers, dims,
                                type_spec.is_const)
            init = None
            init_list = None
            if self._accept("op", "="):
                if self.current.text == "{":
                    init_list = [item for item in self._parse_brace_list()]
                else:
                    init = self.parse_assignment()
            declarations.append(ast.Declaration(line, full, name, init,
                                                init_list))
            if not self._accept("op", ","):
                break
            pointers = 0
            while self._accept("op", "*"):
                pointers += 1
            type_spec = ast.TypeSpec(base.base, pointers, (), base.is_const)
        self._expect("op", ";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.DeclGroup(line, declarations)

    def _parse_if(self) -> ast.If:
        line = self._expect("keyword", "if").line
        self._expect("op", "(")
        cond = self.parse_expression()
        self._expect("op", ")")
        then_body = self._parse_statement()
        else_body = None
        if self._accept("keyword", "else"):
            else_body = self._parse_statement()
        return ast.If(line, cond, then_body, else_body)

    def _parse_while(self) -> ast.While:
        line = self._expect("keyword", "while").line
        self._expect("op", "(")
        cond = self.parse_expression()
        self._expect("op", ")")
        return ast.While(line, cond, self._parse_statement())

    def _parse_do_while(self) -> ast.DoWhile:
        line = self._expect("keyword", "do").line
        body = self._parse_statement()
        self._expect("keyword", "while")
        self._expect("op", "(")
        cond = self.parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhile(line, body, cond)

    def _parse_for(self) -> ast.For:
        line = self._expect("keyword", "for").line
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self._accept("op", ";"):
            if self._at_type():
                init = self._parse_local_declaration()
            else:
                init = ast.ExprStmt(self.current.line,
                                    self.parse_expression())
                self._expect("op", ";")
        cond = None
        if self.current.text != ";":
            cond = self.parse_expression()
        self._expect("op", ";")
        step = None
        if self.current.text != ")":
            step = self.parse_expression()
        self._expect("op", ")")
        return ast.For(line, init, cond, step, self._parse_statement())

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self._accept("op", ","):
            right = self.parse_assignment()
            expr = ast.Binary(expr.line, ",", expr, right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        target = self.parse_conditional()
        token = self.current
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self._advance()
            value = self.parse_assignment()
            return ast.Assign(token.line, token.text, target, value)
        return target

    def parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept("op", "?"):
            if_true = self.parse_assignment()
            self._expect("op", ":")
            if_false = self.parse_conditional()
            return ast.Conditional(cond.line, cond, if_true, if_false)
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.current
            precedence = _BINARY_PRECEDENCE.get(token.text, 0) \
                if token.kind == "op" else 0
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(token.line, token.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op":
            if token.text in ("-", "!", "~"):
                self._advance()
                return ast.Unary(token.line, token.text, self._parse_unary())
            if token.text == "+":
                self._advance()
                return self._parse_unary()
            if token.text == "*":
                self._advance()
                return ast.Unary(token.line, "*", self._parse_unary())
            if token.text == "&":
                self._advance()
                return ast.Unary(token.line, "&", self._parse_unary())
            if token.text in ("++", "--"):
                self._advance()
                return ast.Unary(token.line, token.text, self._parse_unary())
            if token.text == "(" and self._starts_cast():
                self._advance()
                target = self._parse_type_spec()
                self._expect("op", ")")
                return ast.CastExpr(token.line, target, self._parse_unary())
        if token.kind == "keyword" and token.text == "sizeof":
            self._advance()
            self._expect("op", "(")
            if self._at_type():
                target = self._parse_type_spec()
                dims = self._parse_array_dims()
                if dims:
                    target = ast.TypeSpec(target.base, target.pointers, dims)
                self._expect("op", ")")
                return ast.SizeofExpr(token.line, target, None)
            operand = self.parse_expression()
            self._expect("op", ")")
            return ast.SizeofExpr(token.line, None, operand)
        return self._parse_postfix()

    def _starts_cast(self) -> bool:
        nxt = self._peek()
        return (nxt.kind == "keyword" and nxt.text in _TYPE_KEYWORDS
                and nxt.text not in ("static", "extern", "const"))

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.current
            if token.text == "[":
                self._advance()
                index = self.parse_expression()
                self._expect("op", "]")
                expr = ast.Index(token.line, expr, index)
            elif token.text == ".":
                self._advance()
                expr = ast.Member(token.line, expr,
                                  self._expect("ident").text, False)
            elif token.text == "->":
                self._advance()
                expr = ast.Member(token.line, expr,
                                  self._expect("ident").text, True)
            elif token.text in ("++", "--"):
                self._advance()
                expr = ast.Unary(token.line, "p" + token.text, expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self._advance()
            return ast.IntLiteral(token.line, int(token.text, 0))
        if token.kind == "float":
            self._advance()
            text = token.text
            is_single = text[-1] in "fF"
            if is_single:
                text = text[:-1]
            return ast.FloatLiteral(token.line, float(text), is_single)
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(token.line,
                                     unescape_string(token.text, token.line))
        if token.kind == "char":
            self._advance()
            return ast.CharLiteral(
                token.line, ord(unescape_string(token.text, token.line)))
        if token.kind == "keyword" and token.text == "__launch":
            self._advance()
            self._expect("op", "(")
            kernel = self._expect("ident").text
            self._expect("op", ",")
            grid = self.parse_assignment()
            args: List[ast.Expr] = []
            while self._accept("op", ","):
                args.append(self.parse_assignment())
            self._expect("op", ")")
            return ast.LaunchExpr(token.line, kernel, grid, args)
        if token.kind == "ident":
            self._advance()
            if self.current.text == "(":
                self._advance()
                args = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self._accept("op", ","):
                            break
                    self._expect("op", ")")
                return ast.CallExpr(token.line, token.text, args)
            return ast.NameRef(token.line, token.text)
        if token.text == "(":
            self._advance()
            expr = self.parse_expression()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token {token.text!r}")


def _fold_int(expr: ast.Expr) -> Optional[int]:
    """Fold a constant integer expression, or None if not constant."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.CharLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _fold_int(expr.operand)
        return -inner if inner is not None else None
    if isinstance(expr, ast.Binary):
        lhs = _fold_int(expr.lhs)
        rhs = _fold_int(expr.rhs)
        if lhs is None or rhs is None:
            return None
        ops = {"+": lambda: lhs + rhs, "-": lambda: lhs - rhs,
               "*": lambda: lhs * rhs, "/": lambda: lhs // rhs if rhs else None,
               "%": lambda: lhs % rhs if rhs else None,
               "<<": lambda: lhs << rhs, ">>": lambda: lhs >> rhs}
        fn = ops.get(expr.op)
        return fn() if fn else None
    return None


def parse_minic(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return MiniCParser(source).parse_program()
