"""Lexer for MiniC, the C subset the benchmarks are written in.

MiniC keeps the parts of C that make CGCM's problem hard -- raw
pointers, pointer arithmetic, aliasing, casts, jagged arrays, global
arrays -- and drops what the benchmarks do not need (preprocessor,
typedef, unions, bitfields).  Two extensions mirror CUDA C:

* ``__global__`` marks a kernel function (first parameter = thread id),
* ``__launch(kernel, grid, args...)`` spawns a kernel grid.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple

from ..errors import FrontendError

KEYWORDS = frozenset({
    "int", "long", "char", "float", "double", "void", "unsigned", "signed",
    "const", "static", "struct", "sizeof", "if", "else", "for", "while",
    "do", "return", "break", "continue", "__global__", "__launch",
    "extern", "restrict",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "<<", ">>", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]

_TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<ws>\s+)
    | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?|\d+[fF])
    | (?P<int>0[xX][0-9a-fA-F]+|\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<string>"(?:\\.|[^"\\])*")
    | (?P<char>'(?:\\.|[^'\\])')
    | (?P<op>""" + "|".join(re.escape(op) for op in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


class Token(NamedTuple):
    kind: str          # 'keyword' | 'ident' | 'int' | 'float' | 'string'
    #                   | 'char' | 'op' | 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source; raises :class:`FrontendError` on bad input."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise FrontendError(f"unexpected character {source[pos]!r}",
                                line, column)
        kind = match.lastgroup or ""
        text = match.group()
        column = pos - line_start + 1
        pos = match.end()
        if "\n" in text:
            line += text.count("\n")
            line_start = match.start() + text.rfind("\n") + 1
        if kind in ("ws", "comment"):
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"'}


def unescape_string(text: str, line: int = 0) -> str:
    """Decode a quoted string or char literal body."""
    body = text[1:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        char = body[i]
        if char == "\\":
            escape = body[i + 1]
            if escape not in _ESCAPES:
                raise FrontendError(f"unknown escape \\{escape}", line)
            out.append(_ESCAPES[escape])
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)
