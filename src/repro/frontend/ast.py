"""Abstract syntax tree for MiniC.

Nodes are plain dataclasses carrying source line numbers for error
reporting.  Types at this level are *syntactic* (:class:`TypeSpec`);
they are resolved to IR types during lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- type syntax -----------------------------------------------------------

@dataclass
class TypeSpec:
    """A declared C type: base name + pointer depth + array dims.

    ``base`` is one of ``char/int/long/float/double/void`` or
    ``struct <name>``; ``pointers`` counts ``*``; ``array_dims`` holds
    constant dimensions (outermost first) for array declarators.
    """

    base: str
    pointers: int = 0
    array_dims: Tuple[int, ...] = ()
    is_const: bool = False

    def with_pointer(self) -> "TypeSpec":
        return TypeSpec(self.base, self.pointers + 1, self.array_dims,
                        self.is_const)


# -- expressions ------------------------------------------------------------

@dataclass
class Expr:
    line: int = field(default=0, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0
    is_single: bool = False


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class CharLiteral(Expr):
    value: int = 0


@dataclass
class NameRef(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """op in {'-', '!', '~', '*', '&', '++', '--', 'p++', 'p--'}."""
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``target = value`` or compound ``target op= value``."""
    op: str = "="
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class LaunchExpr(Expr):
    """``__launch(kernel, grid, args...)``."""
    kernel: str = ""
    grid: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""
    base: Optional[Expr] = None
    field_name: str = ""
    arrow: bool = False


@dataclass
class CastExpr(Expr):
    target: Optional[TypeSpec] = None
    operand: Optional[Expr] = None


@dataclass
class SizeofExpr(Expr):
    target: Optional[TypeSpec] = None
    operand: Optional[Expr] = None


# -- statements ----------------------------------------------------------------

@dataclass
class Stmt:
    line: int = field(default=0, compare=False)


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Declaration(Stmt):
    """One local variable declaration (possibly with initializer)."""
    type_spec: Optional[TypeSpec] = None
    name: str = ""
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class DeclGroup(Stmt):
    """Several declarations from one statement (``int a, b;``); unlike
    a Block they share the enclosing scope."""
    declarations: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: Optional[Stmt] = None
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level -------------------------------------------------------------------

@dataclass
class Param:
    type_spec: TypeSpec
    name: str
    line: int = 0


@dataclass
class FunctionDef:
    return_type: TypeSpec
    name: str
    params: List[Param]
    body: Optional[Block]          # None for a prototype
    is_kernel: bool = False
    line: int = 0


@dataclass
class GlobalDef:
    type_spec: TypeSpec
    name: str
    init: Optional[Expr] = None
    init_list: Optional[list] = None   # nested lists of Expr for arrays
    is_const: bool = False
    line: int = 0


@dataclass
class StructDef:
    name: str
    fields: List[Param] = field(default_factory=list)
    line: int = 0


@dataclass
class Program:
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[GlobalDef] = field(default_factory=list)
    structs: List[StructDef] = field(default_factory=list)
