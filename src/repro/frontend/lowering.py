"""Lowering MiniC ASTs to IR (with integrated semantic checks).

The lowering follows clang ``-O0`` conventions: every mutable local
(including parameters) lives in an entry-block alloca; expressions are
lowered to registers with C's usual arithmetic conversions; ``&&``,
``||``, and ``?:`` become control flow.  MiniC's integer types are
``char`` (i8) and ``int``/``long`` (both i64); floats are ``float``
(f32) and ``double`` (f64).

The C type system is treated exactly as unreliably as the paper
treats it: casts between pointers and integers are unchecked, and the
IR types exist for layout, not for safety.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import FrontendError
from ..interp.externals import external_signatures
from ..ir import (ArrayType, BasicBlock, Constant, FloatType, Function,
                  FunctionType, GlobalRef, GlobalVariable, IRBuilder,
                  IntType, Module, PointerType, StructType, Type, Value,
                  VOID, F32, F64, I1, I8, I64, pointer_to)
from ..runtime.api import RUNTIME_SIGNATURES
from . import ast
from .parser import parse_minic

_BASE_TYPES = {
    "void": VOID, "char": I8, "int": I64, "long": I64,
    "float": F32, "double": F64,
}


class _Loaded(ast.Expr):
    """Internal AST shim: an already-computed lvalue.

    Compound assignment (``x += e``) must evaluate the target address
    exactly once; the shim feeds the precomputed address back through
    the normal binary-operator lowering.
    """

    def __init__(self, line: int, address: "Value", value_type: "Type"):
        super().__init__(line)
        self.address = address
        self.value_type = value_type


class _Variable:
    """One named binding: the address holding the value, plus its type."""

    __slots__ = ("pointer", "type", "is_global")

    def __init__(self, pointer: Value, type_: Type, is_global: bool = False):
        self.pointer = pointer
        self.type = type_
        self.is_global = is_global


class MiniCLowering:
    """Lowers one parsed MiniC program into an IR module."""

    def __init__(self, program: ast.Program, module_name: str = "minic"):
        self.program = program
        self.module = Module(module_name)
        self.builder = IRBuilder()
        self.structs: Dict[str, StructType] = {}
        self.scopes: List[Dict[str, _Variable]] = []
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []
        self.strings: Dict[str, GlobalVariable] = {}
        self._string_count = 0
        self._entry_block: Optional[BasicBlock] = None
        self._body_block: Optional[BasicBlock] = None
        self.current_fn: Optional[Function] = None
        self._known_externals = dict(external_signatures())
        self._known_externals.update(RUNTIME_SIGNATURES)

    # -- driver ------------------------------------------------------------

    def run(self) -> Module:
        for struct in self.program.structs:
            self._lower_struct(struct)
        for gdef in self.program.globals:
            self._lower_global(gdef)
        # Declare every function first so mutual references work.
        for fdef in self.program.functions:
            self._declare_function(fdef)
        for fdef in self.program.functions:
            if fdef.body is not None:
                self._lower_function(fdef)
        return self.module

    # -- types ---------------------------------------------------------------

    def resolve_type(self, spec: ast.TypeSpec, line: int = 0) -> Type:
        if spec.base.startswith("struct "):
            name = spec.base[len("struct "):]
            base = self.structs.get(name)
            if base is None:
                raise FrontendError(f"unknown struct {name!r}", line)
        else:
            base = _BASE_TYPES.get(spec.base)
            if base is None:
                raise FrontendError(f"unknown type {spec.base!r}", line)
        result: Type = base
        for _ in range(spec.pointers):
            result = pointer_to(result)
        for dim in reversed(spec.array_dims):
            if dim < 0:
                raise FrontendError(
                    "array dimension must be inferable here", line)
            result = ArrayType(result, dim)
        return result

    def _lower_struct(self, struct: ast.StructDef) -> None:
        fields = [(f.name, self.resolve_type(f.type_spec, f.line))
                  for f in struct.fields]
        self.structs[struct.name] = self.module.add_struct(
            StructType(struct.name, fields))

    # -- globals ----------------------------------------------------------------

    def _lower_global(self, gdef: ast.GlobalDef) -> None:
        spec = gdef.type_spec
        dims = list(spec.array_dims)
        if dims and dims[0] == -1:
            dims[0] = self._infer_dim(gdef, spec)
        resolved = self.resolve_type(
            ast.TypeSpec(spec.base, spec.pointers, tuple(dims)), gdef.line)
        init = self._constant_initializer(resolved, gdef.init,
                                          gdef.init_list, gdef.line)
        self.module.add_global(gdef.name, resolved, init, gdef.is_const)

    def _infer_dim(self, gdef: ast.GlobalDef, spec: ast.TypeSpec) -> int:
        if gdef.init_list is not None:
            return len(gdef.init_list)
        if isinstance(gdef.init, ast.StringLiteral):
            return len(gdef.init.value.encode("utf-8")) + 1
        raise FrontendError(
            f"global {gdef.name}: cannot infer array dimension", gdef.line)

    def _constant_initializer(self, type_: Type, init: Optional[ast.Expr],
                              init_list: Optional[list], line: int):
        if init is None and init_list is None:
            return None
        if init_list is not None:
            if isinstance(type_, ArrayType):
                return [self._constant_initializer(type_.element, item, None,
                                                   line)
                        if not isinstance(item, list)
                        else self._constant_initializer(type_.element, None,
                                                        item, line)
                        for item in init_list]
            if isinstance(type_, StructType):
                return [self._constant_initializer(field_type, item, None,
                                                   line)
                        if not isinstance(item, list)
                        else self._constant_initializer(field_type, None,
                                                        item, line)
                        for item, (_, field_type)
                        in zip(init_list, type_.fields)]
            raise FrontendError("brace initializer for scalar", line)
        return self._constant_scalar(type_, init, line)

    def _constant_scalar(self, type_: Type, expr: ast.Expr, line: int):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.CharLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._constant_scalar(type_, expr.operand, line)
            return -inner
        if isinstance(expr, ast.StringLiteral):
            if isinstance(type_, ArrayType) and type_.element == I8:
                return expr.value
            gv = self._intern_string(expr.value)
            return GlobalRef(gv.name)
        if isinstance(expr, ast.NameRef):
            if expr.name in self.module.globals:
                return GlobalRef(expr.name)
        raise FrontendError("global initializer must be constant", line)

    def _intern_string(self, text: str) -> GlobalVariable:
        gv = self.strings.get(text)
        if gv is None:
            name = f".str{self._string_count}"
            self._string_count += 1
            data = text.encode("utf-8")
            gv = self.module.add_global(name, ArrayType(I8, len(data) + 1),
                                        text, is_read_only=True)
            self.strings[text] = gv
        return gv

    # -- functions ------------------------------------------------------------------

    def _declare_function(self, fdef: ast.FunctionDef) -> None:
        if fdef.name in self.module.functions:
            return
        param_types = [self.resolve_type(p.type_spec, p.line)
                       for p in fdef.params]
        return_type = self.resolve_type(fdef.return_type, fdef.line)
        if fdef.is_kernel:
            if return_type != VOID:
                raise FrontendError(
                    f"kernel {fdef.name} must return void", fdef.line)
            if not param_types or param_types[0] != I64:
                raise FrontendError(
                    f"kernel {fdef.name}: first parameter must be the "
                    "thread id (long)", fdef.line)
        self.module.add_function(
            fdef.name, FunctionType(return_type, param_types),
            [p.name for p in fdef.params], fdef.is_kernel)

    def _lower_function(self, fdef: ast.FunctionDef) -> None:
        fn = self.module.get_function(fdef.name)
        self.current_fn = fn
        self._entry_block = fn.new_block("entry")
        self._body_block = fn.new_block("body")
        self.builder.position_at_end(self._body_block)
        self.scopes = [{}]
        # Spill every parameter to a stack slot (clang -O0 style).
        for arg in fn.args:
            slot = self._entry_alloca(arg.type, arg.name)
            self.builder.store(arg, slot)
            self.scopes[0][arg.name] = _Variable(slot, arg.type)
        self._lower_block(fdef.body)
        if not self.builder.block.is_terminated:
            self._emit_default_return(fn)
        entry_builder = IRBuilder(self._entry_block)
        entry_builder.br(self._body_block)
        self.current_fn = None

    def _emit_default_return(self, fn: Function) -> None:
        if fn.return_type == VOID:
            self.builder.ret()
        elif fn.return_type.is_float:
            self.builder.ret(self.builder.const(fn.return_type, 0.0))
        else:
            self.builder.ret(self.builder.const(fn.return_type, 0))

    def _entry_alloca(self, type_: Type, hint: str) -> Value:
        """Allocate a stack slot in the entry block."""
        assert self._entry_block is not None
        saved = self.builder.block
        self.builder.position_at_end(self._entry_block)
        slot = self.builder.alloca(type_, 1, "")
        slot.name = self.current_fn.unique_name(f"{hint}.addr")
        self.builder.position_at_end(saved)
        return slot

    # -- scopes ----------------------------------------------------------------------

    def _lookup(self, name: str, line: int) -> _Variable:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        gv = self.module.globals.get(name)
        if gv is not None:
            return _Variable(gv, gv.value_type, is_global=True)
        raise FrontendError(f"use of undeclared identifier {name!r}", line)

    # -- statements ---------------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        for stmt in block.statements:
            self._lower_statement(stmt)
            if self.builder.block.is_terminated:
                break  # unreachable code after return/break/continue
        self.scopes.pop()

    def _lower_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for declaration in stmt.declarations:
                self._lower_statement(declaration)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise FrontendError("break outside a loop", stmt.line)
            self.builder.br(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise FrontendError("continue outside a loop", stmt.line)
            self.builder.br(self.loop_stack[-1][0])
        else:
            raise FrontendError(f"cannot lower {type(stmt).__name__}",
                                stmt.line)

    def _lower_declaration(self, decl: ast.Declaration) -> None:
        spec = decl.type_spec
        type_ = self.resolve_type(spec, decl.line)
        slot = self._entry_alloca(type_, decl.name)
        self.scopes[-1][decl.name] = _Variable(slot, type_)
        if isinstance(decl.init, ast.StringLiteral) \
                and isinstance(type_, ArrayType) and type_.element == I8:
            # char buffer[N] = "text": copy bytes, zero-fill the rest.
            data = decl.init.value.encode("utf-8") + b"\x00"
            if len(data) > type_.count:
                raise FrontendError(
                    f"string initializer too long for {decl.name}",
                    decl.line)
            for index in range(type_.count):
                byte = data[index] if index < len(data) else 0
                element_ptr = self.builder.gep(slot, [0, index])
                self.builder.store(self.builder.const(I8, byte),
                                   element_ptr)
        elif decl.init is not None:
            value = self._rvalue(decl.init)
            self.builder.store(self._convert(value, type_, decl.line), slot)
        elif decl.init_list is not None:
            if not isinstance(type_, ArrayType):
                raise FrontendError("brace initializer for scalar",
                                    decl.line)
            for i, item in enumerate(decl.init_list):
                element_ptr = self.builder.gep(slot, [0, i])
                value = self._rvalue(item)
                self.builder.store(
                    self._convert(value, type_.element, decl.line),
                    element_ptr)

    def _lower_if(self, stmt: ast.If) -> None:
        fn = self.current_fn
        then_block = fn.new_block("if.then")
        else_block = fn.new_block("if.else") if stmt.else_body else None
        end_block = fn.new_block("if.end")
        cond = self._condition(stmt.cond)
        false_target = else_block if else_block is not None else end_block
        self.builder.cbr(cond, then_block, false_target)
        self.builder.position_at_end(then_block)
        self._lower_statement(stmt.then_body)
        if not self.builder.block.is_terminated:
            self.builder.br(end_block)
        if else_block is not None:
            self.builder.position_at_end(else_block)
            self._lower_statement(stmt.else_body)
            if not self.builder.block.is_terminated:
                self.builder.br(end_block)
        self.builder.position_at_end(end_block)

    def _lower_while(self, stmt: ast.While) -> None:
        fn = self.current_fn
        head = fn.new_block("while.head")
        body = fn.new_block("while.body")
        end = fn.new_block("while.end")
        self.builder.br(head)
        self.builder.position_at_end(head)
        self.builder.cbr(self._condition(stmt.cond), body, end)
        self.builder.position_at_end(body)
        self.loop_stack.append((head, end))
        self._lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(head)
        self.builder.position_at_end(end)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        fn = self.current_fn
        body = fn.new_block("do.body")
        head = fn.new_block("do.cond")
        end = fn.new_block("do.end")
        self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append((head, end))
        self._lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(head)
        self.builder.position_at_end(head)
        self.builder.cbr(self._condition(stmt.cond), body, end)
        self.builder.position_at_end(end)

    def _lower_for(self, stmt: ast.For) -> None:
        fn = self.current_fn
        self.scopes.append({})
        if stmt.init is not None:
            self._lower_statement(stmt.init)
        head = fn.new_block("for.head")
        body = fn.new_block("for.body")
        step = fn.new_block("for.step")
        end = fn.new_block("for.end")
        self.builder.br(head)
        self.builder.position_at_end(head)
        if stmt.cond is not None:
            self.builder.cbr(self._condition(stmt.cond), body, end)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append((step, end))
        self._lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.br(step)
        self.builder.position_at_end(step)
        if stmt.step is not None:
            self._rvalue(stmt.step)
        self.builder.br(head)
        self.builder.position_at_end(end)
        self.scopes.pop()

    def _lower_return(self, stmt: ast.Return) -> None:
        fn = self.current_fn
        if stmt.value is None:
            if fn.return_type != VOID:
                raise FrontendError(
                    f"{fn.name}: non-void function returns nothing",
                    stmt.line)
            self.builder.ret()
            return
        if fn.return_type == VOID:
            raise FrontendError(
                f"{fn.name}: void function returns a value", stmt.line)
        value = self._rvalue(stmt.value)
        self.builder.ret(self._convert(value, fn.return_type, stmt.line))

    # -- lvalues --------------------------------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> Tuple[Value, Type]:
        """Lower to (address, value type)."""
        if isinstance(expr, ast.NameRef):
            var = self._lookup(expr.name, expr.line)
            return var.pointer, var.type
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self._rvalue(expr.operand)
            if not isinstance(pointer.type, PointerType):
                raise FrontendError("dereference of non-pointer", expr.line)
            return pointer, pointer.type.pointee
        if isinstance(expr, ast.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._member_lvalue(expr)
        raise FrontendError("expression is not assignable", expr.line)

    def _index_lvalue(self, expr: ast.Index) -> Tuple[Value, Type]:
        base_type = self._static_lvalue_type(expr.base)
        index = self._as_int(self._rvalue(expr.index), expr.line)
        if base_type is not None and isinstance(base_type, ArrayType):
            base_ptr, _ = self._lvalue(expr.base)
            element_ptr = self.builder.gep(base_ptr, [self.builder.i64(0),
                                                      index])
            return element_ptr, element_ptr.type.pointee
        pointer = self._rvalue(expr.base)
        if not isinstance(pointer.type, PointerType):
            raise FrontendError("subscript of non-pointer", expr.line)
        element_ptr = self.builder.gep(pointer, [index])
        return element_ptr, pointer.type.pointee

    def _member_lvalue(self, expr: ast.Member) -> Tuple[Value, Type]:
        if expr.arrow:
            base = self._rvalue(expr.base)
            if not isinstance(base.type, PointerType) or \
                    not isinstance(base.type.pointee, StructType):
                raise FrontendError("-> on non-struct-pointer", expr.line)
            struct = base.type.pointee
            base_ptr = base
        else:
            base_ptr, struct = self._lvalue(expr.base)
            if not isinstance(struct, StructType):
                raise FrontendError(". on non-struct", expr.line)
        index = struct.field_index(expr.field_name)
        field_ptr = self.builder.gep(base_ptr, [self.builder.i64(0),
                                                self.builder.i64(index)])
        return field_ptr, struct.fields[index][1]

    def _static_lvalue_type(self, expr: ast.Expr) -> Optional[Type]:
        """Type an lvalue expression without emitting code (best effort)."""
        if isinstance(expr, ast.NameRef):
            try:
                return self._lookup(expr.name, expr.line).type
            except FrontendError:
                return None
        if isinstance(expr, ast.Index):
            base = self._static_lvalue_type(expr.base)
            if isinstance(base, ArrayType):
                return base.element
            if isinstance(base, PointerType):
                return base.pointee
            return None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = self._static_lvalue_type(expr.operand)
            if isinstance(base, PointerType):
                return base.pointee
            return None
        if isinstance(expr, ast.Member):
            base = self._static_lvalue_type(expr.base)
            if expr.arrow and isinstance(base, PointerType):
                base = base.pointee
            if isinstance(base, StructType):
                try:
                    return base.fields[base.field_index(expr.field_name)][1]
                except KeyError:
                    return None
        return None

    # -- rvalues -----------------------------------------------------------------------------

    def _rvalue(self, expr: ast.Expr) -> Value:
        if isinstance(expr, _Loaded):
            return self._load_or_decay(expr.address, expr.value_type)
        if isinstance(expr, ast.IntLiteral):
            return self.builder.i64(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return self.builder.const(I8, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return self.builder.const(F32 if expr.is_single else F64,
                                      expr.value)
        if isinstance(expr, ast.StringLiteral):
            gv = self._intern_string(expr.value)
            return self.builder.gep(gv, [0, 0])
        if isinstance(expr, ast.NameRef):
            return self._load_variable(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, ast.LaunchExpr):
            return self._lower_launch(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            address, value_type = self._lvalue(expr)
            return self._load_or_decay(address, value_type)
        if isinstance(expr, ast.CastExpr):
            value = self._rvalue(expr.operand)
            target = self.resolve_type(expr.target, expr.line)
            return self._convert(value, target, expr.line, explicit=True)
        if isinstance(expr, ast.SizeofExpr):
            return self._lower_sizeof(expr)
        raise FrontendError(f"cannot lower {type(expr).__name__}", expr.line)

    def _load_variable(self, expr: ast.NameRef) -> Value:
        var = self._lookup(expr.name, expr.line)
        return self._load_or_decay(var.pointer, var.type)

    def _load_or_decay(self, address: Value, value_type: Type) -> Value:
        if isinstance(value_type, ArrayType):
            # Arrays decay to a pointer to their first element.
            return self.builder.gep(address, [0, 0])
        if isinstance(value_type, StructType):
            return address  # structs are manipulated by address
        return self.builder.load(address)

    def _lower_sizeof(self, expr: ast.SizeofExpr) -> Value:
        if expr.target is not None:
            type_ = self.resolve_type(expr.target, expr.line)
        else:
            type_ = self._static_lvalue_type(expr.operand)
            if type_ is None:
                raise FrontendError(
                    "sizeof(expression) needs a statically typed operand",
                    expr.line)
        return self.builder.i64(type_.size)

    def _lower_unary(self, expr: ast.Unary) -> Value:
        op = expr.op
        if op == "&":
            address, _ = self._lvalue(expr.operand)
            return address
        if op == "*":
            address, value_type = self._lvalue(expr)
            return self._load_or_decay(address, value_type)
        if op == "-":
            value = self._rvalue(expr.operand)
            value = self._promote_arith(value, expr.line)
            zero = self.builder.const(value.type, 0)
            return self.builder.sub(zero, value)
        if op == "~":
            value = self._as_int(self._rvalue(expr.operand), expr.line)
            return self.builder.binop("xor", value, -1)
        if op == "!":
            cond = self._condition(expr.operand)
            flipped = self.builder.binop(
                "xor", cond, self.builder.const(I1, 1))
            return self.builder.cast("zext", flipped, I64)
        if op in ("++", "--", "p++", "p--"):
            return self._lower_incdec(expr)
        raise FrontendError(f"unary {op}", expr.line)

    def _lower_incdec(self, expr: ast.Unary) -> Value:
        address, value_type = self._lvalue(expr.operand)
        old = self.builder.load(address)
        delta = 1 if expr.op in ("++", "p++") else -1
        if isinstance(value_type, PointerType):
            new = self.builder.gep(old, [delta])
        elif value_type.is_float:
            new = self.builder.add(old, self.builder.const(value_type,
                                                           float(delta)))
        else:
            new = self.builder.add(old, self.builder.const(value_type,
                                                           delta))
        self.builder.store(new, address)
        return old if expr.op.startswith("p") else new

    # -- binary operators ------------------------------------------------------

    def _lower_binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op == ",":
            self._rvalue(expr.lhs)
            return self._rvalue(expr.rhs)
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        lhs = self._rvalue(expr.lhs)
        rhs = self._rvalue(expr.rhs)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._lower_comparison(op, lhs, rhs, expr.line)
        if op in ("+", "-") and (lhs.type.is_pointer or rhs.type.is_pointer):
            return self._lower_pointer_arith(op, lhs, rhs, expr.line)
        lhs, rhs = self._usual_conversions(lhs, rhs, expr.line)
        ir_op = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                 "&": "and", "|": "or", "^": "xor", "<<": "shl",
                 ">>": "shr"}.get(op)
        if ir_op is None:
            raise FrontendError(f"binary {op}", expr.line)
        if ir_op in ("and", "or", "xor", "shl", "shr", "rem") \
                and lhs.type.is_float and op != "%":
            raise FrontendError(f"{op} requires integers", expr.line)
        if op == "%" and lhs.type.is_float:
            ir_op = "rem"
        return self.builder.binop(ir_op, lhs, rhs)

    def _lower_comparison(self, op: str, lhs: Value, rhs: Value,
                          line: int) -> Value:
        pred = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt",
                ">=": "ge"}[op]
        if lhs.type.is_pointer or rhs.type.is_pointer:
            lhs = self._pointer_as_int(lhs)
            rhs = self._pointer_as_int(rhs)
        lhs, rhs = self._usual_conversions(lhs, rhs, line)
        flag = self.builder.cmp(pred, lhs, rhs)
        return self.builder.cast("zext", flag, I64)

    def _pointer_as_int(self, value: Value) -> Value:
        if value.type.is_pointer:
            return self.builder.cast("ptrtoint", value, I64)
        return value

    def _lower_pointer_arith(self, op: str, lhs: Value, rhs: Value,
                             line: int) -> Value:
        if lhs.type.is_pointer and rhs.type.is_pointer:
            if op != "-":
                raise FrontendError("pointer + pointer", line)
            left = self.builder.cast("ptrtoint", lhs, I64)
            right = self.builder.cast("ptrtoint", rhs, I64)
            diff = self.builder.sub(left, right)
            element = lhs.type.pointee.size
            return self.builder.div(diff, element)
        if rhs.type.is_pointer:  # int + ptr
            lhs, rhs = rhs, lhs
        offset = self._as_int(rhs, line)
        if op == "-":
            offset = self.builder.sub(self.builder.i64(0),
                                      self.builder.int_cast(offset, I64))
        return self.builder.gep(lhs, [offset])

    def _lower_logical(self, expr: ast.Binary) -> Value:
        fn = self.current_fn
        result = self._entry_alloca(I64, "logical")
        rhs_block = fn.new_block("logic.rhs")
        end_block = fn.new_block("logic.end")
        lhs_cond = self._condition(expr.lhs)
        lhs_int = self.builder.cast("zext", lhs_cond, I64)
        self.builder.store(lhs_int, result)
        if expr.op == "&&":
            self.builder.cbr(lhs_cond, rhs_block, end_block)
        else:
            self.builder.cbr(lhs_cond, end_block, rhs_block)
        self.builder.position_at_end(rhs_block)
        rhs_cond = self._condition(expr.rhs)
        rhs_int = self.builder.cast("zext", rhs_cond, I64)
        self.builder.store(rhs_int, result)
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        return self.builder.load(result)

    def _lower_conditional(self, expr: ast.Conditional) -> Value:
        fn = self.current_fn
        true_block = fn.new_block("cond.true")
        false_block = fn.new_block("cond.false")
        end_block = fn.new_block("cond.end")
        cond = self._condition(expr.cond)
        self.builder.cbr(cond, true_block, false_block)

        self.builder.position_at_end(true_block)
        true_value = self._rvalue(expr.if_true)
        true_exit = self.builder.block

        self.builder.position_at_end(false_block)
        false_value = self._rvalue(expr.if_false)
        false_exit = self.builder.block

        # Unify the arm types, then funnel through a stack slot.
        target = self._common_type(true_value.type, false_value.type)
        result = self._entry_alloca(target, "cond")
        self.builder.position_at_end(true_exit)
        self.builder.store(self._convert(true_value, target, expr.line),
                           result)
        self.builder.br(end_block)
        self.builder.position_at_end(false_exit)
        self.builder.store(self._convert(false_value, target, expr.line),
                           result)
        self.builder.br(end_block)
        self.builder.position_at_end(end_block)
        return self.builder.load(result)

    def _lower_assign(self, expr: ast.Assign) -> Value:
        address, value_type = self._lvalue(expr.target)
        if expr.op == "=":
            value = self._rvalue(expr.value)
            converted = self._convert(value, value_type, expr.line)
            self.builder.store(converted, address)
            return converted
        # Compound assignment: load, operate, store.
        op = expr.op[:-1]
        synthetic = ast.Binary(expr.line, op, _Loaded(expr.line, address,
                                                      value_type),
                               expr.value)
        value = self._lower_binary(synthetic)
        converted = self._convert(value, value_type, expr.line)
        self.builder.store(converted, address)
        return converted

    def _lower_call(self, expr: ast.CallExpr) -> Value:
        callee = self.module.functions.get(expr.name)
        if callee is None:
            signature = self._known_externals.get(expr.name)
            if signature is None:
                raise FrontendError(f"call to unknown function "
                                    f"{expr.name!r}", expr.line)
            callee = self.module.declare_function(expr.name, signature)
        param_types = callee.type.param_types
        if len(expr.args) != len(param_types):
            raise FrontendError(
                f"{expr.name} expects {len(param_types)} arguments, got "
                f"{len(expr.args)}", expr.line)
        args = [self._convert(self._rvalue(arg), param, expr.line)
                for arg, param in zip(expr.args, param_types)]
        return self.builder.call(callee, args)

    def _lower_launch(self, expr: ast.LaunchExpr) -> Value:
        kernel = self.module.functions.get(expr.kernel)
        if kernel is None or not kernel.is_kernel:
            raise FrontendError(f"__launch of unknown kernel "
                                f"{expr.kernel!r}", expr.line)
        grid = self._convert(self._rvalue(expr.grid), I64, expr.line)
        param_types = kernel.type.param_types[1:]
        if len(expr.args) != len(param_types):
            raise FrontendError(
                f"kernel {expr.kernel} expects {len(param_types)} "
                f"arguments, got {len(expr.args)}", expr.line)
        args = [self._convert(self._rvalue(arg), param, expr.line)
                for arg, param in zip(expr.args, param_types)]
        self.builder.launch(kernel, grid, args)
        return self.builder.i64(0)

    # -- conditions and conversions ------------------------------------------

    def _condition(self, expr: ast.Expr) -> Value:
        """Lower an expression used as a branch condition to an i1."""
        if isinstance(expr, ast.Binary) and expr.op in (
                "==", "!=", "<", "<=", ">", ">="):
            lhs = self._rvalue(expr.lhs)
            rhs = self._rvalue(expr.rhs)
            pred = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                    ">": "gt", ">=": "ge"}[expr.op]
            if lhs.type.is_pointer or rhs.type.is_pointer:
                lhs = self._pointer_as_int(lhs)
                rhs = self._pointer_as_int(rhs)
            lhs, rhs = self._usual_conversions(lhs, rhs, expr.line)
            return self.builder.cmp(pred, lhs, rhs)
        if isinstance(expr, ast.Unary) and expr.op == "!":
            inner = self._condition(expr.operand)
            return self.builder.binop("xor", inner,
                                      self.builder.const(I1, 1))
        value = self._rvalue(expr)
        if value.type == I1:
            return value
        if value.type.is_float:
            zero = self.builder.const(value.type, 0.0)
            return self.builder.cmp("ne", value, zero)
        if value.type.is_pointer:
            value = self.builder.cast("ptrtoint", value, I64)
        return self.builder.cmp("ne", value,
                                self.builder.const(value.type, 0))

    def _as_int(self, value: Value, line: int) -> Value:
        if isinstance(value.type, IntType):
            return self.builder.int_cast(value, I64) \
                if value.type != I64 else value
        if value.type.is_float:
            return self.builder.cast("fptosi", value, I64)
        raise FrontendError(f"expected an integer, got {value.type}", line)

    def _promote_arith(self, value: Value, line: int) -> Value:
        if isinstance(value.type, IntType) and value.type.bits < 64:
            return self.builder.int_cast(value, I64)
        return value

    def _common_type(self, left: Type, right: Type) -> Type:
        if left == right:
            return left
        if left.is_pointer:
            return left
        if right.is_pointer:
            return right
        if F64 in (left, right):
            return F64
        if left.is_float or right.is_float:
            return F64 if F64 in (left, right) else F32
        return I64

    def _usual_conversions(self, lhs: Value, rhs: Value,
                           line: int) -> Tuple[Value, Value]:
        target = self._common_type(lhs.type, rhs.type)
        if target.is_pointer:
            raise FrontendError("invalid pointer arithmetic", line)
        return (self._convert(lhs, target, line),
                self._convert(rhs, target, line))

    def _convert(self, value: Value, target: Type, line: int,
                 explicit: bool = False) -> Value:
        source = value.type
        if source == target:
            return value
        builder = self.builder
        if isinstance(source, IntType) and isinstance(target, IntType):
            if source == I1:
                return builder.cast("zext", value, target)
            return builder.int_cast(value, target)
        if isinstance(source, IntType) and isinstance(target, FloatType):
            return builder.cast("sitofp",
                                builder.int_cast(value, I64)
                                if source != I64 else value, target)
        if isinstance(source, FloatType) and isinstance(target, IntType):
            as_int = builder.cast("fptosi", value, I64)
            return builder.int_cast(as_int, target) \
                if target != I64 else as_int
        if isinstance(source, FloatType) and isinstance(target, FloatType):
            kind = "fpext" if source.size < target.size else "fptrunc"
            return builder.cast(kind, value, target)
        if source.is_pointer and target.is_pointer:
            return builder.bitcast(value, target)
        if source.is_pointer and isinstance(target, IntType):
            as_int = builder.cast("ptrtoint", value, I64)
            return builder.int_cast(as_int, target) \
                if target != I64 else as_int
        if isinstance(source, IntType) and target.is_pointer:
            widened = builder.int_cast(value, I64) \
                if source != I64 else value
            return builder.cast("inttoptr", widened, target)
        raise FrontendError(f"cannot convert {source} to {target}", line)


def compile_minic(source: str, module_name: str = "minic") -> Module:
    """Front door: MiniC source text -> verified IR module."""
    from ..ir import verify_module

    program = parse_minic(source)
    module = MiniCLowering(program, module_name).run()
    verify_module(module)
    return module
