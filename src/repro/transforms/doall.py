"""The simple DOALL GPU parallelizer.

Finds counted loops whose iterations are provably independent and
outlines each into a GPU kernel, replacing the loop with a grid launch
(the paper couples CGCM with exactly such "a simple DOALL GPU
parallelization system", section 6.1).

Unlike CGCM itself, the parallelizer *does* need static analysis:

* the loop must be counted (canonical induction variable, invariant
  bounds, positive constant step, single exit);
* scalar locals are privatized (written-before-read each iteration) or
  passed by value (read-only); anything else rejects the loop;
* every remaining memory access gets an affine form over the loop nest
  and a pairwise cross-iteration conflict test (see
  :mod:`repro.analysis.affine`);
* calls are restricted to pure math externals and device-safe helpers.

Parallelization is outermost-first: when an outer loop qualifies, its
inner loops simply run inside each GPU thread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import TransformError
from ..interp.externals import GPU_SAFE
from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Compare,
                               Instruction, LaunchKernel, Load, Store)
from ..ir.module import Module
from ..ir.types import FunctionType, I64, VOID
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..analysis.affine import (AccessForm, AffineContext, IvRange,
                               access_form, conflicts_across_iterations)
from ..analysis.alias import may_alias_roots, underlying_objects
from ..analysis.loops import (CountedLoop, Loop, find_loops,
                              recognize_counted_loop)
from .outline import clone_region, erase_blocks


class _LoopPlan:
    """Everything needed to outline one DOALL loop."""

    def __init__(self, counted: CountedLoop):
        self.counted = counted
        self.body_blocks: List[BasicBlock] = []
        self.skip: Set[Instruction] = set()
        self.private_allocas: List[Alloca] = []
        self.value_params: List[Tuple[Alloca, Load]] = []
        self.live_ins: List[Value] = []


class DoallParallelizer:
    """Outlines DOALL loops of every CPU function into GPU kernels."""

    def __init__(self, module: Module):
        self.module = module
        self.kernels: List[Function] = []
        self._counter = 0

    def run(self) -> List[Function]:
        for fn in list(self.module.defined_functions()):
            if not fn.is_kernel:
                self._process_function(fn)
        return self.kernels

    def _process_function(self, fn: Function) -> None:
        changed = True
        while changed:
            changed = False
            loops = find_loops(fn)  # outermost first
            for loop in loops:
                plan = self._analyze(fn, loop)
                if plan is not None:
                    self._outline(fn, plan)
                    changed = True
                    break  # CFG changed; recompute the loop forest

    # -- legality analysis -------------------------------------------------

    def _analyze(self, fn: Function, loop: Loop) -> Optional[_LoopPlan]:
        counted = recognize_counted_loop(fn, loop)
        if counted is None:
            return None
        if counted.start.type != I64 or counted.end.type != I64:
            return None
        plan = _LoopPlan(counted)
        plan.body_blocks = [b for b in fn.blocks
                            if b in loop.blocks and b is not loop.header]
        for block in plan.body_blocks:
            for inst in block.instructions:
                if isinstance(inst, LaunchKernel):
                    return None  # no nested parallelism
                if isinstance(inst, Call) and not _device_safe_callee(
                        inst.callee):
                    return None
        plan.skip = self._induction_update_insts(counted, plan.body_blocks)
        if not self._classify_allocas(fn, loop, plan):
            return None
        if not self._dependence_test(fn, loop, plan):
            return None
        self._collect_live_ins(loop, plan)
        return plan

    def _induction_update_insts(self, counted: CountedLoop,
                                body_blocks: Sequence[BasicBlock]
                                ) -> Set[Instruction]:
        """The latch's ``i = i + step`` instructions, to omit from the
        kernel (the thread id replaces them)."""
        skip: Set[Instruction] = set()
        store = None
        for inst in counted.latch.instructions:
            if isinstance(inst, Store) and inst.pointer is counted.ivar:
                store = inst
        if store is None:
            return skip
        skip.add(store)
        add = store.value
        uses: Dict[Value, int] = {}
        for block in body_blocks:
            for inst in block.instructions:
                if inst in skip:
                    continue
                for operand in inst.operands:
                    uses[operand] = uses.get(operand, 0) + 1
        if isinstance(add, BinaryOp) and uses.get(add, 0) == 1:
            skip.add(add)
            for operand in (add.lhs, add.rhs):
                if isinstance(operand, Load) \
                        and operand.pointer is counted.ivar \
                        and uses.get(operand, 0) == 1:
                    skip.add(operand)
        return skip

    def _classify_allocas(self, fn: Function, loop: Loop,
                          plan: _LoopPlan) -> bool:
        counted = plan.counted
        alloca_uses = _collect_alloca_uses(fn)
        body_set = set(plan.body_blocks)
        for alloca, uses in alloca_uses.items():
            if alloca is counted.ivar:
                continue
            body_uses = [u for u in uses if u.parent in body_set
                         and u not in plan.skip]
            if not body_uses:
                continue
            if not _is_direct_scalar(alloca, uses):
                continue  # memory object: handled by the dependence test
            outside_uses = [u for u in uses
                            if u.parent not in loop.blocks]
            written_in_body = any(isinstance(u, Store) for u in body_uses)
            if not written_in_body:
                plan.value_params.append((alloca, body_uses[0]))
                continue
            if outside_uses:
                return False  # reduction or cross-iteration scalar
            if not _written_before_read(alloca, plan):
                return False
            plan.private_allocas.append(alloca)
        return True

    def _dependence_test(self, fn: Function, loop: Loop,
                         plan: _LoopPlan) -> bool:
        counted = plan.counted
        handled = {counted.ivar}
        handled.update(plan.private_allocas)
        handled.update(a for a, _ in plan.value_params)
        inner_ranges = _inner_iv_ranges(fn, loop)
        fixed_ranges = _enclosing_iv_ranges(fn, loop)
        outer_range = None
        if isinstance(counted.start, Constant) \
                and isinstance(counted.end, Constant):
            stop = counted.end.value + (1 if counted.pred == "le" else 0)
            outer_range = IvRange(counted.start.value,
                                  max(counted.start.value, stop),
                                  counted.step)
        ctx = AffineContext(counted, inner_ranges, fixed_ranges,
                            outer_range)

        accesses: List[Tuple[AccessForm, frozenset]] = []
        for block in plan.body_blocks:
            for inst in block.instructions:
                if inst in plan.skip:
                    continue
                if isinstance(inst, (Load, Store)):
                    pointer = inst.pointer
                    if isinstance(pointer, Alloca) and pointer in handled:
                        continue
                    accesses.append((access_form(inst, ctx),
                                     underlying_objects(pointer)))
        for i, (form_a, roots_a) in enumerate(accesses):
            for form_b, roots_b in accesses[i:]:
                if not (form_a.is_write or form_b.is_write):
                    continue
                if not may_alias_roots(roots_a, roots_b):
                    continue
                if conflicts_across_iterations(form_a, form_b, ctx):
                    return False
        return True

    def _collect_live_ins(self, loop: Loop, plan: _LoopPlan) -> None:
        counted = plan.counted
        replaced: Set[Value] = {counted.ivar}
        replaced.update(plan.private_allocas)
        replaced.update(a for a, _ in plan.value_params)
        seen: Set[Value] = set()
        ordered: List[Value] = []

        def consider(value: Value) -> None:
            if value in replaced or value in seen:
                return
            if isinstance(value, (Constant, GlobalVariable)):
                return
            if isinstance(value, Argument):
                seen.add(value)
                ordered.append(value)
                return
            if isinstance(value, Instruction) \
                    and value.parent not in loop.blocks:
                seen.add(value)
                ordered.append(value)

        if not isinstance(counted.start, Constant):
            consider(counted.start)
        for block in plan.body_blocks:
            for inst in block.instructions:
                if inst in plan.skip:
                    continue
                for operand in inst.operands:
                    consider(operand)
        plan.live_ins = ordered

    # -- outlining -------------------------------------------------------------

    def _outline(self, fn: Function, plan: _LoopPlan) -> Function:
        counted = plan.counted
        self._counter += 1
        name = f"{fn.name}__doall{self._counter}"
        param_types = [I64] + [v.type for v in plan.live_ins] \
            + [load.type for _, load in plan.value_params]
        param_names = ["tid"] \
            + [f"in{i}" for i in range(len(plan.live_ins))] \
            + [f"val{i}" for i in range(len(plan.value_params))]
        kernel = self.module.add_function(
            name, FunctionType(VOID, param_types), param_names,
            is_kernel=True)
        #: DOALL iterations are independent by proof, so the multi-GPU
        #: layer may split this kernel's grid across devices.  Glue
        #: kernels and hand-written kernels never get the mark.
        kernel.is_doall = True
        self.kernels.append(kernel)

        value_map: Dict[Value, Value] = {}
        for formal, actual in zip(kernel.args[1:], plan.live_ins):
            value_map[actual] = formal
        value_args = kernel.args[1 + len(plan.live_ins):]

        entry = kernel.new_block("entry")
        exit_block = kernel.new_block("exit")
        builder = IRBuilder(entry)
        ivar_clone = builder.alloca(counted.ivar.allocated_type, 1, "iv")
        value_map[counted.ivar] = ivar_clone
        for alloca in plan.private_allocas:
            clone = builder.alloca(alloca.allocated_type, 1,
                                   alloca.name or "priv")
            value_map[alloca] = clone
        for (alloca, _), formal in zip(plan.value_params, value_args):
            clone = builder.alloca(alloca.allocated_type, 1,
                                   alloca.name or "ro")
            builder.store(formal, clone)
            value_map[alloca] = clone
        start_value = value_map.get(counted.start, counted.start)
        offset = builder.mul(kernel.args[0], counted.step)
        iv_value = builder.add(offset, start_value) \
            if isinstance(start_value, Constant) \
            else builder.add(start_value, offset)
        builder.store(iv_value, ivar_clone)

        block_map: Dict[BasicBlock, BasicBlock] = {
            counted.loop.header: exit_block}
        cloned = clone_region(plan.body_blocks, kernel, value_map,
                              block_map, plan.skip)
        first_body = counted.compare.parent.terminator.if_true
        builder.br(block_map[first_body])
        IRBuilder(exit_block).ret()
        # Cloning appended body blocks after the exit block; keep the
        # entry block first and the exit block last for readability.
        kernel.blocks.remove(exit_block)
        kernel.blocks.append(exit_block)

        self._rewrite_caller(fn, plan, kernel)
        return kernel

    def _rewrite_caller(self, fn: Function, plan: _LoopPlan,
                        kernel: Function) -> None:
        counted = plan.counted
        launch_block = fn.new_block("doall.launch")
        preheader_term = counted.preheader.terminator
        assert isinstance(preheader_term, Branch)
        preheader_term.target = launch_block

        builder = IRBuilder(launch_block)
        # Recompute the loop bound above the loop if it lived in the
        # (now deleted) header.
        end_map: Dict[Value, Value] = {}
        for inst in counted.end_computation:
            clone_ops = [end_map.get(op, op) for op in inst.operands]
            if isinstance(inst, Load):
                clone = builder.load(clone_ops[0])
            elif isinstance(inst, BinaryOp):
                clone = builder.binop(inst.op, clone_ops[0], clone_ops[1])
            elif inst.opcode == "cast":
                clone = builder.cast(inst.kind, clone_ops[0], inst.type)
            else:
                raise TransformError(
                    f"cannot hoist bound computation {inst.opcode}")
            end_map[inst] = clone
        end_value = end_map.get(counted.end, counted.end)

        # grid = max(0, ceil((end - start [+1 for <=]) / step))
        span = builder.sub(end_value, counted.start)
        if counted.pred == "le":
            span = builder.add(span, 1)
        rounded = builder.add(span, counted.step - 1)
        count = builder.div(rounded, counted.step)
        positive = builder.cmp("gt", count, 0)
        grid = builder.select(positive, count, builder.i64(0))
        args = list(plan.live_ins)
        for alloca, sample_load in plan.value_params:
            args.append(builder.load(alloca))
        builder.launch(kernel, grid, args)
        # Iteration variable's final value (it may be read after the loop).
        final = builder.add(builder.mul(grid, counted.step), counted.start) \
            if isinstance(counted.start, Constant) \
            else builder.add(counted.start,
                             builder.mul(grid, counted.step))
        builder.store(final, counted.ivar)
        builder.br(counted.exit_block)
        erase_blocks(fn, counted.loop.blocks)


# -- helpers ---------------------------------------------------------------


def _device_safe_callee(callee: Function,
                        _seen: Optional[Set[Function]] = None) -> bool:
    """May this function run on the GPU?"""
    if callee.is_declaration:
        return callee.name in GPU_SAFE
    seen = _seen or set()
    if callee in seen:
        return False  # recursion on the device: refuse
    seen.add(callee)
    for inst in callee.instructions():
        if isinstance(inst, LaunchKernel):
            return False
        if isinstance(inst, Call) and not _device_safe_callee(inst.callee,
                                                              seen):
            return False
    return True


def _collect_alloca_uses(fn: Function) -> Dict[Alloca, List[Instruction]]:
    uses: Dict[Alloca, List[Instruction]] = {}
    for inst in fn.instructions():
        if isinstance(inst, Alloca):
            uses.setdefault(inst, [])
    for inst in fn.instructions():
        for operand in inst.operands:
            if isinstance(operand, Alloca):
                uses.setdefault(operand, []).append(inst)
    return uses


def _is_direct_scalar(alloca: Alloca, uses: List[Instruction]) -> bool:
    """A scalar stack slot accessed only by direct loads and stores."""
    if not alloca.allocated_type.is_scalar:
        return False
    if not (isinstance(alloca.count, Constant) and alloca.count.value == 1):
        return False
    for use in uses:
        if isinstance(use, Load) and use.pointer is alloca:
            continue
        if isinstance(use, Store) and use.pointer is alloca \
                and use.value is not alloca:
            continue
        return False
    return True


def _inner_iv_ranges(fn: Function, loop: Loop) -> Dict[Alloca, IvRange]:
    """Value ranges for induction variables of counted loops nested
    (at any depth) inside ``loop``.

    Non-constant bounds (``for (j = k+1; j < N; ...)``) are widened to
    an interval using the ranges of enclosing induction variables --
    sound, because widening an inner range can only make the conflict
    test *more* conservative."""
    enclosing = _enclosing_iv_ranges(fn, loop)
    ranges: Dict[Alloca, IvRange] = {}
    for inner in find_loops(fn):
        if inner is loop or not (inner.blocks < loop.blocks):
            continue
        counted = recognize_counted_loop(fn, inner)
        if counted is None:
            continue
        widened = _widened_range(counted, enclosing)
        if widened is not None:
            ranges[counted.ivar] = widened
    return ranges


def _widened_range(counted: CountedLoop,
                   known: Dict[Alloca, IvRange]) -> Optional[IvRange]:
    start = _value_interval(counted.start, known)
    end = _value_interval(counted.end, known)
    if start is None or end is None:
        return None
    stop = end[1] + 1 if counted.pred == "le" else end[1]
    return IvRange(start[0], max(start[0], stop), counted.step)


def _value_interval(value: Value, known: Dict[Alloca, IvRange],
                    _depth: int = 0) -> Optional[Tuple[int, int]]:
    """Best-effort [min, max] of an integer value over the ranges of
    enclosing induction variables."""
    if _depth > 16:
        return None
    if isinstance(value, Constant) and isinstance(value.value, int):
        return (value.value, value.value)
    if isinstance(value, Load) and isinstance(value.pointer, Alloca):
        rng = known.get(value.pointer)
        if rng is not None:
            return (rng.min_value, rng.max_value)
        return None
    if isinstance(value, BinaryOp):
        lhs = _value_interval(value.lhs, known, _depth + 1)
        rhs = _value_interval(value.rhs, known, _depth + 1)
        if lhs is None or rhs is None:
            return None
        if value.op == "add":
            return (lhs[0] + rhs[0], lhs[1] + rhs[1])
        if value.op == "sub":
            return (lhs[0] - rhs[1], lhs[1] - rhs[0])
        if value.op == "mul":
            corners = [a * b for a in lhs for b in rhs]
            return (min(corners), max(corners))
        return None
    if inst_is_int_cast(value):
        return _value_interval(value.operands[0], known, _depth + 1)
    return None


def inst_is_int_cast(value: Value) -> bool:
    from ..ir.instructions import Cast
    return isinstance(value, Cast) and value.kind in ("sext", "zext",
                                                      "trunc")


def _enclosing_iv_ranges(fn: Function, loop: Loop) -> Dict[Alloca, IvRange]:
    """Value ranges for induction variables of counted loops that
    *enclose* ``loop`` (their value is fixed across the candidate's
    iterations, so equal coefficients cancel in the conflict test).

    Processed outermost-first so that an inner enclosing loop's
    symbolic bounds (``j = k+1``) can be widened over the ranges of
    the loops around it."""
    enclosing = [outer for outer in find_loops(fn)
                 if loop.blocks < outer.blocks]
    enclosing.sort(key=lambda l: l.depth)
    ranges: Dict[Alloca, IvRange] = {}
    for outer in enclosing:
        counted = recognize_counted_loop(fn, outer)
        if counted is None:
            continue
        widened = _widened_range(counted, ranges)
        if widened is not None:
            ranges[counted.ivar] = widened
    return ranges


def _written_before_read(alloca: Alloca, plan: _LoopPlan) -> bool:
    """Forward must-analysis over the body subgraph (back edge cut):
    on every path through one iteration, is ``alloca`` stored before
    it is loaded?"""
    counted = plan.counted
    body_set = set(plan.body_blocks)
    first_body = counted.compare.parent.terminator.if_true
    defined_out: Dict[BasicBlock, bool] = {b: True for b in plan.body_blocks}
    changed = True
    while changed:
        changed = False
        for block in plan.body_blocks:
            if block is first_body:
                state = False
            else:
                preds = [p for p in block.predecessors() if p in body_set]
                state = bool(preds) and all(defined_out[p] for p in preds)
            for inst in block.instructions:
                if inst in plan.skip:
                    continue
                if isinstance(inst, Load) and inst.pointer is alloca \
                        and not state:
                    return False
                if isinstance(inst, Store) and inst.pointer is alloca:
                    state = True
            if defined_out[block] != state:
                defined_out[block] = state
                changed = True
    return True
