"""Per-pass legality contracts for translation validation.

Each optimize-stage transform declares a :class:`PassContract` module
constant named ``CONTRACT``: the machine-checkable obligations a
single run of the pass must uphold on its before/after module pair.
The translation-validation harness (``staticcheck/transval``) replays
these obligations after every pass when the pipeline runs with
``CgcmConfig(validate=True)``.

The obligations are *relational* -- they compare the output module
against a snapshot of the input -- so they catch the miscompile
classes a structural verifier cannot: a dropped kernel launch, a
duplicated observable call, a map whose live range now crosses a
mutating store (surfacing as a new mapping-state error), an async
rewrite that lost a write-back barrier (surfacing as a happens-before
error).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PassContract:
    """Obligations one transform pass owes its before/after IR pair."""

    #: Stage name used in findings (``unit`` field) and reports.
    stage: str
    #: Kernel-launch multiset discipline: ``"equal"`` (the pass moves
    #: or rewrites but never adds/removes launches) or ``"grow"`` (the
    #: pass may add launches -- glue kernels -- but never remove one).
    launches: str = "equal"
    #: Runtime-call discipline per function: ``"any"`` (the pass may
    #: insert/remove managed calls; the mapping-state regression check
    #: guards it instead) or ``"twin-normalized"`` (modulo the
    #: sync/async twin renaming and inserted ``cgcmSync`` barriers,
    #: the per-function runtime-call multiset must be unchanged).
    runtime_calls: str = "any"
    #: Re-run the mapping-state verifier on the after module: any
    #: error key (kind x function) absent before the pass is a
    #: regression the pass introduced -- the static form of "a map's
    #: live range must not grow across a mutating store".
    check_mapstate_regression: bool = True
    #: Run the happens-before auditor on the after module and require
    #: zero errors (the pass introduced the asynchronous operations,
    #: so it owes every one of them a static ordering proof).
    check_hb: bool = False
