"""Map promotion: turn cyclic communication patterns into acyclic ones.

Paper section 5.1 / Algorithm 4.  For each region (loop body or whole
function), group the run-time library calls by the pointer they manage
(a *candidate*).  If the pointer's value cannot change across the
region (``pointsToChanges`` is false) and CPU code in the region never
reads or writes the allocation unit (``modOrRef`` is false), then:

* copy the ``map`` above the region,
* move the ``unmap`` below the region (delete the in-region DtoH),
* copy the ``release`` below the region.

In-region ``map``/``release`` pairs remain: with the hoisted reference
held, they are cheap reference-count updates and no data moves inside
the loop.  The pass iterates to convergence, climbing loop nests and
the call graph (recursive functions are ineligible).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Call, Cast,
                               GetElementPtr, Instruction, Load, Store)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..analysis.alias import (UNKNOWN, is_identified, ordered_roots,
                              underlying_objects)
from ..analysis.callgraph import CallGraph
from ..analysis.loops import Loop, find_loops, loop_preheader
from ..analysis.cfg import predecessor_map
from ..analysis.modref import ModRefAnalysis
from ..runtime import api
from ..runtime.api import (MAP_FUNCTIONS, RELEASE_FUNCTIONS,
                           RUNTIME_FUNCTION_NAMES, UNMAP_FUNCTIONS)
from .contract import PassContract

#: Map promotion hoists, sinks, and deletes managed calls, so the
#: runtime-call multiset legitimately changes; the mapping-state
#: regression check is the guard that the hoisted live ranges never
#: cross a CPU access of the unit.
CONTRACT = PassContract(stage="map-promotion")

_MAX_ITERATIONS = 10


def _slot_stable_in_region(pointer: Value, blocks) -> bool:
    """May a load of ``pointer`` be hoisted above the region?  True
    for direct-use scalar slots (allocas and global pointer variables)
    with no stores inside the region -- every in-region load then
    yields the value the slot already holds at region entry."""
    from ..analysis.alias import (_is_direct_global_slot, _is_direct_slot,
                                  _module_of)
    if isinstance(pointer, Alloca):
        if not pointer.allocated_type.is_scalar:
            return False
        if not _is_direct_slot(pointer):
            return False
        fn = pointer.function
        if fn is None:
            return False
        return not any(isinstance(i, Store) and i.pointer is pointer
                       and i.parent in blocks
                       for i in fn.instructions())
    if isinstance(pointer, GlobalVariable):
        if not pointer.value_type.is_scalar:
            return False
        some_block = next(iter(blocks), None)
        if some_block is None or some_block.parent is None:
            return False
        fn = some_block.parent
        module = fn.module
        if module is None or not _is_direct_global_slot(pointer, module):
            return False
        # Stores inside the region, in this function or in anything it
        # calls from within the region, make the slot unstable.
        for block in blocks:
            for inst in block.instructions:
                if isinstance(inst, Store) and inst.pointer is pointer:
                    return False
                if isinstance(inst, Call) \
                        and not inst.callee.is_declaration \
                        and _function_stores_global(inst.callee, pointer):
                    return False
        return True
    return False


def _function_stores_global(fn: Function, gv: GlobalVariable,
                            _seen=None) -> bool:
    seen = _seen or set()
    if fn in seen:
        return True  # recursion: conservative
    seen.add(fn)
    for inst in fn.instructions():
        if isinstance(inst, Store) and inst.pointer is gv:
            return True
        if isinstance(inst, Call) and not inst.callee.is_declaration \
                and _function_stores_global(inst.callee, gv, seen):
            return True
    return False


class _Candidate:
    """All run-time calls in one region that manage one pointer."""

    def __init__(self, pointer: Value):
        self.pointer = pointer
        self.maps: List[Call] = []
        self.unmaps: List[Call] = []
        self.releases: List[Call] = []

    @property
    def is_array(self) -> bool:
        return bool(self.maps) \
            and self.maps[0].callee.name in api.MAP_ARRAY_FUNCTIONS

    @property
    def all_calls(self) -> List[Call]:
        return self.maps + self.unmaps + self.releases


class MapPromotion:
    """The map-promotion pass over one module."""

    def __init__(self, module: Module):
        self.module = module
        self.promoted_loops = 0
        self.promoted_functions = 0

    def run(self) -> None:
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for fn in list(self.module.defined_functions()):
                if fn.is_kernel:
                    continue
                changed |= self._promote_in_function(fn)
            changed |= self._promote_across_calls()
            if not changed:
                return

    # -- loop regions ------------------------------------------------------

    def _promote_in_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            loops = sorted(find_loops(fn), key=lambda l: -l.depth)
            for loop in loops:  # innermost first
                if self._promote_loop(fn, loop):
                    self.promoted_loops += 1
                    progress = True
                    changed = True
                    break  # call lists changed; recompute
        return changed

    def _promote_loop(self, fn: Function, loop: Loop) -> bool:
        preds = predecessor_map(fn)
        preheader = loop_preheader(loop, preds)
        if preheader is None:
            return False
        exit_block = self._single_exit_block(loop)
        if exit_block is None:
            return False
        modref = ModRefAnalysis()
        changed = False
        for candidate in self._collect_candidates(loop.blocks):
            if not candidate.maps or not candidate.unmaps:
                # No DtoH left in the region means the candidate was
                # already promoted (or never copied back): nothing to
                # gain, and skipping keeps the pass idempotent.
                continue
            if self._cpu_touches_unit(candidate.pointer, loop, modref):
                continue
            hoisted = self._materialize_above(candidate.pointer, loop,
                                              preheader)
            if hoisted is None:
                continue
            self._apply_loop_promotion(fn, candidate, hoisted, preheader,
                                       exit_block)
            changed = True
        return changed

    def _single_exit_block(self, loop: Loop) -> Optional[BasicBlock]:
        """The unique exit target whose predecessors all lie in the
        loop (safe to place unmap/release at its top)."""
        targets = {to for _, to in loop.exit_edges()}
        if len(targets) != 1:
            return None
        target = next(iter(targets))
        for pred in target.predecessors():
            if pred not in loop.blocks:
                return None
        return target

    def _collect_candidates(self, blocks: Set[BasicBlock]
                            ) -> List[_Candidate]:
        by_pointer: Dict[Value, _Candidate] = {}
        order: List[_Candidate] = []
        # Iterate in the parent function's block order, not the set's:
        # set order varies per process/run, and the hoisted map calls
        # are emitted in candidate order, so the output IR would too.
        any_block = next(iter(blocks), None)
        if any_block is not None and any_block.parent is not None:
            ordered = [b for b in any_block.parent.blocks if b in blocks]
        else:
            ordered = sorted(blocks, key=lambda b: b.name)
        for block in ordered:
            for inst in block.instructions:
                if not isinstance(inst, Call):
                    continue
                name = inst.callee.name
                if name not in RUNTIME_FUNCTION_NAMES or not inst.args:
                    continue
                pointer = inst.args[0]
                candidate = by_pointer.get(pointer)
                if candidate is None:
                    candidate = _Candidate(pointer)
                    by_pointer[pointer] = candidate
                    order.append(candidate)
                if name in MAP_FUNCTIONS:
                    candidate.maps.append(inst)
                elif name in UNMAP_FUNCTIONS:
                    candidate.unmaps.append(inst)
                elif name in RELEASE_FUNCTIONS:
                    candidate.releases.append(inst)
        # Deterministic order by first map position.
        return [c for c in order if c.maps or c.unmaps or c.releases]

    # -- pointsToChanges ------------------------------------------------------

    def _materialize_above(self, pointer: Value, loop: Optional[Loop],
                           preheader: BasicBlock,
                           arg_map: Optional[Dict[Value, Value]] = None
                           ) -> Optional[Value]:
        """Make ``pointer`` available at the end of ``preheader``.

        Returns a value computable there (cloning GEP/cast chains when
        the computation lives inside the region), or None when the
        pointer may change across iterations (``pointsToChanges``).
        """
        plan: List[Instruction] = []
        mapping: Dict[Value, Value] = dict(arg_map or {})

        def visit(value: Value) -> bool:
            if value in mapping:
                return True
            if isinstance(value, (Constant, GlobalVariable)):
                mapping[value] = value
                return True
            if arg_map is None and isinstance(value, Argument):
                mapping[value] = value
                return True
            if isinstance(value, Instruction):
                if loop is not None and arg_map is None \
                        and value.parent not in loop.blocks:
                    mapping[value] = value  # invariant: defined outside
                    return True
                if isinstance(value, (GetElementPtr, Cast, BinaryOp)):
                    if all(visit(op) for op in value.operands):
                        plan.append(value)
                        return True
                if isinstance(value, Load) and loop is not None \
                        and arg_map is None \
                        and _slot_stable_in_region(value.pointer,
                                                   loop.blocks):
                    if visit(value.pointer):
                        plan.append(value)
                        return True
                return False
            return False

        if not visit(pointer):
            return None
        for inst in plan:
            operands = [mapping.get(op, op) for op in inst.operands]
            if isinstance(inst, GetElementPtr):
                clone = GetElementPtr(operands[0], operands[1:])
            elif isinstance(inst, Cast):
                clone = Cast(inst.kind, operands[0], inst.type)
            elif isinstance(inst, Load):
                clone = Load(operands[0])
            else:
                assert isinstance(inst, BinaryOp)
                clone = BinaryOp(inst.op, operands[0], operands[1])
            clone.name = preheader.parent.unique_name("promo")
            preheader.insert_before_terminator(clone)
            mapping[inst] = clone
        return mapping[pointer]

    # -- modOrRef ------------------------------------------------------------------

    def _cpu_touches_unit(self, pointer: Value, loop: Loop,
                          modref: ModRefAnalysis) -> bool:
        for root in ordered_roots(underlying_objects(pointer)):
            mod, ref = modref.region_mod_ref(loop.blocks, root)
            if mod or ref:
                return True
        return False

    # -- the loop rewrite --------------------------------------------------------------

    def _apply_loop_promotion(self, fn: Function, candidate: _Candidate,
                              hoisted: Value, preheader: BasicBlock,
                              exit_block: BasicBlock) -> None:
        map_callee = candidate.maps[0].callee
        depth = 2 if candidate.is_array else 1
        unmap_callee = self.module.get_function(api.unmap_name(depth))
        release_callee = self.module.get_function(api.release_name(depth))

        # Copy map above the region.
        map_call = Call(map_callee, [hoisted])
        map_call.name = fn.unique_name("promo.map")
        preheader.insert_before_terminator(map_call)
        # Move unmap below the region; copy release below the region.
        unmap_call = Call(unmap_callee, [hoisted])
        release_call = Call(release_callee, [hoisted])
        exit_block.insert(0, unmap_call)
        exit_block.insert(1, release_call)
        # Delete every in-region DtoH (the unmaps).
        for call in candidate.unmaps:
            call.erase()

    # -- function regions ------------------------------------------------------------------

    def _promote_across_calls(self) -> bool:
        callgraph = CallGraph(self.module)
        modref = ModRefAnalysis()
        changed = False
        for fn in callgraph.bottom_up():
            if fn.is_kernel or fn.name == "main":
                continue
            if callgraph.is_recursive(fn):
                continue
            call_sites = callgraph.call_sites_of(fn)
            if not call_sites:
                continue
            if self._promote_function(fn, call_sites, modref):
                self.promoted_functions += 1
                changed = True
        return changed

    def _promote_function(self, fn: Function, call_sites: List[Call],
                          modref: ModRefAnalysis) -> bool:
        changed = False
        for candidate in self._collect_candidates(set(fn.blocks)):
            if not candidate.maps or not candidate.unmaps:
                continue  # already promoted: keeps the pass idempotent
            if not self._expressible_in_callers(candidate.pointer):
                continue
            touched = False
            for root in ordered_roots(underlying_objects(candidate.pointer)):
                if isinstance(root, Argument):
                    touched |= self._argument_unit_touched(
                        fn, root, call_sites, modref)
                else:
                    mod, ref = modref.region_mod_ref(fn.blocks, root)
                    touched |= mod or ref
                if touched:
                    break
            if touched:
                continue
            self._apply_function_promotion(fn, candidate, call_sites)
            changed = True
        return changed

    def _argument_unit_touched(self, fn: Function, arg: Argument,
                               call_sites: List[Call],
                               modref: ModRefAnalysis) -> bool:
        """Call-site-aware mod/ref for a candidate rooted at one of the
        function's own arguments.

        A bare Argument root aliases everything, which would block
        every hoist.  Instead: collect the identified objects the
        actual arguments may point to (conservative if any call site's
        actual is untraceable), then ask whether the function's CPU
        code touches *those* units or accesses memory through
        argument/unknown-rooted pointers (which could be this unit).
        """
        from ..ir.instructions import Load, Store

        unit_roots = set()
        for site in call_sites:
            if arg.index >= len(site.args):
                return True
            roots = underlying_objects(site.args[arg.index])
            if any(not is_identified(root) for root in roots):
                return True
            unit_roots |= set(roots)
        for root in ordered_roots(unit_roots):
            mod, ref = modref.region_mod_ref(fn.blocks, root)
            if mod or ref:
                return True
        for inst in fn.instructions():
            if isinstance(inst, (Load, Store)):
                roots = underlying_objects(inst.pointer)
                if any(isinstance(r, Argument) or r is UNKNOWN
                       for r in roots):
                    return True
        return False

    def _expressible_in_callers(self, pointer: Value) -> bool:
        """Can the pointer be recomputed at every call site (it chains
        only through the function's arguments, globals, constants)?"""
        def visit(value: Value, depth: int = 0) -> bool:
            if depth > 32:
                return False
            if isinstance(value, (Constant, GlobalVariable, Argument)):
                return True
            if isinstance(value, (GetElementPtr, Cast, BinaryOp)):
                return all(visit(op, depth + 1) for op in value.operands)
            if isinstance(value, Load) \
                    and isinstance(value.pointer, GlobalVariable) \
                    and value.function is not None \
                    and _slot_stable_in_region(value.pointer,
                                               set(value.function.blocks)):
                # The callee never rewrites the slot, so the caller
                # observes the same pointer value.
                return True
            return False
        return visit(pointer)

    def _apply_function_promotion(self, fn: Function,
                                  candidate: _Candidate,
                                  call_sites: List[Call]) -> None:
        map_callee = candidate.maps[0].callee
        depth = 2 if candidate.is_array else 1
        unmap_callee = self.module.get_function(api.unmap_name(depth))
        release_callee = self.module.get_function(api.release_name(depth))

        for site in call_sites:
            caller_block = site.parent
            assert caller_block is not None
            caller_fn = caller_block.parent
            assert caller_fn is not None
            arg_map = {formal: actual
                       for formal, actual in zip(fn.args, site.args)}
            pointer, new_insts = self._clone_chain_at(
                candidate.pointer, arg_map, caller_fn)
            index = caller_block.index(site)
            for offset, inst in enumerate(new_insts):
                inst.parent = caller_block
                caller_block.instructions.insert(index + offset, inst)
            index = caller_block.index(site)
            map_call = Call(map_callee, [pointer])
            map_call.name = caller_fn.unique_name("promo.map")
            map_call.parent = caller_block
            caller_block.instructions.insert(index, map_call)
            index = caller_block.index(site)
            unmap_call = Call(unmap_callee, [pointer])
            release_call = Call(release_callee, [pointer])
            unmap_call.parent = caller_block
            release_call.parent = caller_block
            caller_block.instructions.insert(index + 1, unmap_call)
            caller_block.instructions.insert(index + 2, release_call)
        for call in candidate.unmaps:
            call.erase()

    def _clone_chain_at(self, pointer: Value, arg_map: Dict[Value, Value],
                        caller_fn: Function
                        ) -> Tuple[Value, List[Instruction]]:
        new_insts: List[Instruction] = []
        mapping: Dict[Value, Value] = dict(arg_map)

        def build(value: Value) -> Value:
            if value in mapping:
                return mapping[value]
            if isinstance(value, (Constant, GlobalVariable)):
                return value
            assert isinstance(value, (GetElementPtr, Cast, BinaryOp,
                                      Load))
            operands = [build(op) for op in value.operands]
            if isinstance(value, GetElementPtr):
                clone = GetElementPtr(operands[0], operands[1:])
            elif isinstance(value, Cast):
                clone = Cast(value.kind, operands[0], value.type)
            elif isinstance(value, Load):
                clone = Load(operands[0])
            else:
                clone = BinaryOp(value.op, operands[0], operands[1])
            clone.name = caller_fn.unique_name("promo")
            new_insts.append(clone)
            mapping[value] = clone
            return clone

        return build(pointer), new_insts
