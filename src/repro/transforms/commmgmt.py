"""Communication management: insert map/unmap/release around launches.

Paper section 4: for each GPU function spawn, the compiler determines
the live-in values with a liveness analysis, infers which of them are
pointers (and their indirection depth) by *usage* rather than by the
unreliable C types, then:

* before the launch, inserts ``map``/``mapArray`` for every live-in
  pointer and rewrites the launch to pass the translated GPU pointer;
* after the launch, inserts ``unmap``/``unmapArray`` for every live-out
  pointer, then ``release``/``releaseArray`` to drop the references.

Globals used by the kernel are live-ins too; mapping them populates
their device-resident named regions (``cuModuleGetGlobal``), which the
kernel's global references resolve to.

Escaping stack variables are rewritten from plain allocas to
``declareAlloca`` so the run-time can find their allocation units
(paper section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import TransformError
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Call, Cast, GetElementPtr,
                               Instruction, LaunchKernel)
from ..ir.module import Module
from ..ir.types import ArrayType, I64, RAW_PTR
from ..ir.values import Constant, GlobalVariable, Value
from ..analysis.alias import ordered_roots, underlying_objects
from ..analysis.typeinfer import infer_pointer_depths
from ..runtime.api import map_name, release_name, unmap_name
from ..runtime.cgcm import declare_runtime


class CommunicationManager:
    """Inserts run-time library calls for every kernel launch."""

    def __init__(self, module: Module):
        self.module = module
        self.runtime = declare_runtime(module)
        self._converted_allocas: Set[Alloca] = set()
        #: (launch, map calls, unmap calls, release calls) per launch,
        #: mostly for tests and the optimization passes.
        self.managed: List[Tuple[LaunchKernel, List[Call], List[Call],
                                 List[Call]]] = []

    def run(self) -> None:
        for fn in list(self.module.defined_functions()):
            if fn.is_kernel:
                continue
            for launch in [i for i in fn.instructions()
                           if isinstance(i, LaunchKernel)]:
                self.manage_launch(fn, launch)

    # -- one launch -------------------------------------------------------

    def manage_launch(self, fn: Function, launch: LaunchKernel) -> None:
        """Insert communication management around one launch (also used
        for launches created later by the glue-kernel pass)."""
        depths = infer_pointer_depths(launch.kernel, self.module)
        depths.require_supported()
        live_in = depths.live_in_depths()

        block = launch.parent
        assert block is not None
        #: (raw host pointer value, depth) in mapping order.
        mapped: List[Tuple[Value, int]] = []
        before: List[Instruction] = []
        map_calls: List[Call] = []

        # Live-in pointer arguments: map and rewrite the launch operand.
        for position, formal in enumerate(launch.kernel.args[1:]):
            depth = live_in.get(formal, 0)
            if depth < 1:
                continue
            actual = launch.args[position]
            self._register_escaping_allocas(fn, actual)
            # Alloca conversion rewrites every use, including the
            # launch operand: re-read it.
            actual = launch.args[position]
            # The declared type may be a lie (paper section 4): a value
            # *used* as a pointer can arrive as an integer, so pick the
            # cast by the actual IR type, not by the inference.
            if actual.type.is_pointer:
                raw = Cast("bitcast", actual, RAW_PTR)
            else:
                raw = Cast("inttoptr", actual, RAW_PTR)
            map_call = Call(self.runtime[map_name(depth)], [raw])
            if actual.type.is_pointer:
                back = Cast("bitcast", map_call, actual.type)
            else:
                back = Cast("ptrtoint", map_call, actual.type)
            for inst in (raw, map_call, back):
                inst.name = fn.unique_name("comm")
            before.extend([raw, map_call, back])
            launch.operands[1 + position] = back
            mapped.append((raw, depth))
            map_calls.append(map_call)

        # Live-in globals: mapping fills the device named region.
        for value, depth in live_in.items():
            if not isinstance(value, GlobalVariable):
                continue
            base = self._global_base(fn, value, before)
            raw = Cast("bitcast", base, RAW_PTR)
            raw.name = fn.unique_name("comm")
            map_call = Call(self.runtime[map_name(depth)], [raw])
            map_call.name = fn.unique_name("comm")
            before.extend([raw, map_call])
            mapped.append((raw, depth))
            map_calls.append(map_call)

        index = block.index(launch)
        for offset, inst in enumerate(before):
            inst.parent = block
            block.instructions.insert(index + offset, inst)

        # After the launch: unmap everything, then release everything.
        after: List[Instruction] = []
        unmap_calls: List[Call] = []
        release_calls: List[Call] = []
        for raw, depth in mapped:
            call = Call(self.runtime[unmap_name(depth)], [raw])
            after.append(call)
            unmap_calls.append(call)
        for raw, depth in mapped:
            call = Call(self.runtime[release_name(depth)], [raw])
            after.append(call)
            release_calls.append(call)
        index = block.index(launch)
        for offset, inst in enumerate(after):
            inst.parent = block
            block.instructions.insert(index + 1 + offset, inst)

        self.managed.append((launch, map_calls, unmap_calls, release_calls))


    def _global_base(self, fn: Function, gv: GlobalVariable,
                     before: List[Instruction]) -> Value:
        """A scalar pointer to the global's first byte (arrays need a
        GEP so the bitcast source is a simple element pointer)."""
        if isinstance(gv.value_type, ArrayType):
            gep = GetElementPtr(gv, [Constant(I64, 0), Constant(I64, 0)])
            gep.name = fn.unique_name("comm")
            before.append(gep)
            return gep
        return gv

    # -- escaping stack variables ------------------------------------------------

    def _register_escaping_allocas(self, fn: Function,
                                   pointer: Value) -> None:
        for root in ordered_roots(underlying_objects(pointer)):
            if isinstance(root, Alloca) and root.function is fn \
                    and root not in self._converted_allocas:
                self._convert_alloca(fn, root)
                self._converted_allocas.add(root)

    def _convert_alloca(self, fn: Function, alloca: Alloca) -> None:
        """Replace ``alloca T, n`` with ``declareAlloca(n * sizeof T)``."""
        block = alloca.parent
        assert block is not None
        index = block.index(alloca)
        new_insts: List[Instruction] = []
        element_size = alloca.allocated_type.size
        if isinstance(alloca.count, Constant):
            size_value: Value = Constant(alloca.count.type,
                                         alloca.count.value * element_size)
        else:
            mul = BinaryOp("mul", alloca.count,
                           Constant(alloca.count.type, element_size))
            mul.name = fn.unique_name("size")
            new_insts.append(mul)
            size_value = mul
        declare = Call(self.runtime["declareAlloca"], [size_value])
        declare.name = fn.unique_name(alloca.name or "stackvar")
        typed = Cast("bitcast", declare, alloca.type)
        typed.name = fn.unique_name(alloca.name or "stackvar")
        new_insts.extend([declare, typed])

        block.instructions.pop(index)
        alloca.parent = None
        for offset, inst in enumerate(new_insts):
            inst.parent = block
            block.instructions.insert(index + offset, inst)
        for inst in fn.instructions():
            inst.replace_operand(alloca, typed)


def insert_communication(module: Module) -> CommunicationManager:
    """Run the communication-management pass over ``module``."""
    manager = CommunicationManager(module)
    manager.run()
    return manager
