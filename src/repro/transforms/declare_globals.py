"""Insert ``declareGlobal`` registration calls before main runs.

Paper section 3.1: "To track global variables, the compiler inserts
calls to the run-time library's declareGlobal function before main.
Declaring addresses at run-time rather than at compile-time or
link-time avoids the problems caused by position independent code and
address space layout randomization."

We insert the calls at the top of ``main``'s entry block.  Each call
passes the global's name (as a string constant), address, size, and
read-only flag.
"""

from __future__ import annotations

from typing import List

from ..errors import TransformError
from ..ir.builder import IRBuilder
from ..ir.instructions import Call, GetElementPtr, Instruction
from ..ir.module import Module
from ..ir.types import ArrayType, I8, I64, RAW_PTR
from ..ir.values import GlobalVariable
from ..runtime.cgcm import declare_runtime


def insert_global_declarations(module: Module,
                               entry: str = "main") -> List[Instruction]:
    """Register every (pre-existing) global with the run-time library."""
    runtime = declare_runtime(module)
    declare_global = runtime["declareGlobal"]
    main = module.get_function(entry)
    if main.is_declaration:
        raise TransformError(f"@{entry} is not defined")

    snapshot = [gv for gv in module.globals.values()]
    inserted: List[Instruction] = []
    entry_block = main.entry_block

    # Build the instruction sequence in a scratch block, then splice it
    # at the very top of the entry block.
    scratch = main.new_block("declare.globals")
    builder = IRBuilder(scratch)
    for gv in snapshot:
        name_gv = _name_string(module, gv)
        name_ptr = builder.gep(name_gv, [0, 0])
        raw = builder.bitcast(_address_of(builder, gv), RAW_PTR)
        call = builder.call(declare_global, [
            name_ptr, raw, builder.i64(gv.size),
            builder.i64(1 if gv.is_read_only else 0)])
        inserted.append(call)

    main.blocks.remove(scratch)
    for offset, inst in enumerate(scratch.instructions):
        inst.parent = entry_block
        entry_block.instructions.insert(offset, inst)
    return inserted


def _address_of(builder: IRBuilder, gv: GlobalVariable):
    """The global's base address as an i8 pointer-compatible value."""
    if isinstance(gv.value_type, ArrayType):
        return builder.gep(gv, [0, 0])
    return gv


def _name_string(module: Module, gv: GlobalVariable) -> GlobalVariable:
    name = f".gname.{gv.name}"
    existing = module.globals.get(name)
    if existing is not None:
        return existing
    data = gv.name.encode("utf-8")
    return module.add_global(name, ArrayType(I8, len(data) + 1), gv.name,
                             is_read_only=True)
