"""Alloca promotion: hoist mapped stack allocations up the call graph.

Paper section 5.2: "Map promotion cannot hoist a local variable above
its parent function.  Alloca promotion hoists local allocation up the
call graph to improve map promotion's applicability.  Alloca promotion
preallocates local variables in their parents' stack frames."

Concretely we hoist ``declareAlloca`` calls (the registered, mappable
form escaping stack variables take after communication management):
the callee gains a pointer parameter, every call site allocates-and-
registers in the caller's frame and passes the address.  Like map
promotion the pass iterates to convergence; recursive functions are
ineligible (two live instances would share one slot).
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.function import Function
from ..ir.instructions import Call, Instruction
from ..ir.module import Module
from ..ir.types import FunctionType, RAW_PTR
from ..ir.values import Argument, Constant
from ..analysis.callgraph import CallGraph
from .contract import PassContract

#: Alloca promotion reshapes signatures and moves ``declareAlloca``
#: registrations across frames but never touches launches or
#: observable calls; the mapping-state checker guards the moved
#: registrations.
CONTRACT = PassContract(stage="alloca-promotion")

_MAX_ITERATIONS = 10


class AllocaPromotion:
    """Hoists constant-size ``declareAlloca`` calls into callers."""

    def __init__(self, module: Module):
        self.module = module
        self.promoted = 0

    def run(self) -> None:
        for _ in range(_MAX_ITERATIONS):
            if not self._one_round():
                return

    def _one_round(self) -> bool:
        callgraph = CallGraph(self.module)
        changed = False
        for fn in callgraph.bottom_up():
            if fn.is_kernel or fn.name == "main" or fn.is_declaration:
                continue
            if callgraph.is_recursive(fn):
                continue
            call_sites = callgraph.call_sites_of(fn)
            if not call_sites:
                continue
            while True:
                declare = self._hoistable_declare(fn)
                if declare is None:
                    break
                self._hoist(fn, declare, call_sites)
                self.promoted += 1
                changed = True
        return changed

    def _hoistable_declare(self, fn: Function) -> Optional[Call]:
        """The first constant-size declareAlloca in the entry block."""
        for inst in fn.entry_block.instructions:
            if isinstance(inst, Call) \
                    and inst.callee.name == "declareAlloca" \
                    and isinstance(inst.args[0], Constant):
                return inst
        return None

    def _hoist(self, fn: Function, declare: Call,
               call_sites: List[Call]) -> None:
        size = declare.args[0]
        declare_callee = declare.callee

        # Grow the callee's signature with a pointer parameter.
        new_param = Argument(RAW_PTR, fn.unique_name("prealloc"),
                             len(fn.args), fn)
        fn.args.append(new_param)
        fn.type = FunctionType(fn.type.return_type,
                               [a.type for a in fn.args])
        for inst in fn.instructions():
            inst.replace_operand(declare, new_param)
        declare.erase()

        # Preallocate at every call site and pass the address.
        for site in call_sites:
            block = site.parent
            assert block is not None
            caller = block.parent
            assert caller is not None
            prealloc = Call(declare_callee, [size])
            prealloc.name = caller.unique_name("prealloc")
            prealloc.parent = block
            block.instructions.insert(block.index(site), prealloc)
            site.operands.append(prealloc)
