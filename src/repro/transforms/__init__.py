"""Compiler transformations: DOALL parallelization, communication
management insertion, and the three communication optimizations."""

from .outline import clone_instruction, clone_region, erase_blocks
from .doall import DoallParallelizer
from .declare_globals import insert_global_declarations
from .commmgmt import CommunicationManager, insert_communication
from .map_promotion import MapPromotion
from .alloca_promotion import AllocaPromotion
from .glue_kernels import GlueKernels

__all__ = [
    "clone_instruction", "clone_region", "erase_blocks",
    "DoallParallelizer", "insert_global_declarations",
    "CommunicationManager", "insert_communication", "MapPromotion",
    "AllocaPromotion", "GlueKernels",
]
