"""Communication overlap: hoist HtoD copies, sink write-backs, go async.

Runs after map promotion when the streams subsystem is enabled
(``CgcmConfig(streams=True)``).  Three rewrites, all proved legal with
the same :class:`ModRefAnalysis` machinery map promotion trusts:

* **Hoist** every ``map``/``mapArray`` as early as its producing
  stores allow -- first within its block, then up the immediate-
  dominator chain through control-equivalent blocks -- so the HtoD
  copy is in flight while the CPU still initializes *other* units.
* **Sink** every ``unmap`` (keeping an adjacent ``release`` of the
  same pointer glued behind it) past following CPU code that neither
  reads nor writes the unit, so independent work issues before the
  host would ever wait on the DtoH.
* **Rewrite** the moved calls to their asynchronous variants
  (``mapAsync``/``unmapAsync``/...) and insert a ``cgcmSync`` in front
  of the first instruction that touches a deferred write-back's unit
  on every CFG path leaving the write-back (loop back edges included),
  so the ordering is explicit in the IR and statically checkable by
  the happens-before auditor (``staticcheck/hbcheck``).  The
  ``CgcmRuntime`` load/store guard, which synchronizes the d2h stream
  before the CPU observes the region, remains as a safety net for
  units the alias analysis cannot resolve -- so the sanitizer, the
  differential oracle, and the static mapping-state verifier all see
  exactly the coherence protocol they already check.

Motion legality, in one place (``_crossable``):

* never cross a kernel launch (epochs advance per launch; moving a
  map/unmap over one changes what the run-time copies),
* never cross a run-time call whose unit may alias ours (refcount and
  coherence order must be preserved per unit),
* a hoisted map must not cross anything that may *write* its unit
  (the copy would ship stale bytes),
* a sunk unmap must not cross anything that may read *or* write its
  unit (the CPU would observe pre-write-back data),
* operands must stay available (a call never crosses a definition it
  depends on, and only hops to blocks its operand chain dominates).

Cross-block hops additionally require the source and target blocks to
be control-equivalent (target dominates source, source postdominates
target, same natural-loop membership), so execution counts -- and with
them reference counts -- are preserved exactly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from ..analysis.alias import (Root, UNKNOWN, is_identified, may_alias_roots,
                              underlying_objects)
from ..analysis.dominators import DominatorTree, PostDominatorTree
from ..analysis.loops import find_loops
from ..analysis.modref import ModRefAnalysis
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Call, Cast, GetElementPtr, Instruction,
                               LaunchKernel, Store)
from ..ir.module import Module
from ..ir.values import Constant, Value
from ..runtime.api import (ARRAY_FUNCTIONS, ASYNC_VARIANTS,
                           MAP_FUNCTIONS, RELEASE_FUNCTIONS,
                           RUNTIME_FUNCTION_NAMES, RUNTIME_SIGNATURES,
                           SYNC_FUNCTION, UNMAP_FUNCTIONS)
from .contract import PassContract

#: Comm overlap renames managed calls to their async twins and inserts
#: ``cgcmSync`` barriers, nothing else: twin-normalized the runtime
#: calls must match, and every async operation it introduces owes the
#: happens-before auditor a static ordering proof.
CONTRACT = PassContract(stage="comm-overlap",
                        runtime_calls="twin-normalized",
                        check_hb=True)

#: Entry points whose transfers cover the array unit *and* every unit
#: its stored pointers reference.
_ARRAY_CALLS = frozenset(ARRAY_FUNCTIONS)

#: Safety bound on dominator-chain hops per hoisted call.
_MAX_HOPS = 32


class CommOverlap:
    """The communication-overlap pass over one module."""

    def __init__(self, module: Module):
        self.module = module
        self.modref = ModRefAnalysis()
        self.stats = {"maps_hoisted": 0, "block_hops": 0,
                      "unmaps_sunk": 0, "async_rewrites": 0,
                      "syncs_inserted": 0}
        self._element_cache: Dict[FrozenSet[Root],
                                  Optional[FrozenSet[Root]]] = {}

    def run(self) -> Dict[str, int]:
        for fn in self.module.defined_functions():
            self._process_function(fn)
        return self.stats

    # -- per-function driver -----------------------------------------------

    def _process_function(self, fn: Function) -> None:
        calls = [inst for inst in fn.instructions()
                 if isinstance(inst, Call)
                 and inst.callee.name in RUNTIME_FUNCTION_NAMES]
        if not any(c.callee.name in MAP_FUNCTIONS
                   or c.callee.name in UNMAP_FUNCTIONS for c in calls):
            return
        self._doms = DominatorTree(fn)
        self._postdoms = PostDominatorTree(fn)
        self._loops_of = self._loop_membership(fn)
        self._reach = self._reachability(fn)
        for call in calls:
            if call.callee.name in MAP_FUNCTIONS:
                self._hoist_map(call)
        for call in calls:
            if call.callee.name in UNMAP_FUNCTIONS:
                self._sink_unmap(call)
        for call in calls:
            replacement = ASYNC_VARIANTS.get(call.callee.name)
            if replacement is not None:
                call.callee = self.module.declare_function(
                    replacement, RUNTIME_SIGNATURES[replacement])
                self.stats["async_rewrites"] += 1
        for call in calls:
            if call.callee.name in UNMAP_FUNCTIONS:
                self._insert_sync_after(call)

    # -- CFG facts ----------------------------------------------------------

    def _loop_membership(self, fn: Function) -> Dict[BasicBlock, FrozenSet]:
        membership: Dict[BasicBlock, Set] = {b: set() for b in fn.blocks}
        for loop in find_loops(fn):
            for block in loop.blocks:
                membership[block].add(loop)
        return {b: frozenset(s) for b, s in membership.items()}

    def _reachability(self, fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
        """block -> every block reachable from it (successor closure)."""
        reach: Dict[BasicBlock, Set[BasicBlock]] = {}
        for block in fn.blocks:
            seen: Set[BasicBlock] = set()
            work = list(block.successors)
            while work:
                current = work.pop()
                if current in seen:
                    continue
                seen.add(current)
                work.extend(current.successors)
            reach[block] = seen
        return reach

    # -- legality -----------------------------------------------------------

    def _unit_roots(self, call: Call) -> Optional[FrozenSet[Root]]:
        roots = frozenset(underlying_objects(call.args[0]))
        if not roots or any(r is UNKNOWN or not is_identified(r)
                            for r in roots):
            return None
        if call.callee.name in _ARRAY_CALLS:
            # A pointer-array transfer also copies every unit its
            # elements reference: legality must cover those too.
            elements = self._element_roots(roots)
            if elements is None:
                return None
            roots |= elements
        return roots

    def _element_roots(
            self, array_roots: FrozenSet[Root]) -> Optional[FrozenSet[Root]]:
        """Units the array's stored pointers may reference (module-wide
        closed-world scan), or None when any element is untraceable."""
        cached = self._element_cache.get(array_roots)
        if cached is not None or array_roots in self._element_cache:
            return cached
        out: Set[Root] = set()
        result: Optional[FrozenSet[Root]] = None
        for fn in self.module.defined_functions():
            for inst in fn.instructions():
                if not isinstance(inst, Store):
                    continue
                pointer_roots = underlying_objects(inst.pointer)
                if not any(r in pointer_roots for r in array_roots):
                    continue
                for value_root in underlying_objects(inst.value):
                    if isinstance(value_root, Constant):
                        continue  # null / literal: no unit
                    if value_root is UNKNOWN \
                            or not is_identified(value_root):
                        self._element_cache[array_roots] = None
                        return None
                    out.add(value_root)
        result = frozenset(out)
        self._element_cache[array_roots] = result
        return result

    def _operand_deps(self, call: Call) -> Set[Instruction]:
        """Every instruction the call's operands (transitively) use."""
        deps: Set[Instruction] = set()
        work: List[Value] = list(call.operands)
        while work:
            value = work.pop()
            if isinstance(value, Instruction) and value not in deps:
                deps.add(value)
                work.extend(value.operands)
        return deps

    def _crossable(self, inst: Instruction, roots: FrozenSet[Root],
                   deps: Set[Instruction], allow_ref: bool) -> bool:
        """May the managed call move across ``inst``?"""
        if inst in deps:
            return False
        if isinstance(inst, LaunchKernel):
            return False
        if isinstance(inst, Call) \
                and inst.callee.name in RUNTIME_FUNCTION_NAMES:
            if inst.callee.name in ("declareAlloca", SYNC_FUNCTION):
                # declareAlloca's unit is the call itself (caught by
                # the dependency test when related); a sync is a host
                # barrier for write-backs -- never reorder around it.
                return inst.callee.name != SYNC_FUNCTION
            if inst.callee.name == "declareGlobal":
                # args[0] is the registration *name* string; the unit
                # being registered is args[1].
                other = frozenset(underlying_objects(inst.args[1]))
                if any(r is UNKNOWN for r in other):
                    return False
                return not may_alias_roots(roots, other)
            other = self._unit_roots(inst)
            if other is None:
                return False
            return not may_alias_roots(roots, other)
        for root in roots:
            mod, ref = self.modref.instruction_mod_ref(inst, root)
            if mod or (ref and not allow_ref):
                return False
        return True

    # -- map hoisting --------------------------------------------------------

    def _hoist_map(self, call: Call) -> None:
        roots = self._unit_roots(call)
        if roots is None or call.parent is None:
            return
        # The call travels as a *group* with the contiguous run of pure
        # address computations (casts, GEPs) directly above it that
        # feed its operands: map promotion synthesizes exactly such a
        # chain for every promoted call, and leaving it behind would
        # pin the call in place.  Hoisting a side-effect-free
        # computation is safe for any *other* users too -- every
        # motion target dominates the original position.
        group = self._movable_group(call)
        deps = self._operand_deps(call) - set(group)
        moved = False
        for _ in range(_MAX_HOPS):
            moved |= self._hoist_within_block(group, roots, deps)
            target = self._hop_target(group, roots, deps)
            if target is None:
                break
            block = group[0].parent
            assert block is not None
            for inst in group:
                block.instructions.remove(inst)
            for inst in group:
                target.insert_before_terminator(inst)
            self.stats["block_hops"] += 1
            moved = True
        if moved:
            self.stats["maps_hoisted"] += 1

    def _movable_group(self, call: Call) -> List[Instruction]:
        """``call`` plus the contiguous preceding address computations
        feeding its operands, in program order."""
        block = call.parent
        assert block is not None
        full_deps = self._operand_deps(call)
        group: List[Instruction] = [call]
        index = block.index(call) - 1
        while index >= 0:
            inst = block.instructions[index]
            if not isinstance(inst, (Cast, GetElementPtr)) \
                    or inst not in full_deps:
                break
            group.insert(0, inst)
            index -= 1
        return group

    def _hoist_within_block(self, group: List[Instruction],
                            roots: FrozenSet[Root],
                            deps: Set[Instruction]) -> bool:
        block = group[0].parent
        assert block is not None
        index = block.index(group[0])
        new_index = index
        while new_index > 0 and self._crossable(
                block.instructions[new_index - 1], roots, deps,
                allow_ref=True):
            new_index -= 1
        if new_index == index:
            return False
        for inst in group:
            block.instructions.remove(inst)
        for offset, inst in enumerate(group):
            block.insert(new_index + offset, inst)
        return True

    def _hop_target(self, group: List[Instruction], roots: FrozenSet[Root],
                    deps: Set[Instruction]) -> Optional[BasicBlock]:
        """The nearest control-equivalent dominator the group can move
        to, or None.  The group must already sit at its block's top;
        the walk may pass *through* non-equivalent dominators (loop
        headers), provided every block on any path from the target to
        here -- loop bodies included -- is fully crossable."""
        block = group[0].parent
        assert block is not None
        if block.instructions[0] is not group[0]:
            return None
        # Blocks that can reach `block`, for path overapproximation.
        into = {b for b in self._reach if block in self._reach[b]}
        candidate = self._doms.immediate_dominator(block)
        for _ in range(_MAX_HOPS):
            if candidate is None or candidate is block:
                return None
            legal = True
            # Control equivalence: same execution count at both points.
            if not self._postdoms.postdominates(block, candidate):
                legal = False
            if self._loops_of.get(candidate) != self._loops_of.get(block):
                legal = False
            # Operand availability at the end of the candidate.
            if legal:
                for dep in deps:
                    if dep.parent is None \
                            or not self._doms.dominates(dep.parent,
                                                        candidate):
                        return None  # never available further up either
            # Everything on any candidate->block path must be
            # crossable (the reachability intersection overapproximates
            # the path set, which can only add barriers, never hide
            # one).  Checked even for non-equivalent candidates: the
            # walk only continues upward through code it could cross.
            between = self._reach[candidate] & into
            between.discard(block)
            between.discard(candidate)
            for path_block in between:
                for inst in path_block.instructions:
                    if not self._crossable(inst, roots, deps,
                                           allow_ref=True):
                        return None
            if legal:
                return candidate
            # Candidate itself becomes path code for the next hop: all
            # of it (terminator aside) must be crossable too.
            for inst in candidate.instructions:
                if inst is not candidate.terminator \
                        and not self._crossable(inst, roots, deps,
                                                allow_ref=True):
                    return None
            candidate = self._doms.immediate_dominator(candidate)
        return None

    # -- unmap sinking -------------------------------------------------------

    def _sink_unmap(self, call: Call) -> None:
        roots = self._unit_roots(call)
        block = call.parent
        if roots is None or block is None:
            return
        deps = self._operand_deps(call)
        index = block.index(call)
        # Keep an immediately-following release of the same pointer
        # glued to the unmap: the write-back must issue before the
        # reference drops (the release may free the device buffer).
        companion: Optional[Call] = None
        if index + 1 < len(block.instructions):
            nxt = block.instructions[index + 1]
            if isinstance(nxt, Call) \
                    and nxt.callee.name in RELEASE_FUNCTIONS \
                    and nxt.args and call.args \
                    and nxt.args[0] is call.args[0]:
                companion = nxt
        tail = 2 if companion is not None else 1
        limit = len(block.instructions) - 1  # never cross the terminator
        new_end = index + tail
        while new_end < limit and self._crossable(
                block.instructions[new_end], roots, deps, allow_ref=False):
            new_end += 1
        if new_end == index + tail:
            return
        block.instructions.remove(call)
        if companion is not None:
            block.instructions.remove(companion)
        insert_at = new_end - tail
        block.insert(insert_at, call)
        if companion is not None:
            block.insert(insert_at + 1, companion)
        self.stats["unmaps_sunk"] += 1

    # -- explicit syncs -------------------------------------------------------

    def _touches(self, inst: Instruction, roots: FrozenSet[Root]) -> bool:
        for root in roots:
            mod, ref = self.modref.instruction_mod_ref(inst, root)
            if mod or ref:
                return True
        return False

    def _insert_sync_after(self, call: Call) -> None:
        """Place ``cgcmSync`` before the first instruction that touches
        the deferred write-back's unit, on *every* CFG path leaving
        ``call`` (loop back edges included, so an in-loop write-back
        followed next iteration by a read of the unit is ordered too).
        Each path stops at the first existing sync, at the issue point
        itself, or at the inserted barrier; paths that never touch the
        unit get no sync -- the static happens-before auditor
        (``staticcheck/hbcheck``) checks exactly this placement, and
        the run-time load/store guard remains as a safety net for the
        unit shapes the alias analysis cannot resolve."""
        roots = self._unit_roots(call)
        block = call.parent
        if roots is None or block is None:
            return
        unmap_loops = self._loops_of.get(block, frozenset())
        work = [(block, block.index(call) + 1)]
        visited: Set[BasicBlock] = set()
        while work:
            current, start = work.pop()
            stopped = False
            for position in range(start, len(current.instructions)):
                inst = current.instructions[position]
                if inst is call:
                    stopped = True  # looped back to the issue point
                    break
                if isinstance(inst, Call) \
                        and inst.callee.name == SYNC_FUNCTION:
                    stopped = True  # already synchronized on this path
                    break
                if self._touches(inst, roots):
                    self._emit_sync(current, position)
                    stopped = True
                    break
            if stopped:
                continue
            # About to walk into a loop that does not re-issue this
            # write-back but does touch its unit somewhere inside: a
            # barrier placed at the touch would execute every
            # iteration, so put one single barrier in front of the
            # loop instead (it also orders everything beyond it, so
            # this path is done).
            current_loops = self._loops_of.get(current, frozenset())
            entering_touchy_loop = any(
                loop not in current_loops and loop not in unmap_loops
                and self._loop_touches(loop, roots)
                for succ in current.successors
                for loop in self._loops_of.get(succ, frozenset()))
            if entering_touchy_loop:
                terminator = len(current.instructions) - 1
                previous = current.instructions[terminator - 1] \
                    if terminator > 0 else None
                if not (isinstance(previous, Call)
                        and previous.callee.name == SYNC_FUNCTION):
                    self._emit_sync(current, terminator)
                continue
            for succ in current.successors:
                if succ not in visited:
                    visited.add(succ)
                    work.append((succ, 0))

    def _emit_sync(self, block: BasicBlock, position: int) -> None:
        sync = Call(self.module.declare_function(
            SYNC_FUNCTION, RUNTIME_SIGNATURES[SYNC_FUNCTION]), [])
        block.insert(position, sync)
        self.stats["syncs_inserted"] += 1

    def _loop_touches(self, loop, roots: FrozenSet[Root]) -> bool:
        for loop_block in loop.blocks:
            for inst in loop_block.instructions:
                if self._touches(inst, roots):
                    return True
        return False


def overlap_communication(module: Module) -> Dict[str, int]:
    """Run the pass; returns its statistics (for reports and tests)."""
    return CommOverlap(module).run()
