"""Glue kernels: lower promotion-blocking CPU snippets to the GPU.

Paper section 5.3: "Sometimes small CPU code regions between two GPU
functions prevent map promotion.  The performance of this code is
inconsequential, but transforming it into a single-threaded GPU
function obviates the need to copy the allocation units between GPU
and CPU memories and allows the map operations to rise higher in the
call graph."

Two shapes of glue region are recognized inside any loop that launches
kernels:

* a **straight-line run** of GPU-safe instructions inside one block
  (e.g. ``alpha = alpha * 0.9;`` updating a mapped global between two
  launches), and
* a **small inner loop** with no launches (e.g. a sequential reduction
  feeding the next kernel), together with the suffix of its preheader
  that initializes its induction variable.

A region qualifies only if it touches global/heap memory (otherwise it
cannot block promotion), every instruction can execute on the device,
and no register defined inside is consumed outside.  Each region
becomes a one-thread kernel launch; the caller of this pass then runs
communication management on the new launches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..interp.externals import GPU_SAFE
from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction,
                               LaunchKernel, Load, Select, Store)
from ..ir.module import Module
from ..ir.types import FunctionType, I64, VOID
from ..ir.values import Argument, Constant, GlobalVariable, Value
from ..analysis.alias import UNKNOWN, ordered_roots, underlying_objects
from ..analysis.loops import Loop, find_loops, loop_preheader
from ..analysis.cfg import predecessor_map
from ..runtime.api import MAP_FUNCTIONS, RUNTIME_FUNCTION_NAMES
from .contract import PassContract
from .outline import clone_instruction, clone_region, erase_blocks

#: Glue kernels may add launches (the outlined glue regions) but never
#: remove one; the outlined code must not duplicate or drop observable
#: external calls.
CONTRACT = PassContract(stage="glue-kernels", launches="grow")

_DEFAULT_MAX_INSTRUCTIONS = 60


class GlueKernels:
    """Outlines promotion-blocking CPU snippets into 1-thread kernels."""

    def __init__(self, module: Module,
                 max_instructions: int = _DEFAULT_MAX_INSTRUCTIONS):
        self.module = module
        self.max_instructions = max_instructions
        self.kernels: List[Function] = []
        self.launches: List[LaunchKernel] = []
        self._counter = 0

    def run(self) -> List[LaunchKernel]:
        for fn in list(self.module.defined_functions()):
            if not fn.is_kernel:
                self._process_function(fn)
        return self.launches

    def _process_function(self, fn: Function) -> None:
        changed = True
        while changed:
            changed = False
            for loop in find_loops(fn):
                if not _contains_launch(loop):
                    continue
                if self._glue_inner_loop(fn, loop):
                    changed = True
                    break
                if self._glue_straight_line(fn, loop):
                    changed = True
                    break

    # -- straight-line runs ------------------------------------------------

    def _glue_straight_line(self, fn: Function, loop: Loop) -> bool:
        for block in [b for b in fn.blocks if b in loop.blocks]:
            run = self._find_run(fn, block)
            if run is not None:
                self._outline_run(fn, block, run)
                return True
        return False

    def _find_run(self, fn: Function,
                  block: BasicBlock) -> Optional[Tuple[int, int]]:
        """A qualifying [start, stop) instruction run, or None.

        Maximal glue-safe runs are split at *separators* -- stores to
        stack slots and definitions consumed outside the run -- and
        each resulting chunk is tested independently, so a qualifying
        snippet (e.g. ``pivot = A[k][k]``) is found even when it sits
        between disqualified neighbours.
        """
        instructions = block.instructions
        start = 0
        while start < len(instructions):
            if not _glue_safe(instructions[start]):
                start += 1
                continue
            stop = start
            while stop < len(instructions) \
                    and _glue_safe(instructions[stop]):
                stop += 1
            for chunk_start, chunk_stop in self._chunks(fn, block, start,
                                                        stop):
                chunk = instructions[chunk_start:chunk_stop]
                if self._run_qualifies(fn, block, chunk):
                    return (chunk_start, chunk_stop)
            start = stop
        return None

    def _chunks(self, fn: Function, block: BasicBlock, start: int,
                stop: int) -> List[Tuple[int, int]]:
        """Split [start, stop) at instructions that cannot be outlined."""
        instructions = block.instructions
        maximal = set(instructions[start:stop])
        chunks: List[Tuple[int, int]] = []
        current = start
        for index in range(start, stop):
            inst = instructions[index]
            separator = False
            if isinstance(inst, Store) and isinstance(inst.pointer,
                                                      Alloca):
                separator = True
            elif inst.produces_value:
                for other in fn.instructions():
                    if other not in maximal and inst in other.operands:
                        separator = True
                        break
            if separator:
                if current < index:
                    chunks.append((current, index))
                current = index + 1
        if current < stop:
            chunks.append((current, stop))
        return [self._trim_chunk(instructions, c) for c in chunks]

    @staticmethod
    def _trim_chunk(instructions: List[Instruction],
                    chunk: Tuple[int, int]) -> Tuple[int, int]:
        """Drop trailing definitions with no consumer inside the chunk
        (they belong to the *next* statement and must stay on the CPU)."""
        start, stop = chunk
        while stop > start:
            last = instructions[stop - 1]
            if not last.produces_value:
                break
            used_inside = any(last in inst.operands
                              for inst in instructions[start:stop - 1])
            if used_inside:
                break
            stop -= 1
        return (start, stop)

    def _run_qualifies(self, fn: Function, block: BasicBlock,
                       run: Sequence[Instruction]) -> bool:
        if not run or len(run) > self.max_instructions:
            return False
        if not any(_touches_shared_memory(inst) for inst in run):
            return False
        if not any(isinstance(inst, Store) for inst in run):
            return False  # pure reads get promoted away differently
        defined = set(run)
        # Every memory access must hit memory the GPU can legitimately
        # see: globals, heap blocks, or registered stack units.  The
        # exception is a *load* of a read-only scalar stack slot (e.g.
        # the enclosing loop counter): its value is evaluated on the
        # CPU and passed to the glue kernel by value.
        for inst in run:
            if isinstance(inst, Store):
                for root in underlying_objects(inst.pointer):
                    if not isinstance(root, (GlobalVariable, Call)):
                        return False
            elif isinstance(inst, Load):
                if self._slot_load(fn, inst, run) is not None:
                    continue
                for root in underlying_objects(inst.pointer):
                    if not isinstance(root, (GlobalVariable, Call)):
                        return False
        for inst in fn.instructions():
            if inst in defined:
                continue
            for operand in inst.operands:
                if operand in defined:
                    return False  # a defined register escapes the run
        return self._unblocks_promotion(fn, block, run)

    @staticmethod
    def _slot_load(fn: Function, inst: Load,
                   run: Sequence[Instruction]) -> Optional[Alloca]:
        """The scalar stack slot this load reads, if it qualifies for
        pass-by-value (direct slot, not written inside the run)."""
        pointer = inst.pointer
        if not isinstance(pointer, Alloca):
            return None
        if not pointer.allocated_type.is_scalar:
            return None
        uses = [u for u in fn.instructions() if pointer in u.operands]
        if not _is_direct_scalar_alloca(pointer, uses):
            return None
        run_set = set(run)
        for use in uses:
            if isinstance(use, Store) and use in run_set:
                return None  # written inside the run: value would go stale
        return pointer

    def _outline_run(self, fn: Function, block: BasicBlock,
                     run: Tuple[int, int]) -> None:
        start, stop = run
        instructions = block.instructions[start:stop]
        # Loads of scalar stack slots become by-value parameters: the
        # CPU evaluates them just before the launch.
        slot_loads = [inst for inst in instructions
                      if isinstance(inst, Load)
                      and self._slot_load(fn, inst, instructions)
                      is not None]
        remaining = [inst for inst in instructions
                     if inst not in slot_loads]
        live_ins = _region_live_ins(remaining)
        live_ins = [v for v in live_ins if v not in slot_loads]
        value_types = [inst.type for inst in slot_loads]
        kernel = self._new_kernel(fn, live_ins, value_types)
        value_map: Dict[Value, Value] = dict(
            zip(live_ins, kernel.args[1:]))
        for inst, formal in zip(slot_loads,
                                kernel.args[1 + len(live_ins):]):
            value_map[inst] = formal
        body = kernel.new_block("glue")
        for inst in remaining:
            clone = clone_instruction(inst, value_map, {})
            if clone.produces_value:
                clone.name = kernel.unique_name(inst.name or "t")
                value_map[inst] = clone
            body.append(clone)
        IRBuilder(body).ret()

        # CPU side: re-load the slots, then launch.
        new_loads = [Load(inst.pointer) for inst in slot_loads]
        for load, original in zip(new_loads, slot_loads):
            load.name = fn.unique_name(original.name or "glue.val")
        launch = LaunchKernel(kernel, Constant(I64, 1),
                              list(live_ins) + list(new_loads))
        del block.instructions[start:stop]
        for offset, inst in enumerate(new_loads + [launch]):
            inst.parent = block
            block.instructions.insert(start + offset, inst)
        for inst in instructions:
            inst.parent = None
        self.launches.append(launch)

    def _unblocks_promotion(self, fn: Function, block: BasicBlock,
                            region: Sequence[Instruction]) -> bool:
        """Is this region the *only* CPU code in its enclosing
        launch-containing loop that touches some mapped allocation
        unit?  If so, outlining it lets map promotion hoist that unit
        (paper: glue kernels exist to unblock promotion); otherwise the
        launch would be pure overhead."""
        from ..analysis.modref import ModRefAnalysis
        enclosing = None
        for loop in find_loops(fn):
            if block in loop.blocks and _contains_launch(loop):
                if enclosing is None \
                        or len(loop.blocks) < len(enclosing.blocks):
                    enclosing = loop
        if enclosing is None:
            return False
        region_set = set(region)
        region_roots = set()
        for inst in region:
            if isinstance(inst, (Load, Store)):
                for root in underlying_objects(inst.pointer):
                    if isinstance(root, (GlobalVariable, Call)):
                        region_roots.add(root)
        mapped_roots = set()
        for loop_block in enclosing.blocks:
            for inst in loop_block.instructions:
                if isinstance(inst, Call) \
                        and inst.callee.name in MAP_FUNCTIONS \
                        and inst.args:
                    mapped_roots |= {
                        root for root
                        in underlying_objects(inst.args[0])
                        if isinstance(root, (GlobalVariable, Call))}
        modref = ModRefAnalysis()
        for root in ordered_roots(region_roots & mapped_roots):
            mod, ref = modref.region_mod_ref(enclosing.blocks, root,
                                             exclude=region_set)
            if not mod and not ref:
                return True  # outlining frees this unit for promotion
        return False

    # -- inner loops --------------------------------------------------------------

    def _glue_inner_loop(self, fn: Function, loop: Loop) -> bool:
        for inner in find_loops(fn):
            if not (inner.blocks < loop.blocks):
                continue
            # Only glue loops sitting *directly* between the launches
            # (paper: "small CPU code regions between two GPU
            # functions"); anything nested deeper is ordinary CPU work.
            if inner.parent is None or inner.parent.header \
                    is not loop.header:
                continue
            plan = self._analyze_inner_loop(fn, loop, inner)
            if plan is not None:
                self._outline_inner_loop(fn, *plan)
                return True
        return False

    def _analyze_inner_loop(self, fn: Function, outer: Loop, inner: Loop):
        plan = self._analyze_inner_loop_shape(fn, outer, inner,
                                              extend_exit=True)
        if plan is not None:
            return plan
        return self._analyze_inner_loop_shape(fn, outer, inner,
                                              extend_exit=False)

    def _analyze_inner_loop_shape(self, fn: Function, outer: Loop,
                                  inner: Loop, extend_exit: bool):
        if _contains_launch(inner):
            return None
        size = sum(len(b.instructions) for b in inner.blocks)
        if size > self.max_instructions:
            return None
        preds = predecessor_map(fn)
        preheader = loop_preheader(inner, preds)
        if preheader is None or preheader not in outer.blocks:
            return None
        exit_targets = {to for _, to in inner.exit_edges()}
        if len(exit_targets) != 1:
            return None
        exit_block = next(iter(exit_targets))
        if any(p not in inner.blocks for p in exit_block.predecessors()):
            return None
        for block in inner.blocks:
            for inst in block.instructions:
                if not _glue_safe(inst) and not inst.is_terminator:
                    return None
                if isinstance(inst, (Load, Store)):
                    for root in underlying_objects(inst.pointer):
                        if root is UNKNOWN:
                            return None  # unregistered memory: refuse
        if not any(_touches_shared_memory(inst)
                   for inst in inner.instructions()):
            return None
        suffix = self._preheader_suffix(preheader)
        # Scalars flowing out of the loop (e.g. reduction results) are
        # often consumed immediately after it; absorbing the exit
        # block's glue-safe prefix moves producer and consumer to the
        # GPU together ("glue kernels force virtual registers into
        # memory", paper section 5.3).
        exit_prefix: List[Instruction] = []
        if extend_exit:
            for inst in exit_block.instructions[:-1]:
                if _glue_safe(inst):
                    exit_prefix.append(inst)
                else:
                    break
        # Trim the prefix until none of its definitions escape the
        # region (the prefix greedily absorbs address computations that
        # feed the *next* launch's map calls; those must stay on the CPU).
        loop_insts = [i for b in inner.blocks for i in b.instructions]
        while exit_prefix:
            region_set = set(suffix) | set(loop_insts) | set(exit_prefix)
            cut = None
            for index, inst in enumerate(exit_prefix):
                if inst.produces_value \
                        and self._value_used_outside(fn, inst, region_set):
                    cut = index
                    break
                if isinstance(inst, Store) \
                        and isinstance(inst.pointer, Alloca) \
                        and self._value_used_outside(fn, inst.pointer,
                                                     region_set |
                                                     {inst.pointer}):
                    # Writing a stack scalar that outlives the region
                    # (e.g. the next loop's induction init) must stay
                    # on the CPU.
                    cut = index
                    break
            if cut is None:
                break
            exit_prefix = exit_prefix[:cut]
        region_insts = list(suffix)
        region_insts.extend(loop_insts)
        region_insts.extend(exit_prefix)
        region_set = set(region_insts)

        # Scalar allocas: fully-internal ones are cloned (detected at
        # outline time); read-only ones become value parameters;
        # anything else disqualifies.
        value_params: List[Alloca] = []
        for alloca, uses in _alloca_uses(fn).items():
            region_uses = [u for u in uses if u in region_set]
            if not region_uses:
                continue
            if not _is_direct_scalar_alloca(alloca, uses):
                continue
            outside = [u for u in uses if u not in region_set]
            if not outside:
                continue  # defined only here: handled as live-in pointer
            if all(isinstance(u, Load) or u is alloca for u in region_uses):
                value_params.append(alloca)
                continue
            # Written in the region and used outside: all outside uses
            # must be loads *after* (we cannot spill back) -> reject.
            return None

        # No register defined in the region may be used outside it.
        for inst in fn.instructions():
            if inst in region_set:
                continue
            for operand in inst.operands:
                if operand in region_set:
                    return None
        if not self._unblocks_promotion(fn, preheader, region_insts):
            return None
        return (outer, inner, preheader, suffix, exit_prefix,
                exit_block, value_params, region_insts)

    def _value_used_outside(self, fn: Function, value: Value,
                            region: Set[Instruction]) -> bool:
        for inst in fn.instructions():
            if inst in region:
                continue
            if value in inst.operands:
                return True
        return False

    def _preheader_suffix(self, preheader: BasicBlock) -> List[Instruction]:
        suffix: List[Instruction] = []
        for inst in reversed(preheader.instructions[:-1]):
            if _glue_safe(inst):
                suffix.append(inst)
            else:
                break
        suffix.reverse()
        return suffix

    def _outline_inner_loop(self, fn: Function, outer: Loop, inner: Loop,
                            preheader: BasicBlock,
                            suffix: List[Instruction],
                            exit_prefix: List[Instruction],
                            exit_block: BasicBlock,
                            value_params: List[Alloca],
                            region_insts: List[Instruction]) -> None:
        region_set = set(region_insts)
        live_ins: List[Value] = []
        seen: Set[Value] = set(value_params)
        for inst in region_insts:
            for operand in inst.operands:
                if operand in seen or operand in region_set:
                    continue
                if isinstance(operand, Alloca) and operand in value_params:
                    continue
                if isinstance(operand, (Constant, GlobalVariable)):
                    continue
                if isinstance(operand, (Instruction, Argument)):
                    seen.add(operand)
                    live_ins.append(operand)
        # Allocas whose every use is in the region: clone, not param.
        internal_allocas = [v for v in live_ins if isinstance(v, Alloca)
                            and _all_uses_inside(fn, v, region_set)]
        live_ins = [v for v in live_ins if v not in internal_allocas]

        value_types = [a.allocated_type for a in value_params]
        kernel = self._new_kernel(fn, live_ins, value_types)
        value_map: Dict[Value, Value] = dict(zip(live_ins, kernel.args[1:]))
        value_args = kernel.args[1 + len(live_ins):]

        entry = kernel.new_block("entry")
        exit_clone = kernel.new_block("exit")
        builder = IRBuilder(entry)
        for alloca in internal_allocas:
            clone = builder.alloca(alloca.allocated_type, 1,
                                   alloca.name or "loc")
            value_map[alloca] = clone
        for alloca, formal in zip(value_params, value_args):
            clone = builder.alloca(alloca.allocated_type, 1,
                                   alloca.name or "ro")
            builder.store(formal, clone)
            value_map[alloca] = clone
        block_map: Dict[BasicBlock, BasicBlock] = {exit_block: exit_clone}
        ordered_blocks = [b for b in fn.blocks if b in inner.blocks]
        clone_region(ordered_blocks, kernel, value_map, block_map)
        for inst in suffix:
            clone = clone_instruction(inst, value_map, block_map)
            if clone.produces_value:
                clone.name = kernel.unique_name(inst.name or "t")
                value_map[inst] = clone
            entry.append(clone)
        builder.position_at_end(entry)
        builder.br(block_map[inner.header])
        exit_builder = IRBuilder(exit_clone)
        for inst in exit_prefix:
            clone = clone_instruction(inst, value_map, block_map)
            if clone.produces_value:
                clone.name = kernel.unique_name(inst.name or "t")
                value_map[inst] = clone
            exit_clone.append(clone)
        exit_builder.ret()
        kernel.blocks.remove(exit_clone)
        kernel.blocks.append(exit_clone)

        # Rewrite the caller: cut the suffix and the absorbed exit
        # prefix, launch, jump past the loop.
        for inst in suffix:
            inst.erase()
        for inst in exit_prefix:
            inst.erase()
        term = preheader.terminator
        assert term is not None
        term.erase()
        launch_builder = IRBuilder(preheader)
        args: List[Value] = list(live_ins)
        for alloca in value_params:
            args.append(launch_builder.load(alloca))
        launch = launch_builder.launch(kernel, 1, args)
        launch_builder.br(exit_block)
        erase_blocks(fn, inner.blocks)
        self.launches.append(launch)

    # -- shared helpers ----------------------------------------------------------------

    def _new_kernel(self, fn: Function, live_ins: Sequence[Value],
                    value_types: Sequence) -> Function:
        self._counter += 1
        name = f"{fn.name}__glue{self._counter}"
        param_types = [I64] + [v.type for v in live_ins] + list(value_types)
        param_names = ["tid"] \
            + [f"in{i}" for i in range(len(live_ins))] \
            + [f"val{i}" for i in range(len(value_types))]
        kernel = self.module.add_function(
            name, FunctionType(VOID, param_types), param_names,
            is_kernel=True)
        self.kernels.append(kernel)
        return kernel


# -- predicates -------------------------------------------------------------


def _contains_launch(loop: Loop) -> bool:
    return any(isinstance(i, LaunchKernel) for i in loop.instructions())


def _glue_safe(inst: Instruction) -> bool:
    """May this instruction execute inside a 1-thread GPU kernel?"""
    if isinstance(inst, (Load, Store, GetElementPtr, BinaryOp, Compare,
                         Cast, Select)):
        # Storing a pointer on the GPU violates the CGCM restriction.
        if isinstance(inst, Store) and inst.value.type.is_pointer:
            return False
        return True
    if isinstance(inst, Call):
        return inst.callee.name in GPU_SAFE
    return False


def _touches_shared_memory(inst: Instruction) -> bool:
    """Does the instruction access memory a kernel could also see?"""
    if isinstance(inst, Load):
        pointer = inst.pointer
    elif isinstance(inst, Store):
        pointer = inst.pointer
    else:
        return False
    return any(not isinstance(root, Alloca) or root is UNKNOWN
               for root in underlying_objects(pointer))


def _region_live_ins(instructions: Sequence[Instruction]) -> List[Value]:
    region = set(instructions)
    seen: Set[Value] = set()
    ordered: List[Value] = []
    for inst in instructions:
        for operand in inst.operands:
            if operand in region or operand in seen:
                continue
            if isinstance(operand, (Constant, GlobalVariable)):
                continue
            if isinstance(operand, (Instruction, Argument)):
                seen.add(operand)
                ordered.append(operand)
    return ordered


def _alloca_uses(fn: Function) -> Dict[Alloca, List[Instruction]]:
    uses: Dict[Alloca, List[Instruction]] = {}
    for inst in fn.instructions():
        for operand in inst.operands:
            if isinstance(operand, Alloca):
                uses.setdefault(operand, []).append(inst)
    return uses


def _is_direct_scalar_alloca(alloca: Alloca,
                             uses: List[Instruction]) -> bool:
    if not alloca.allocated_type.is_scalar:
        return False
    if not (isinstance(alloca.count, Constant)
            and alloca.count.value == 1):
        return False
    for use in uses:
        if isinstance(use, Load) and use.pointer is alloca:
            continue
        if isinstance(use, Store) and use.pointer is alloca \
                and use.value is not alloca:
            continue
        return False
    return True


def _all_uses_inside(fn: Function, value: Value,
                     region: Set[Instruction]) -> bool:
    for inst in fn.instructions():
        if inst in region or inst is value:
            continue
        if value in inst.operands:
            return False
    return True
