"""Region cloning: the machinery behind outlining loops and glue code.

`clone_region` copies a set of basic blocks into a target function,
remapping register operands through a value map and branch targets
through a block map.  The DOALL outliner and the glue-kernel pass both
build on it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..errors import TransformError
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction,
                               LaunchKernel, Load, Return, Select, Store,
                               Unreachable)
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


def remap_operand(value: Value, value_map: Dict[Value, Value]) -> Value:
    """Map a register through ``value_map``; constants/globals pass
    through untouched."""
    mapped = value_map.get(value)
    if mapped is not None:
        return mapped
    if isinstance(value, (Constant, GlobalVariable, UndefValue)):
        return value
    if isinstance(value, (Instruction, Argument)):
        raise TransformError(
            f"outlining: operand {value.ref} has no mapping (it is "
            "defined outside the cloned region but was not made a "
            "parameter)")
    return value


def clone_instruction(inst: Instruction, value_map: Dict[Value, Value],
                      block_map: Dict[BasicBlock, BasicBlock]) -> Instruction:
    """Create a copy of ``inst`` with operands and targets remapped."""
    def op(value: Value) -> Value:
        return remap_operand(value, value_map)

    if isinstance(inst, Alloca):
        clone = Alloca(inst.allocated_type, op(inst.count), inst.name)
    elif isinstance(inst, Load):
        clone = Load(op(inst.pointer), inst.name)
    elif isinstance(inst, Store):
        clone = Store(op(inst.value), op(inst.pointer))
    elif isinstance(inst, GetElementPtr):
        clone = GetElementPtr(op(inst.pointer),
                              [op(i) for i in inst.indices], inst.name)
    elif isinstance(inst, BinaryOp):
        clone = BinaryOp(inst.op, op(inst.lhs), op(inst.rhs), inst.name)
    elif isinstance(inst, Compare):
        clone = Compare(inst.pred, op(inst.lhs), op(inst.rhs), inst.name)
    elif isinstance(inst, Cast):
        clone = Cast(inst.kind, op(inst.value), inst.type, inst.name)
    elif isinstance(inst, Select):
        clone = Select(op(inst.condition), op(inst.if_true),
                       op(inst.if_false), inst.name)
    elif isinstance(inst, Call):
        clone = Call(inst.callee, [op(a) for a in inst.args], inst.name)
    elif isinstance(inst, LaunchKernel):
        clone = LaunchKernel(inst.kernel, op(inst.grid),
                             [op(a) for a in inst.args])
    elif isinstance(inst, Branch):
        clone = Branch(block_map.get(inst.target, inst.target))
    elif isinstance(inst, CondBranch):
        clone = CondBranch(op(inst.condition),
                           block_map.get(inst.if_true, inst.if_true),
                           block_map.get(inst.if_false, inst.if_false))
    elif isinstance(inst, Return):
        clone = Return(op(inst.value) if inst.value is not None else None)
    elif isinstance(inst, Unreachable):
        clone = Unreachable()
    else:
        raise TransformError(f"cannot clone {inst.opcode}")
    return clone


def clone_region(blocks: Sequence[BasicBlock], target: Function,
                 value_map: Dict[Value, Value],
                 block_map: Dict[BasicBlock, BasicBlock],
                 skip: Optional[Set[Instruction]] = None
                 ) -> List[BasicBlock]:
    """Clone ``blocks`` into ``target``.

    ``value_map`` must pre-seed every externally-defined register the
    region uses (parameters, privatized allocas); it is extended with
    the clones of region-internal instructions.  ``block_map`` must
    pre-seed targets *outside* the region (e.g. loop header -> kernel
    exit); entries for the region's own blocks are created here.
    ``skip`` instructions are omitted (e.g. the induction update).
    """
    skip = skip or set()
    new_blocks: List[BasicBlock] = []
    for block in blocks:
        new_block = target.new_block(block.name)
        block_map[block] = new_block
        new_blocks.append(new_block)
    for block, new_block in zip(blocks, new_blocks):
        for inst in block.instructions:
            if inst in skip:
                continue
            clone = clone_instruction(inst, value_map, block_map)
            if clone.produces_value:
                clone.name = target.unique_name(inst.name or "t")
                value_map[inst] = clone
            new_block.append(clone)
    return new_blocks


def erase_blocks(fn: Function, blocks: Iterable[BasicBlock]) -> None:
    """Remove blocks from a function (caller guarantees no live uses)."""
    doomed = set(blocks)
    fn.blocks = [b for b in fn.blocks if b not in doomed]
    for block in doomed:
        block.parent = None
