"""Built-in request mixes for the serve driver, bench, and tests.

Three small MiniC programs share one 4 KiB ``const double`` table
(byte-identical content under the same global name), so concurrent
requests -- even of *different* programs -- exercise the cross-request
shared-mapping path.  Each program takes one ``__ARG0__`` placeholder,
so one source fans out into several distinct artifacts and the cache
sees both hits and misses.

``QUOTA_SOURCE`` allocates constant-size heap buffers, giving the
tenant-quota machinery something the device-heap cap actually governs
(globals live in the module segment, outside the cuMemAlloc arena).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .request import ServeRequest

#: Elements in the shared read-only table (4 KiB of doubles).
TABLE_SIZE = 512


def _table_literal() -> str:
    return ", ".join(f"{(i * 37 % 97) / 97.0:.6f}"
                     for i in range(TABLE_SIZE))


_TABLE_DECL = (f"const double W[{TABLE_SIZE}] = "
               f"{{{_table_literal()}}};\n")

#: data * W + bias, three sweeps (maps W plus two mutable arrays).
SMOOTH_SOURCE = _TABLE_DECL + r"""
double data[512];
double out[512];
int main(void) {
    for (int i = 0; i < 512; i++) data[i] = 0.001 * i + __ARG0__;
    for (int rep = 0; rep < 3; rep++) {
        for (int i = 0; i < 512; i++) out[i] = data[i] * W[i] + 0.25;
        for (int i = 0; i < 512; i++) data[i] = out[i];
    }
    double s = 0.0;
    for (int i = 0; i < 512; i++) s += data[i];
    print_f64(s);
    return 0;
}
"""

#: Two-array elementwise chain against the same table.
SCALE_SOURCE = _TABLE_DECL + r"""
double a[512];
double b[512];
int main(void) {
    for (int i = 0; i < 512; i++) {
        a[i] = 0.5 + 0.002 * i;
        b[i] = __ARG0__;
    }
    for (int rep = 0; rep < 2; rep++) {
        for (int i = 0; i < 512; i++) b[i] = b[i] + a[i] * W[i];
        for (int i = 0; i < 512; i++) a[i] = a[i] * 0.75 + W[i];
    }
    double s = 0.0;
    for (int i = 0; i < 512; i++) s += a[i] + b[i];
    print_f64(s);
    return 0;
}
"""

#: Table-weighted square then a CPU-side reduction.
DOTNORM_SOURCE = _TABLE_DECL + r"""
double v[512];
double w2[512];
int main(void) {
    for (int i = 0; i < 512; i++) v[i] = __ARG0__ - 0.003 * i;
    for (int i = 0; i < 512; i++) w2[i] = v[i] * v[i] * W[i];
    double norm = 0.0;
    for (int i = 0; i < 512; i++) norm += w2[i];
    print_f64(norm);
    return 0;
}
"""

#: Constant-size heap buffers: the device-heap quota actually binds.
#: Two 16 KiB blocks plus one 8 KiB block cycle through three launch
#: rounds, so a 24 KiB tenant quota forces LRU eviction and anything
#: under 16 KiB is rejected by the strict heap-limit check.
QUOTA_SOURCE = r"""
int main(void) {
    double *a = (double *) malloc(16384);
    double *b = (double *) malloc(16384);
    double *c = (double *) malloc(8192);
    for (int i = 0; i < 2048; i++) {
        a[i] = 0.001 * i + __ARG0__;
        b[i] = 1.0 - 0.0005 * i;
    }
    for (int i = 0; i < 1024; i++) c[i] = 0.5;
    for (int rep = 0; rep < 3; rep++) {
        for (int i = 0; i < 2048; i++) a[i] = a[i] * 1.001 + b[i] * 0.01;
        for (int i = 0; i < 1024; i++) c[i] = c[i] + a[i] * 0.001;
    }
    double s = 0.0;
    for (int i = 0; i < 2048; i++) s += a[i];
    for (int i = 0; i < 1024; i++) s += c[i];
    print_f64(s);
    free((char *) a);
    free((char *) b);
    free((char *) c);
    return 0;
}
"""

#: The serve mix: (label, source) in dispatch rotation order.
MIX_SOURCES: Tuple[Tuple[str, str], ...] = (
    ("smooth", SMOOTH_SOURCE),
    ("scale", SCALE_SOURCE),
    ("dotnorm", DOTNORM_SOURCE),
)

#: Argument variants per program: distinct artifacts from one source.
MIX_ARGS: Tuple[str, ...] = ("1.5", "2.5")


def build_mix(clients: int, seed: int = 0,
              tenants: Sequence[str] = ("default",),
              arrival_spread_s: float = 0.0,
              sources: Optional[Sequence[Tuple[str, str]]] = None,
              args_variants: Sequence[str] = MIX_ARGS
              ) -> List[ServeRequest]:
    """``clients`` requests over the mix, deterministically seeded.

    Requests rotate over (program x argument x tenant); arrivals are
    uniform over ``[0, arrival_spread_s]`` from ``seed`` (all zero --
    one concurrent burst -- by default).  Same inputs, same request
    list, always.
    """
    rng = random.Random(seed)
    chosen = list(sources if sources is not None else MIX_SOURCES)
    requests = []
    for index in range(clients):
        _, source = chosen[index % len(chosen)]
        arg = args_variants[(index // len(chosen)) % len(args_variants)]
        arrival = rng.uniform(0.0, arrival_spread_s) \
            if arrival_spread_s > 0 else 0.0
        requests.append(ServeRequest(
            request_id=index, arrival_s=arrival,
            tenant=tenants[index % len(tenants)],
            source=source, args=(arg,)))
    requests.sort(key=lambda r: (r.arrival_s, r.request_id))
    return requests
