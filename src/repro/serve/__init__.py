"""``repro.serve``: a compile-once, serve-many request runtime.

The serving layer admits a stream of simulated client requests (a
workload name, or MiniC source plus arguments, plus a tenant), compiles
each distinct (source-hash x config) once through the ``repro.api``
artifact cache, and executes requests on a deterministic simulated-time
scheduler modelled after CrystalGPU's transparent batching:

* compatible launches from concurrent requests of the same artifact
  merge into shared grid dispatches (one launch latency, packed cores);
* read-only allocation units whose content is already device-resident
  for another in-flight request share the device copy -- refcounted in
  :class:`~repro.serve.sharing.SharedMappingRegistry` and *verified* by
  the communication sanitizer's shared-mutation check;
* per-tenant device-heap quotas reuse the PR-5 eviction/sentinel
  machinery by capping each tenant's request configs;
* admission/scheduling policy objects (FIFO, fair-share) order the
  queue, and every request carries metrics (queue wait, compile
  hit/miss, transfer bytes saved, modelled latency).

Everything is simulated time on a :class:`~repro.gpu.timing.SimClock`
in streams mode -- per-worker CPU lanes, one GPU engine, one PCIe
lane -- so serve runs are deterministic and machine-independent.
"""

from .policy import FairSharePolicy, FifoPolicy, make_policy
from .request import RequestMetrics, ServeRequest, TenantSpec
from .server import ServeLoop, ServeOptions, ServeReport, serve
from .sharing import SharedMappingRegistry

__all__ = [
    "FairSharePolicy", "FifoPolicy", "make_policy",
    "RequestMetrics", "ServeRequest", "TenantSpec",
    "ServeLoop", "ServeOptions", "ServeReport", "serve",
    "SharedMappingRegistry",
]
