"""The serve loop: admission, batching, and simulated-time dispatch.

:class:`ServeLoop` drives a deterministic discrete-event simulation
over one :class:`~repro.gpu.timing.SimClock` in streams mode.  Worker
``w`` owns engine lane ``cpu{w}`` (spans on distinct workers overlap;
one worker serializes), every request owns stream ``req{id}``, and the
built-in ``gpu`` and ``comm`` lanes model the single device and PCIe
bus every request contends for.

Each request physically executes on its *own* fresh simulated machine
-- per-request outputs are byte-identical to isolated runs by
construction; the sanitizer verifies rather than assumes this -- while
the serve clock re-prices the cross-request schedule:

* **Compile**: each distinct (resolved source, tenant config) artifact
  compiles once through the ``repro.api`` cache.  The modelled cost of
  a miss is ``static instruction count x compile_cycles_per_inst``
  CPU cycles; a hit costs ``compile_hit_cycles``.  With
  ``cache=False`` every request is charged the full miss cost (the
  artifact still compiles once physically -- the ablation is in the
  model, like every other cost here).
* **Batching**: pending requests of the dispatched artifact ride along
  (up to ``batch_limit``), and their launch sequences -- identical
  because the artifact and inputs are -- merge launch-by-launch into
  one grid dispatch: one launch latency, ``gpu_time(sum totals, max
  maxs)``, which is exact under the cost model for concatenated
  grids.  A launch-signature mismatch falls back to unbatched GPU
  spans and counts ``batch_conflicts``.
* **Per-request phases** are modelled as aggregate compile / host /
  transfer / GPU spans in that order (the fine-grained interleaving
  within one request is already priced by its own machine; the serve
  clock models cross-request contention).

Rejections are immediate and free: a request whose source fails the
frontend, or whose tenant quota fails the strict heap-limit check,
completes at dispatch time with ``status="rejected"``.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import api
from ..core.config import CgcmConfig, OptLevel
from ..errors import CgcmRuntimeError, ConfigError, FrontendError
from ..gpu.timing import LANE_COMM, LANE_CPU, LANE_GPU, SimClock, TraceEvent
from ..gpu.topology import Topology
from .policy import make_policy
from .request import RequestMetrics, ServeRequest, TenantSpec
from .sharing import SharedMappingRegistry

#: Modelled duration of the admission bookkeeping span in the trace.
_ADMIT_EPS = 1e-9


@dataclass
class ServeOptions:
    """Serve-loop knobs.  Everything is deterministic given these."""

    #: Concurrent host workers (one CPU lane each).
    workers: int = 4
    #: "fifo", "fair", or any object with ``select()``.
    policy: object = "fifo"
    #: Merge same-artifact pending requests into shared dispatches.
    batching: bool = True
    #: Share read-only device copies across in-flight requests.
    sharing: bool = True
    #: Model the artifact cache; False charges a full compile per
    #: request (the cache-off ablation).
    cache: bool = True
    #: Arm the communication sanitizer on every request's run.
    sanitize: bool = False
    #: Engine override for request runs (None = config default).
    engine: Optional[str] = None
    opt_level: OptLevel = OptLevel.OPTIMIZED
    #: Modelled CPU cycles to compile one static IR instruction.
    compile_cycles_per_inst: float = 6000.0
    #: Modelled CPU cycles for an artifact-cache hit.
    compile_hit_cycles: float = 2000.0
    #: Largest shared dispatch (including the selected request).
    batch_limit: int = 64
    #: Seeded shuffle of the pending view before each policy pick;
    #: None = arrival order.  Exists so tests can prove output
    #: byte-identity under arbitrary dispatch interleavings.
    shuffle_seed: Optional[int] = None
    #: Record TraceEvents (per-request tracks) on the serve clock.
    record_events: bool = False
    #: Tenant contracts by name; unknown tenants serve uncapped.
    #: Heap quotas are applied at *execution* time
    #: (``CompiledWorkload.run(device_heap_limit=...)``), so every
    #: quota variant of one source shares a single compiled artifact.
    tenants: Dict[str, TenantSpec] = field(default_factory=dict)
    #: Base config for request compilation.  None = built from
    #: ``opt_level``/``sanitize``.
    base_config: Optional[CgcmConfig] = None
    #: Multi-device topology injected into the base config when it
    #: does not pin its own (None = single device).
    topology: Optional[Topology] = None
    #: The :class:`repro.api.Session` whose artifact cache backs this
    #: loop; None = the process-wide default session.
    session: Optional["api.Session"] = None

    def resolved_base_config(self) -> CgcmConfig:
        if self.base_config is not None:
            config = dataclasses.replace(self.base_config)
        else:
            config = CgcmConfig(opt_level=self.opt_level,
                                sanitize=self.sanitize)
        if self.topology is not None and config.topology is None:
            config = dataclasses.replace(config, topology=self.topology)
        return config


class _Admitted:
    """One admitted request plus everything identity-related."""

    __slots__ = ("request", "source", "artifact", "config", "key",
                 "metrics", "heap_limit")

    def __init__(self, request: ServeRequest, source: str, artifact: str,
                 config: CgcmConfig, key: Tuple,
                 metrics: RequestMetrics,
                 heap_limit: Optional[int] = None):
        self.request = request
        self.source = source
        self.artifact = artifact
        self.config = config
        self.key = key
        self.metrics = metrics
        #: Tenant heap quota, applied per run -- deliberately NOT part
        #: of ``key``: quota variants share one compiled artifact.
        self.heap_limit = heap_limit


@dataclass
class ServeReport:
    """Outcome of one serve run: per-request metrics plus aggregates."""

    metrics: List[RequestMetrics]
    makespan_s: float
    throughput_rps: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    mean_latency_s: float
    counters: Dict[str, int]
    lane_totals: Dict[str, float]
    tenants: Dict[str, Dict[str, float]]
    options: Dict[str, object]
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def ok(self) -> List[RequestMetrics]:
        return [m for m in self.metrics if m.status == "ok"]

    @property
    def rejected(self) -> List[RequestMetrics]:
        return [m for m in self.metrics if m.status == "rejected"]

    def to_json(self) -> dict:
        return {
            "options": self.options,
            "requests": len(self.metrics),
            "ok": len(self.ok),
            "rejected": len(self.rejected),
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "mean_latency_s": self.mean_latency_s,
            "counters": self.counters,
            "lane_totals": self.lane_totals,
            "tenants": self.tenants,
            "per_request": [m.to_json() for m in self.metrics],
        }

    def render(self) -> str:
        c = self.counters
        lines = [
            f"serve: {len(self.ok)}/{len(self.metrics)} ok "
            f"({len(self.rejected)} rejected), "
            f"policy={self.options.get('policy')} "
            f"workers={self.options.get('workers')}",
            f"  makespan        {self.makespan_s * 1e3:10.3f} ms   "
            f"throughput {self.throughput_rps:12.0f} req/s",
            f"  latency p50/p95/p99  "
            f"{self.latency_p50_s * 1e6:8.1f} / "
            f"{self.latency_p95_s * 1e6:8.1f} / "
            f"{self.latency_p99_s * 1e6:8.1f} us",
            f"  compile         {c.get('compile_misses', 0)} miss, "
            f"{c.get('compile_hits', 0)} hit",
            f"  batching        {c.get('batches', 0)} dispatches for "
            f"{c.get('batched_requests', 0)} requests "
            f"({c.get('batch_conflicts', 0)} conflicts)",
            f"  sharing         {c.get('shared_attaches', 0)} attaches, "
            f"{c.get('transfer_bytes_saved', 0)} HtoD bytes saved",
        ]
        if c.get("device_evictions", 0) or c.get("sentinel_units", 0) \
                or c.get("cpu_fallback_launches", 0):
            lines.append(
                f"  quota pressure  {c.get('device_evictions', 0)} "
                f"evictions, {c.get('sentinel_units', 0)} sentinels, "
                f"{c.get('cpu_fallback_launches', 0)} CPU fallbacks")
        for name in sorted(self.tenants):
            t = self.tenants[name]
            lines.append(
                f"  tenant {name:<12} {int(t['requests']):5d} req "
                f"({int(t['rejected'])} rejected)  "
                f"service {t['service_s'] * 1e6:9.1f} us  "
                f"mean latency {t['mean_latency_s'] * 1e6:9.1f} us")
        return "\n".join(lines)


def _percentile(sorted_values: Sequence[float], pct: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * pct // 100))  # ceil
    return sorted_values[int(rank) - 1]


class ServeLoop:
    """Deterministic simulated-time request server.

    One instance serves one request list (:meth:`run`); the clock,
    registry, and artifact bookkeeping stay inspectable afterwards.
    """

    def __init__(self, options: Optional[ServeOptions] = None):
        self.options = options if options is not None else ServeOptions()
        if self.options.workers < 1:
            raise ConfigError(
                f"ServeOptions.workers must be >= 1, got "
                f"{self.options.workers}")
        if self.options.batch_limit < 1:
            raise ConfigError(
                f"ServeOptions.batch_limit must be >= 1, got "
                f"{self.options.batch_limit}")
        self.policy = make_policy(self.options.policy)
        self.base_config = self.options.resolved_base_config()
        self.session = self.options.session if self.options.session \
            is not None else api.default_session()
        self.clock = SimClock(record_events=self.options.record_events)
        self.clock.enable_streams()
        self.lanes = [self.clock.add_lane(f"cpu{w}")
                      for w in range(self.options.workers)]
        self.registry: Optional[SharedMappingRegistry] = \
            SharedMappingRegistry() if self.options.sharing else None
        self._base_key = api._config_key(self.base_config)
        self._workloads: Dict[Tuple, api.CompiledWorkload] = {}
        self._inst_counts: Dict[Tuple, int] = {}
        self._seen: set = set()
        self._pending: List[_Admitted] = []
        self._worker_free = [0.0] * self.options.workers
        self._service_by_tenant: Dict[str, float] = {}
        self._metrics: Dict[int, RequestMetrics] = {}
        self._rng = (random.Random(self.options.shuffle_seed)
                     if self.options.shuffle_seed is not None else None)
        self._next_batch = 0
        self.counters: Dict[str, int] = {
            "batches": 0, "batched_requests": 0, "batch_conflicts": 0,
            "compile_hits": 0, "compile_misses": 0, "rejected": 0,
        }

    # -- admission ---------------------------------------------------------

    def _tenant_limit(self, tenant: str) -> Optional[int]:
        spec = self.options.tenants.get(tenant, TenantSpec(tenant))
        return spec.device_heap_limit

    def _admit(self, request: ServeRequest) -> Optional[_Admitted]:
        """Resolve identity at arrival; a bad request is rejected here
        (``None``) without ever touching the queue."""
        metrics = RequestMetrics(
            request_id=request.request_id, tenant=request.tenant,
            arrival_s=request.arrival_s, dispatch_s=request.arrival_s,
            complete_s=request.arrival_s)
        self._metrics[request.request_id] = metrics
        if self.clock.record_events:
            self.clock.events.append(TraceEvent(
                LANE_CPU, f"admit req{request.request_id}",
                request.arrival_s, _ADMIT_EPS,
                track=f"req{request.request_id}"))
        try:
            source, artifact = request.resolve_source()
        except (ConfigError, FrontendError) as exc:
            metrics.status = "rejected"
            metrics.reason = str(exc)
            self.counters["rejected"] += 1
            return None
        # Identity is (source, artifact, base config): tenant heap
        # quotas are an execution-time knob, so all quota variants of
        # one source resolve to the same artifact-cache entry.
        key = (api._source_key(source), artifact, self._base_key)
        metrics.artifact = artifact
        return _Admitted(request, source, artifact, self.base_config,
                         key, metrics,
                         heap_limit=self._tenant_limit(request.tenant))

    # -- the event loop ----------------------------------------------------

    def run(self, requests: Sequence[ServeRequest]) -> ServeReport:
        """Serve every request; returns the report (also kept on
        ``self.report``)."""
        heap: List[Tuple[float, int, int, object]] = []
        seq = itertools.count()
        for request in requests:
            heapq.heappush(
                heap, (request.arrival_s, next(seq), 0, request))
        order: List[int] = [r.request_id for r in requests]
        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if kind == 0:
                admitted = self._admit(payload)
                if admitted is not None:
                    self._pending.append(admitted)
            elif kind == 1:
                # Completion: the request leaves the in-flight set and
                # its shared-mapping holds are released.
                if self.registry is not None:
                    self.registry.release(payload)
            # Drain every same-time event before dispatching, so
            # completions at t free their shared entries and arrivals
            # at t are all visible to the policy.
            if heap and heap[0][0] <= now:
                continue
            self._dispatch_all(now, heap, seq)
        self.report = self._build_report(order)
        return self.report

    def _dispatch_all(self, now: float, heap, seq) -> None:
        while self._pending:
            worker = self._free_worker(now)
            if worker is None:
                return
            batch = self._select_batch(now)
            self._run_batch(now, worker, batch, heap, seq)

    def _free_worker(self, now: float) -> Optional[int]:
        best, best_free = None, None
        for worker, free in enumerate(self._worker_free):
            if free <= now and (best_free is None or free < best_free):
                best, best_free = worker, free
        return best

    def _select_batch(self, now: float) -> List[_Admitted]:
        view = [a.request for a in self._pending]
        if self._rng is not None:
            self._rng.shuffle(view)
        chosen = self.policy.select(view, now, self._service_by_tenant)
        selected = next(a for a in self._pending
                        if a.request.request_id == chosen.request_id)
        batch = [selected]
        if self.options.batching:
            for admitted in self._pending:
                if len(batch) >= self.options.batch_limit:
                    break
                if admitted is selected or admitted.key != selected.key:
                    continue
                batch.append(admitted)
        members = set(id(a) for a in batch)
        self._pending = [a for a in self._pending
                         if id(a) not in members]
        return batch

    # -- dispatch ----------------------------------------------------------

    def _reject(self, admitted: _Admitted, now: float,
                reason: str) -> None:
        metrics = admitted.metrics
        metrics.status = "rejected"
        metrics.reason = reason
        metrics.dispatch_s = now
        metrics.complete_s = now
        self.counters["rejected"] += 1

    def _workload(self, admitted: _Admitted):
        workload = self._workloads.get(admitted.key)
        if workload is None:
            workload = self.session.compile(
                admitted.source, admitted.config, name=admitted.artifact)
            self._workloads[admitted.key] = workload
            self._inst_counts[admitted.key] = sum(
                1 for fn in workload.module.defined_functions()
                for _ in fn.instructions())
        return workload

    def _compile_cost_s(self, admitted: _Admitted, hit: bool) -> float:
        model = self.clock.model
        if hit:
            return self.options.compile_hit_cycles / model.cpu_freq_hz
        return (self._inst_counts[admitted.key]
                * self.options.compile_cycles_per_inst
                / model.cpu_freq_hz)

    def _run_batch(self, now: float, worker: int,
                   batch: List[_Admitted], heap, seq) -> None:
        clock = self.clock
        lane = self.lanes[worker]
        try:
            workload = self._workload(batch[0])
        except (FrontendError, ConfigError) as exc:
            for admitted in batch:
                self._reject(admitted, now, str(exc))
            return
        # Physical runs: one fresh machine per member, sharing offered
        # through the registry.  Execution happens "now"; only the
        # modelled spans below occupy simulated time.
        runs: List[Tuple[_Admitted, object, list]] = []
        for admitted in batch:
            rid = admitted.request.request_id
            if self.registry is not None:
                self.registry.set_active(rid)
            launch_log: list = []
            try:
                result = workload.run(
                    engine=self.options.engine,
                    shared_mappings=self.registry,
                    launch_log=launch_log,
                    device_heap_limit=admitted.heap_limit)
            except (ConfigError, CgcmRuntimeError) as exc:
                if self.registry is not None:
                    self.registry.release(rid)
                self._reject(admitted, now, str(exc))
                continue
            finally:
                if self.registry is not None:
                    self.registry.set_active(None)
            runs.append((admitted, result, launch_log))
        if not runs:
            return

        batch_id = self._next_batch
        self._next_batch += 1
        self.counters["batches"] += 1
        self.counters["batched_requests"] += len(runs)

        # Launch signatures must agree for the grids to merge.
        signatures = [tuple((k, g) for k, g, _, _, _ in log)
                      for _, _, log in runs]
        merged = len(runs) > 1 and all(s == signatures[0]
                                       for s in signatures[1:])
        if len(runs) > 1 and not merged:
            self.counters["batch_conflicts"] += 1

        spans = []  # (admitted, result, compile_s, cpu_end, comm_end)
        for admitted, result, launch_log in runs:
            rid = admitted.request.request_id
            hit = self.options.cache and admitted.key in self._seen
            self._seen.add(admitted.key)
            compile_s = self._compile_cost_s(admitted, hit)
            self.counters["compile_hits" if hit
                          else "compile_misses"] += 1
            stream = clock.stream_create(f"req{rid}")
            if clock.record_events and now > admitted.request.arrival_s:
                clock.events.append(TraceEvent(
                    "queue", "queued", admitted.request.arrival_s,
                    now - admitted.request.arrival_s, track=stream))
            clock.schedule(lane, compile_s, stream,
                           f"compile {admitted.artifact}"
                           f"{' [hit]' if hit else ''}", after=(now,))
            cpu_end = clock.schedule(lane, result.cpu_seconds, stream,
                                     f"host {admitted.artifact}")
            comm_end = clock.schedule(LANE_COMM, result.comm_seconds,
                                      stream, f"xfer {admitted.artifact}")
            metrics = admitted.metrics
            metrics.dispatch_s = now
            metrics.compile_hit = hit
            metrics.compile_s = compile_s
            metrics.cpu_s = result.cpu_seconds
            metrics.comm_s = result.comm_seconds
            metrics.gpu_s = sum(d for _, _, _, _, d in launch_log)
            metrics.batch_id = batch_id
            metrics.batch_size = len(runs)
            spans.append((admitted, result, cpu_end, comm_end))

        # GPU spans: merged re-pricing when the signatures agree, the
        # per-member launches otherwise.
        gpu_ends: Dict[int, float] = {}
        model = clock.model
        if merged:
            ready = max(comm_end for _, _, _, comm_end in spans)
            stream = clock.stream_create(f"batch{batch_id}")
            end = ready
            for j, (kernel, grid) in enumerate(signatures[0]):
                total = sum(log[j][2] for _, _, log in runs)
                biggest = max(log[j][3] for _, _, log in runs)
                duration = model.kernel_launch_latency_s \
                    + model.gpu_time(total, biggest)
                end = clock.schedule(
                    LANE_GPU, duration, stream,
                    f"{kernel} x{len(runs)}", after=(ready,))
            for admitted, _, _, _ in spans:
                gpu_ends[admitted.request.request_id] = end
        else:
            for (admitted, _, _, comm_end), (_, _, log) \
                    in zip(spans, runs):
                rid = admitted.request.request_id
                end = comm_end
                for kernel, grid, _, _, duration in log:
                    end = clock.schedule(LANE_GPU, duration, f"req{rid}",
                                         kernel, after=(comm_end,))
                gpu_ends[rid] = end

        busy_until = now
        for (admitted, result, cpu_end, comm_end), (_, _, log) \
                in zip(spans, runs):
            rid = admitted.request.request_id
            done = max(cpu_end, comm_end, gpu_ends[rid])
            metrics = admitted.metrics
            metrics.complete_s = done
            counters = result.counters
            metrics.shared_attaches = counters.get("shared_attaches", 0)
            metrics.htod_bytes = counters.get("htod_bytes", 0)
            metrics.transfer_bytes_saved = \
                counters.get("htod_bytes_saved", 0)
            metrics.device_evictions = counters.get("device_evictions", 0)
            metrics.sentinel_units = counters.get("sentinel_units", 0)
            metrics.cpu_fallback_launches = \
                counters.get("cpu_fallback_launches", 0)
            metrics.stdout = result.stdout
            metrics.observable = result.observable()
            report = result.sanitizer_report
            metrics.sanitizer_clean = \
                None if report is None else report.clean
            # Tenant service: own compile/host/transfer work plus a
            # per-member slice of the (merged or not) GPU time.
            self._service_by_tenant[admitted.request.tenant] = \
                self._service_by_tenant.get(admitted.request.tenant, 0.0) \
                + metrics.compile_s + metrics.cpu_s + metrics.comm_s \
                + metrics.gpu_s / len(runs)
            heapq.heappush(heap, (done, next(seq), 1, rid))
            if cpu_end > busy_until:
                busy_until = cpu_end
        self._worker_free[worker] = busy_until
        heapq.heappush(heap, (busy_until, next(seq), 2, worker))

    # -- reporting ---------------------------------------------------------

    def _build_report(self, order: List[int]) -> ServeReport:
        metrics = [self._metrics[rid] for rid in order
                   if rid in self._metrics]
        ok = [m for m in metrics if m.status == "ok"]
        makespan = max((m.complete_s for m in ok), default=0.0)
        latencies = sorted(m.latency_s for m in ok)
        counters = dict(self.counters)
        for name in ("shared_attaches", "device_evictions",
                     "sentinel_units", "cpu_fallback_launches"):
            counters[name] = sum(getattr(m, name) for m in ok)
        counters["htod_bytes"] = sum(m.htod_bytes for m in ok)
        counters["transfer_bytes_saved"] = \
            sum(m.transfer_bytes_saved for m in ok)
        if self.registry is not None:
            for name, value in self.registry.stats().items():
                counters[f"sharing_{name}"] = value
        tenants: Dict[str, Dict[str, float]] = {}
        for m in metrics:
            t = tenants.setdefault(m.tenant, {
                "requests": 0.0, "ok": 0.0, "rejected": 0.0,
                "service_s": 0.0, "mean_latency_s": 0.0})
            t["requests"] += 1
            t["ok" if m.status == "ok" else "rejected"] += 1
            if m.status == "ok":
                t["mean_latency_s"] += m.latency_s
        for name, t in tenants.items():
            t["service_s"] = self._service_by_tenant.get(name, 0.0)
            if t["ok"]:
                t["mean_latency_s"] /= t["ok"]
        policy_name = getattr(self.policy, "name",
                              type(self.policy).__name__)
        options = {
            "workers": self.options.workers,
            "policy": policy_name,
            "batching": self.options.batching,
            "sharing": self.options.sharing,
            "cache": self.options.cache,
            "sanitize": self.options.sanitize,
            "batch_limit": self.options.batch_limit,
            "shuffle_seed": self.options.shuffle_seed,
            "compile_cycles_per_inst":
                self.options.compile_cycles_per_inst,
        }
        return ServeReport(
            metrics=metrics,
            makespan_s=makespan,
            throughput_rps=(len(ok) / makespan) if makespan > 0 else 0.0,
            latency_p50_s=_percentile(latencies, 50),
            latency_p95_s=_percentile(latencies, 95),
            latency_p99_s=_percentile(latencies, 99),
            mean_latency_s=(sum(latencies) / len(latencies)
                            if latencies else 0.0),
            counters=counters,
            lane_totals=self.clock.totals(),
            tenants=tenants,
            options=options,
            events=list(self.clock.events),
        )


def serve(requests: Sequence[ServeRequest],
          options: Optional[ServeOptions] = None) -> ServeReport:
    """One-shot convenience: build a :class:`ServeLoop` and run it."""
    return ServeLoop(options).run(requests)
