"""Client requests, tenants, and per-request metrics."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ConfigError

#: Argument placeholder scheme for source-carrying requests: the n-th
#: argument replaces every ``__ARGn__`` token in the source text.
#: Plain text substitution (not ``str.format``: MiniC braces would
#: collide) keeps distinct argument vectors distinct artifacts.
ARG_TOKEN = "__ARG{}__"


@dataclass(frozen=True)
class TenantSpec:
    """Per-tenant serving contract.

    ``device_heap_limit`` caps the simulated device heap for every
    request the tenant submits; requests then ride the PR-5 LRU
    eviction / sentinel / CPU-fallback machinery under pressure, and a
    program whose largest static allocation unit cannot ever fit is
    rejected up front (strict heap-limit validation).  None = the full
    arena.
    """

    name: str
    device_heap_limit: Optional[int] = None


@dataclass(frozen=True)
class ServeRequest:
    """One client request: what to run, for whom, arriving when.

    Exactly one of ``workload`` (a name from ``repro.workloads``) or
    ``source`` (MiniC text, with optional ``__ARGn__`` placeholders
    bound from ``args``) must be set.  ``arrival_s`` is simulated
    time.
    """

    request_id: int
    arrival_s: float = 0.0
    tenant: str = "default"
    workload: Optional[str] = None
    source: Optional[str] = None
    args: Tuple[str, ...] = ()

    def resolve_source(self) -> Tuple[str, str]:
        """The MiniC text this request runs, plus its artifact name.

        Workload-name requests take no arguments (the 24 ported
        programs are closed); source requests substitute ``args`` into
        their ``__ARGn__`` tokens.  The artifact name is stable for
        equal resolved source, so the cache and the batcher agree on
        identity.
        """
        if (self.workload is None) == (self.source is None):
            raise ConfigError(
                f"request {self.request_id}: exactly one of workload or "
                "source must be set")
        if self.workload is not None:
            if self.args:
                raise ConfigError(
                    f"request {self.request_id}: workload {self.workload!r} "
                    "takes no arguments")
            from ..workloads import get_workload
            workload = get_workload(self.workload)
            return workload.source, workload.name
        source = self.source or ""
        for index, value in enumerate(self.args):
            source = source.replace(ARG_TOKEN.format(index), str(value))
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        return source, f"serve-{digest[:12]}"


@dataclass
class RequestMetrics:
    """Everything the serve loop observed about one request."""

    request_id: int
    tenant: str
    artifact: str = ""
    status: str = "ok"              #: "ok" or "rejected"
    reason: str = ""
    arrival_s: float = 0.0
    dispatch_s: float = 0.0
    complete_s: float = 0.0
    compile_hit: bool = False
    compile_s: float = 0.0
    cpu_s: float = 0.0
    gpu_s: float = 0.0
    comm_s: float = 0.0
    batch_id: int = -1
    batch_size: int = 1
    shared_attaches: int = 0
    htod_bytes: int = 0
    transfer_bytes_saved: int = 0
    device_evictions: int = 0
    sentinel_units: int = 0
    cpu_fallback_launches: int = 0
    stdout: Tuple[str, ...] = ()
    #: ``ExecutionResult.observable()`` of the served run (in-memory
    #: only; the byte-identity checks compare it to an isolated run).
    observable: Tuple = field(default=(), repr=False)
    sanitizer_clean: Optional[bool] = None

    @property
    def queue_wait_s(self) -> float:
        return max(0.0, self.dispatch_s - self.arrival_s)

    @property
    def latency_s(self) -> float:
        return max(0.0, self.complete_s - self.arrival_s)

    def to_json(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "artifact": self.artifact,
            "status": self.status,
            "reason": self.reason,
            "arrival_s": self.arrival_s,
            "queue_wait_s": self.queue_wait_s,
            "compile_hit": self.compile_hit,
            "compile_s": self.compile_s,
            "latency_s": self.latency_s,
            "batch_size": self.batch_size,
            "shared_attaches": self.shared_attaches,
            "htod_bytes": self.htod_bytes,
            "transfer_bytes_saved": self.transfer_bytes_saved,
            "device_evictions": self.device_evictions,
            "cpu_fallback_launches": self.cpu_fallback_launches,
            "sanitizer_clean": self.sanitizer_clean,
        }
