"""Cross-request sharing of read-only device copies.

One :class:`SharedMappingRegistry` lives for a serve run.  When a
request's runtime first maps a read-only allocation unit, it offers
the unit's content here (:meth:`attach`).  If another *in-flight*
request already holds a device copy of byte-identical content, the
map elides its modelled HtoD transfer -- in the modelled world the two
requests read one device copy -- and the registry refcounts the new
holder.  When a request completes, :meth:`release` drops every hold it
acquired; an entry with no holders is forgotten (its modelled device
copy is freed with the last holder's buffers).

Sharing is verified, never assumed, at two layers:

* here, a hash hit is confirmed by full content comparison before any
  charge is elided (a mismatch counts ``content_conflicts`` and pays
  the copy);
* in the sanitizer, every elided copy records a content digest and the
  run fails with a ``shared-mutation`` violation if a kernel stores to
  the unit or its device bytes drift from the attach-time content.

Data still lands eagerly in each request's own simulated device memory
(the simulator's eager-data model); only the modelled transfer cost is
shared.  This keeps every request's execution byte-identical to an
isolated run by construction.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Set, Tuple


class _Entry:
    __slots__ = ("content", "holders")

    def __init__(self, content: bytes):
        self.content = content
        self.holders: Set[int] = set()


class SharedMappingRegistry:
    """Refcounted content-addressed registry of shared device copies."""

    def __init__(self) -> None:
        #: (unit label, content digest) -> entry.
        self._entries: Dict[Tuple[str, bytes], _Entry] = {}
        #: Entry keys each in-flight request currently holds.
        self._held: Dict[int, Set[Tuple[str, bytes]]] = {}
        self._active: Optional[int] = None
        self.attaches = 0
        self.first_copies = 0
        self.bytes_saved = 0
        self.content_conflicts = 0

    def set_active(self, request_id: Optional[int]) -> None:
        """Name the request whose machine is about to execute; every
        :meth:`attach` until the next call is on its behalf."""
        self._active = request_id
        if request_id is not None:
            self._held.setdefault(request_id, set())

    def attach(self, label: str, content: bytes) -> bool:
        """Offer one read-only unit's content; True elides the copy.

        First holder of a content pays its HtoD and seeds the entry;
        every later in-flight holder of byte-identical content shares
        it.  Called by :meth:`CgcmRuntime.map_ptr` via the runtime's
        ``shared_mappings`` attachment.
        """
        if self._active is None:
            return False
        key = (label, hashlib.sha256(content).digest())
        entry = self._entries.get(key)
        if entry is None or not entry.holders:
            entry = _Entry(content)
            entry.holders.add(self._active)
            self._entries[key] = entry
            self._held[self._active].add(key)
            self.first_copies += 1
            return False
        if entry.content != content:
            # Hash collision or registry bug: never share on faith.
            self.content_conflicts += 1
            return False
        entry.holders.add(self._active)
        self._held[self._active].add(key)
        self.attaches += 1
        self.bytes_saved += len(content)
        return True

    def release(self, request_id: int) -> None:
        """Drop every hold of a completed request; entries left with
        no holders are forgotten (the shared copy is freed)."""
        for key in self._held.pop(request_id, ()):
            entry = self._entries.get(key)
            if entry is None:
                continue
            entry.holders.discard(request_id)
            if not entry.holders:
                del self._entries[key]

    @property
    def live_entries(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {"attaches": self.attaches,
                "first_copies": self.first_copies,
                "bytes_saved": self.bytes_saved,
                "content_conflicts": self.content_conflicts,
                "live_entries": self.live_entries}
