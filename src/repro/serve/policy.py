"""Admission/scheduling policies for the serve queue.

A policy orders the pending queue each time a worker frees up: it
picks the next request to dispatch, and the batcher then pulls every
compatible pending request of the same artifact along with it.  Both
built-ins are deterministic; ties always break on (arrival, id).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigError
from .request import ServeRequest


class FifoPolicy:
    """Strict arrival order, tenant-blind."""

    name = "fifo"

    def select(self, pending: List[ServeRequest], now: float,
               service_by_tenant: Dict[str, float]) -> ServeRequest:
        return min(pending, key=lambda r: (r.arrival_s, r.request_id))


class FairSharePolicy:
    """Least-served tenant first (accumulated modelled service time).

    A tenant that has consumed the least worker+device time so far
    dispatches next, so one chatty tenant cannot starve the rest; the
    server charges each dispatched request's modelled service back to
    its tenant.  Within a tenant, arrival order.
    """

    name = "fair"

    def select(self, pending: List[ServeRequest], now: float,
               service_by_tenant: Dict[str, float]) -> ServeRequest:
        return min(pending, key=lambda r: (
            service_by_tenant.get(r.tenant, 0.0),
            r.arrival_s, r.request_id))


_POLICIES = {"fifo": FifoPolicy, "fair": FairSharePolicy}


def make_policy(name_or_policy) -> "object":
    """A policy instance from a name ("fifo"/"fair") or a ready-made
    policy object (anything with ``select``)."""
    if isinstance(name_or_policy, str):
        try:
            return _POLICIES[name_or_policy]()
        except KeyError:
            raise ConfigError(
                f"unknown serve policy {name_or_policy!r}; expected one "
                f"of {sorted(_POLICIES)}") from None
    if not hasattr(name_or_policy, "select"):
        raise ConfigError(
            f"serve policy must be a name or provide select(); got "
            f"{type(name_or_policy).__name__}")
    return name_or_policy
