"""Analytic cost model and simulated clock.

All timing in the system is *modelled*, never measured: interpreting an
IR instruction on the CPU, running a kernel grid, or copying bytes over
the simulated PCIe bus adds model time to a shared :class:`SimClock`.
This keeps every benchmark deterministic and machine-independent while
preserving the cost structure the paper's evaluation depends on:

* CPU work: one pipeline at ``cpu_freq_hz`` (Core 2 Quad, 2.40 GHz).
* GPU work: ``gpu_cores`` lanes at ``gpu_freq_hz`` (GTX 480: 480 cores
  at 1.40 GHz), plus a fixed launch latency per kernel spawn.
* Communication: a fixed per-``memcpy`` latency plus bytes/bandwidth --
  the term that makes *cyclic* patterns catastrophically slower than
  *acyclic* ones.

The clock has two timing disciplines:

* **Serial** (default): every span starts when the previous one ends,
  so elapsed time is the *sum* of the three lanes.  This reproduces
  the paper's fully synchronous schedules (Figure 2) bit-for-bit.
* **Streams** (:meth:`SimClock.enable_streams`): asynchronous spans are
  placed by an overlap-aware scheduler that keeps a host cursor, one
  busy-cursor per engine lane, and one FIFO cursor per named stream,
  plus explicit cross-stream dependency edges (CUDA-event analogues).
  Elapsed time is then the *critical path* over all cursors rather
  than the lane sum.  Lane sums keep accumulating identically in both
  disciplines, so per-lane accounting (:meth:`breakdown`,
  :meth:`totals`) never changes meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Timeline lanes for the event trace (paper Figure 2).
LANE_CPU = "cpu"
LANE_GPU = "gpu"
LANE_COMM = "comm"

#: Conventional stream names used by the runtime and machine.  Streams
#: are created on demand -- these are just the well-known ones.
STREAM_H2D = "h2d"
STREAM_D2H = "d2h"
STREAM_COMPUTE = "compute"


@dataclass(frozen=True)
class CostModel:
    """Machine parameters of the simulated platform (paper section 6.1).

    Frequencies and core counts match the paper's testbed (Core 2 Quad
    2.40 GHz; GTX 480: 480 CUDA cores at 1.40 GHz).  The fixed latency
    constants are scaled down by roughly the same factor as the
    benchmark problem sizes (which run ~100-1000x smaller under the
    Python interpreter), preserving the paper's latency-to-compute
    ratio: a cyclic per-launch round trip still costs orders of
    magnitude more than the loop body it interrupts.
    """

    cpu_freq_hz: float = 2.4e9
    gpu_freq_hz: float = 1.4e9
    gpu_cores: int = 480
    #: Fixed cost of spawning one kernel (driver + PCIe doorbell).
    kernel_launch_latency_s: float = 0.15e-6
    #: Fixed cost of one cuMemcpy call in either direction.
    transfer_latency_s: float = 1.4e-6
    #: Sustained PCIe bandwidth for bulk copies.
    transfer_bandwidth_bps: float = 6e9
    #: Fixed cost of one cuMemAlloc.
    device_alloc_latency_s: float = 0.08e-6
    #: Fixed cost of one cuMemFree (driver frees are cheaper than
    #: allocations on real hardware, but the measured gap is within the
    #: model's noise floor, so both default to the same constant; they
    #: are charged -- and tunable -- independently).
    device_free_latency_s: float = 0.08e-6
    #: Modelled wait before retrying a transiently failed driver call
    #: (alloc/transfer/launch faults injected by the resilience layer).
    #: Charged on the lane of the failed call per retry attempt.
    fault_backoff_s: float = 2.0e-6
    #: Cycles charged per interpreted IR operation (CPU lane).
    cpu_cycles_per_op: float = 1.0
    #: Cycles charged per interpreted IR operation (GPU lane, per thread).
    gpu_cycles_per_op: float = 1.0

    def cpu_time(self, ops: float) -> float:
        """Seconds of CPU time for ``ops`` interpreted operations."""
        return ops * self.cpu_cycles_per_op / self.cpu_freq_hz

    def gpu_time(self, total_thread_ops: float, max_thread_ops: float) -> float:
        """Seconds of GPU time for one grid.

        The grid cannot finish faster than its longest thread, nor
        faster than the aggregate work spread across every core.
        """
        parallel = total_thread_ops / self.gpu_cores
        cycles = max(parallel, max_thread_ops) * self.gpu_cycles_per_op
        return cycles / self.gpu_freq_hz

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds for one host<->device copy of ``num_bytes``."""
        return (self.transfer_latency_s
                + num_bytes / self.transfer_bandwidth_bps)


@dataclass
class TraceEvent:
    """One span on the simulated timeline (for schedule rendering).

    ``track`` names the scheduling row the span was placed on.  For
    serial spans it equals the lane; for asynchronous spans it is the
    stream name (``h2d``/``d2h``/``compute``/...), which is what the
    Chrome-trace exporter uses to give each stream its own row.
    """

    lane: str
    label: str
    start: float
    duration: float
    track: str = ""

    def __post_init__(self) -> None:
        if not self.track:
            self.track = self.lane

    @property
    def end(self) -> float:
        return self.start + self.duration


class SimClock:
    """Accumulates modelled time, bucketed by lane, on one timeline.

    By default the execution model is fully serialized (the paper's
    schedules in Figure 2 show exactly this for the naive and
    inspector-executor patterns): each recorded span starts when the
    previous one ends.  After :meth:`enable_streams`, spans issued via
    :meth:`schedule` may overlap; see the module docstring.
    """

    def __init__(self, model: Optional[CostModel] = None,
                 record_events: bool = False):
        self.model = model if model is not None else CostModel()
        self.lanes: Dict[str, float] = {LANE_CPU: 0.0, LANE_GPU: 0.0,
                                        LANE_COMM: 0.0}
        self.record_events = record_events
        self.events: List[TraceEvent] = []
        #: Counters useful to tests and the evaluation tables.
        self.counters: Dict[str, int] = {}
        #: Overlap scheduler state -- inert until :meth:`enable_streams`.
        self.streams_enabled = False
        self._host = 0.0
        self._engines: Dict[str, float] = {LANE_CPU: 0.0, LANE_GPU: 0.0,
                                           LANE_COMM: 0.0}
        self._streams: Dict[str, float] = {}

    # -- serial accounting (identical in both disciplines) -----------------

    @property
    def now(self) -> float:
        """Current position on the unified serial timeline."""
        return sum(self.lanes.values())

    @property
    def cpu_seconds(self) -> float:
        return self.lanes[LANE_CPU]

    @property
    def gpu_seconds(self) -> float:
        return self.lanes[LANE_GPU]

    @property
    def comm_seconds(self) -> float:
        return self.lanes[LANE_COMM]

    @property
    def total_seconds(self) -> float:
        return self.now

    @property
    def serial_total_s(self) -> float:
        """Lane-sum elapsed time: what a fully serialized schedule of
        the same spans costs.  Identical to :attr:`total_seconds`."""
        return self.now

    @property
    def critical_path_s(self) -> float:
        """Overlap-aware elapsed time.

        In serial mode this *is* the lane sum.  In streams mode it is
        the furthest point any cursor (host, engine, or stream) has
        reached.  Every span occupies exactly one engine, so the
        critical path can never exceed the serial lane sum; the min()
        clamp only guards against ULP-level float-associativity drift
        between the chained cursor sums and the lane-grouped sums.
        """
        if not self.streams_enabled:
            return self.now
        cursor = self._host
        for value in self._engines.values():
            if value > cursor:
                cursor = value
        for value in self._streams.values():
            if value > cursor:
                cursor = value
        return min(cursor, self.serial_total_s)

    @property
    def elapsed_s(self) -> float:
        """Modelled wall-clock: overlap-aware when streams are on."""
        return self.critical_path_s

    def utilisation(self) -> Dict[str, float]:
        """Busy fraction of the elapsed wall-clock per lane.

        Under the serial discipline the fractions sum to 1 (same as
        :meth:`breakdown`); under streams a lane overlapped with others
        can approach 1.0 on its own.
        """
        elapsed = self.elapsed_s
        if elapsed <= 0:
            return {lane: 0.0 for lane in self.lanes}
        return {lane: t / elapsed for lane, t in self.lanes.items()}

    # -- serial issue ------------------------------------------------------

    def advance(self, lane: str, seconds: float, label: str = "") -> None:
        """Append a blocking span of ``seconds`` to ``lane``.

        Blocking spans stall the host: in streams mode the span starts
        at max(host cursor, lane-engine cursor) and drags both to its
        end.  In serial mode this method is bit-for-bit the historical
        behaviour (span starts at :attr:`now`).
        """
        if lane not in self.lanes:
            raise ValueError(
                f"unknown timeline lane {lane!r}; expected one of "
                f"{sorted(self.lanes)}")
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        if not self.streams_enabled:
            if self.record_events and seconds > 0:
                self.events.append(TraceEvent(lane, label, self.now, seconds))
            self.lanes[lane] += seconds
            return
        start = max(self._host, self._engines[lane])
        if self.record_events and seconds > 0:
            self.events.append(TraceEvent(lane, label, start, seconds))
        self.lanes[lane] += seconds
        end = start + seconds
        self._host = end
        self._engines[lane] = end

    # -- overlap scheduler -------------------------------------------------

    def enable_streams(self) -> None:
        """Switch to the overlap-aware discipline (irreversible)."""
        self.streams_enabled = True

    def add_lane(self, name: str) -> str:
        """Register an extra engine lane (idempotent) and return it.

        The serve layer models a multicore host by giving each worker
        its own CPU lane (``cpu0``, ``cpu1``, ...): spans on distinct
        lanes overlap, spans on one lane serialize, exactly like the
        built-in gpu/comm engine lanes.  Lane totals show up in
        :meth:`totals` and :meth:`breakdown` alongside the built-ins.
        """
        self.lanes.setdefault(name, 0.0)
        self._engines.setdefault(name, 0.0)
        return name

    def stream_create(self, name: str) -> str:
        """Register a named FIFO stream (idempotent) and return it."""
        self._streams.setdefault(name, 0.0)
        return name

    def stream_cursor(self, name: str) -> float:
        """Completion time of the last span issued to ``name``."""
        return self._streams.get(name, 0.0)

    @property
    def host_time_s(self) -> float:
        """The host cursor (streams mode); serial :attr:`now` otherwise."""
        return self._host if self.streams_enabled else self.now

    def schedule(self, lane: str, seconds: float, stream: str,
                 label: str = "",
                 after: Iterable[float] = ()) -> float:
        """Issue an asynchronous span on ``stream`` occupying ``lane``.

        The span starts no earlier than the host cursor at issue time
        (the API call itself), the stream's FIFO cursor, the engine
        lane's busy cursor, and every dependency finish-time in
        ``after`` (event waits).  The host does *not* block; the
        stream and engine cursors move to the span's end, which is
        returned (usable as an event timestamp for later waits).

        Before :meth:`enable_streams` this degrades to a blocking
        :meth:`advance`, so asynchronous call-sites behave exactly like
        their synchronous counterparts under the serial discipline.
        """
        if not self.streams_enabled:
            self.advance(lane, seconds, label)
            return self.now
        if lane not in self.lanes:
            raise ValueError(
                f"unknown timeline lane {lane!r}; expected one of "
                f"{sorted(self.lanes)}")
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        start = max(self._host, self._engines[lane],
                    self._streams.get(stream, 0.0))
        for dep in after:
            if dep > start:
                start = dep
        if self.record_events and seconds > 0:
            self.events.append(
                TraceEvent(lane, label, start, seconds, track=stream))
        self.lanes[lane] += seconds
        end = start + seconds
        self._engines[lane] = end
        self._streams[stream] = end
        return end

    def event_record(self, stream: str) -> float:
        """CUDA ``cuEventRecord`` analogue: timestamp the stream's
        current FIFO cursor.  The returned float *is* the event."""
        return self._streams.get(stream, 0.0)

    def stream_wait_event(self, stream: str, event_time: float) -> None:
        """CUDA ``cuStreamWaitEvent`` analogue: the next span issued to
        ``stream`` starts no earlier than ``event_time``."""
        if event_time > self._streams.get(stream, 0.0):
            self._streams[stream] = event_time

    def stream_synchronize(self, stream: str) -> None:
        """CUDA ``cuStreamSynchronize`` analogue: block the host until
        every span issued to ``stream`` has completed."""
        cursor = self._streams.get(stream, 0.0)
        if cursor > self._host:
            self._host = cursor

    def host_wait(self, until: float) -> None:
        """Block the host until an absolute finish time (an event).

        The multi-GPU coordinator uses this to make a synchronous
        driver call (e.g. a blocking unmap copy) wait for the async
        collectives feeding it.  A no-op under the serial discipline,
        where the host is never ahead of anything.
        """
        if self.streams_enabled and until > self._host:
            self._host = until

    def device_synchronize(self) -> None:
        """CUDA ``cuCtxSynchronize`` analogue: block the host until
        every outstanding span on every engine has completed."""
        for value in self._engines.values():
            if value > self._host:
                self._host = value
        for value in self._streams.values():
            if value > self._host:
                self._host = value

    # -- bookkeeping -------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def breakdown(self) -> Dict[str, float]:
        """Fractions of total time per lane (empty-total safe)."""
        total = self.total_seconds
        if total <= 0:
            return {lane: 0.0 for lane in self.lanes}
        return {lane: t / total for lane, t in self.lanes.items()}

    def snapshot(self) -> Tuple[float, float, float]:
        return (self.cpu_seconds, self.gpu_seconds, self.comm_seconds)

    def totals(self) -> Dict[str, float]:
        """Per-lane elapsed seconds, keyed by lane name.

        The engine-equivalence suite compares these dictionaries for
        *exact* float equality between the tree-walking and compiled
        engines: block-fused cost charging must be invisible down to
        the last bit of every simulated timestamp.
        """
        return dict(self.lanes)
