"""Analytic cost model and simulated clock.

All timing in the system is *modelled*, never measured: interpreting an
IR instruction on the CPU, running a kernel grid, or copying bytes over
the simulated PCIe bus adds model time to a shared :class:`SimClock`.
This keeps every benchmark deterministic and machine-independent while
preserving the cost structure the paper's evaluation depends on:

* CPU work: one pipeline at ``cpu_freq_hz`` (Core 2 Quad, 2.40 GHz).
* GPU work: ``gpu_cores`` lanes at ``gpu_freq_hz`` (GTX 480: 480 cores
  at 1.40 GHz), plus a fixed launch latency per kernel spawn.
* Communication: a fixed per-``memcpy`` latency plus bytes/bandwidth --
  the term that makes *cyclic* patterns catastrophically slower than
  *acyclic* ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Timeline lanes for the event trace (paper Figure 2).
LANE_CPU = "cpu"
LANE_GPU = "gpu"
LANE_COMM = "comm"


@dataclass(frozen=True)
class CostModel:
    """Machine parameters of the simulated platform (paper section 6.1).

    Frequencies and core counts match the paper's testbed (Core 2 Quad
    2.40 GHz; GTX 480: 480 CUDA cores at 1.40 GHz).  The fixed latency
    constants are scaled down by roughly the same factor as the
    benchmark problem sizes (which run ~100-1000x smaller under the
    Python interpreter), preserving the paper's latency-to-compute
    ratio: a cyclic per-launch round trip still costs orders of
    magnitude more than the loop body it interrupts.
    """

    cpu_freq_hz: float = 2.4e9
    gpu_freq_hz: float = 1.4e9
    gpu_cores: int = 480
    #: Fixed cost of spawning one kernel (driver + PCIe doorbell).
    kernel_launch_latency_s: float = 0.15e-6
    #: Fixed cost of one cuMemcpy call in either direction.
    transfer_latency_s: float = 1.4e-6
    #: Sustained PCIe bandwidth for bulk copies.
    transfer_bandwidth_bps: float = 6e9
    #: Fixed cost of one cuMemAlloc / cuMemFree.
    device_alloc_latency_s: float = 0.08e-6
    #: Cycles charged per interpreted IR operation (CPU lane).
    cpu_cycles_per_op: float = 1.0
    #: Cycles charged per interpreted IR operation (GPU lane, per thread).
    gpu_cycles_per_op: float = 1.0

    def cpu_time(self, ops: float) -> float:
        """Seconds of CPU time for ``ops`` interpreted operations."""
        return ops * self.cpu_cycles_per_op / self.cpu_freq_hz

    def gpu_time(self, total_thread_ops: float, max_thread_ops: float) -> float:
        """Seconds of GPU time for one grid.

        The grid cannot finish faster than its longest thread, nor
        faster than the aggregate work spread across every core.
        """
        parallel = total_thread_ops / self.gpu_cores
        cycles = max(parallel, max_thread_ops) * self.gpu_cycles_per_op
        return cycles / self.gpu_freq_hz

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds for one host<->device copy of ``num_bytes``."""
        return (self.transfer_latency_s
                + num_bytes / self.transfer_bandwidth_bps)


@dataclass
class TraceEvent:
    """One span on the simulated timeline (for schedule rendering)."""

    lane: str
    label: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class SimClock:
    """Accumulates modelled time, bucketed by lane, on one timeline.

    The execution model is fully serialized (the paper's schedules in
    Figure 2 show exactly this for the naive and inspector-executor
    patterns): each recorded span starts when the previous one ends.
    """

    def __init__(self, model: Optional[CostModel] = None,
                 record_events: bool = False):
        self.model = model if model is not None else CostModel()
        self.lanes: Dict[str, float] = {LANE_CPU: 0.0, LANE_GPU: 0.0,
                                        LANE_COMM: 0.0}
        self.record_events = record_events
        self.events: List[TraceEvent] = []
        #: Counters useful to tests and the evaluation tables.
        self.counters: Dict[str, int] = {}

    @property
    def now(self) -> float:
        """Current position on the unified timeline."""
        return sum(self.lanes.values())

    @property
    def cpu_seconds(self) -> float:
        return self.lanes[LANE_CPU]

    @property
    def gpu_seconds(self) -> float:
        return self.lanes[LANE_GPU]

    @property
    def comm_seconds(self) -> float:
        return self.lanes[LANE_COMM]

    @property
    def total_seconds(self) -> float:
        return self.now

    def advance(self, lane: str, seconds: float, label: str = "") -> None:
        """Append a span of ``seconds`` to ``lane`` at the current time."""
        if lane not in self.lanes:
            raise ValueError(
                f"unknown timeline lane {lane!r}; expected one of "
                f"{sorted(self.lanes)}")
        if seconds < 0:
            raise ValueError(f"negative duration {seconds}")
        if self.record_events and seconds > 0:
            self.events.append(TraceEvent(lane, label, self.now, seconds))
        self.lanes[lane] += seconds

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def breakdown(self) -> Dict[str, float]:
        """Fractions of total time per lane (empty-total safe)."""
        total = self.total_seconds
        if total <= 0:
            return {lane: 0.0 for lane in self.lanes}
        return {lane: t / total for lane, t in self.lanes.items()}

    def snapshot(self) -> Tuple[float, float, float]:
        return (self.cpu_seconds, self.gpu_seconds, self.comm_seconds)

    def totals(self) -> Dict[str, float]:
        """Per-lane elapsed seconds, keyed by lane name.

        The engine-equivalence suite compares these dictionaries for
        *exact* float equality between the tree-walking and compiled
        engines: block-fused cost charging must be invisible down to
        the last bit of every simulated timestamp.
        """
        return dict(self.lanes)
