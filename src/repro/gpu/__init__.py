"""Simulated GPU device, driver API, and analytic cost model."""

from .device import GpuDevice
from .timing import (CostModel, SimClock, TraceEvent, LANE_COMM, LANE_CPU,
                     LANE_GPU, STREAM_COMPUTE, STREAM_D2H, STREAM_H2D)

__all__ = [
    "GpuDevice", "CostModel", "SimClock", "TraceEvent",
    "LANE_COMM", "LANE_CPU", "LANE_GPU",
    "STREAM_COMPUTE", "STREAM_D2H", "STREAM_H2D",
]
