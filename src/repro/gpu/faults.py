"""Deterministic fault injection for the simulated GPU driver.

The resilience subsystem (`repro.resilience`) needs to exercise driver
failure paths reproducibly: the same seed must produce the same fault
schedule on every run, or the chaos sweep's byte-identical-observables
check would be meaningless.  A :class:`FaultPlan` describes *what* can
fail and how often; a :class:`FaultInjector` turns the plan into
per-call verdicts using one seeded PRNG.

Faults come in bursts: when a draw fires, the site fails between 1 and
``max_consecutive`` consecutive times before succeeding again.  The
runtime's bounded retry loops are sized above ``max_consecutive``
(see :data:`MAX_FAULT_RETRIES`), so an injected *transient* fault can
always be ridden out -- only genuine capacity pressure (the device
heap cap) needs eviction or the CPU fallback to make progress.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

#: Upper bound on retries the runtime attempts for one transient
#: fault before treating it as unrecoverable.  Must exceed any legal
#: ``FaultPlan.max_consecutive`` so bursts always end inside the loop.
MAX_FAULT_RETRIES = 5


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injectable driver faults.

    Rates are per-call probabilities in ``[0, 1)``.  A rate of zero
    disarms that site entirely (no PRNG draw is consumed, so adding a
    site never perturbs another site's schedule).  The seed is
    mandatory for armed plans -- :class:`repro.core.config.CgcmConfig`
    rejects a seedless plan, because an unseeded schedule would make
    the chaos sweep's determinism guarantee meaningless.
    """

    seed: Optional[int] = None
    alloc_fail_rate: float = 0.0
    transfer_fail_rate: float = 0.0
    launch_fail_rate: float = 0.0
    #: Longest failure burst one trigger produces.
    max_consecutive: int = 2

    def __post_init__(self) -> None:
        for field_name in ("alloc_fail_rate", "transfer_fail_rate",
                           "launch_fail_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(
                    f"FaultPlan.{field_name} must be in [0, 1), got "
                    f"{rate!r}; rates are per-call probabilities")
        if not 1 <= self.max_consecutive < MAX_FAULT_RETRIES:
            raise ValueError(
                f"FaultPlan.max_consecutive must be in [1, "
                f"{MAX_FAULT_RETRIES}), got {self.max_consecutive}; the "
                "runtime retries at most MAX_FAULT_RETRIES times, so "
                "longer bursts could never be ridden out")

    @property
    def armed(self) -> bool:
        return bool(self.alloc_fail_rate or self.transfer_fail_rate
                    or self.launch_fail_rate)


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-call verdicts.

    One injector is attached to one :class:`~repro.gpu.device.GpuDevice`
    and consulted at the top of each fallible driver entry point.  Each
    site keeps its own burst counter; the shared PRNG is only drawn
    from when a site is armed and not mid-burst, keeping schedules
    stable as call sites are added.
    """

    def __init__(self, plan: FaultPlan):
        if plan.seed is None:
            raise ValueError("FaultInjector needs a seeded FaultPlan; an "
                             "unseeded schedule is not reproducible")
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: Remaining failures of the current burst, per site.
        self._burst: Dict[str, int] = {}
        #: Sites whose next call is a guaranteed success: the call
        #: right after a burst never starts a new one, so the longest
        #: failure run a retry loop can see is ``max_consecutive`` --
        #: strictly below :data:`MAX_FAULT_RETRIES`.
        self._cooldown: Dict[str, bool] = {}
        #: Total injected faults per site (for reports and tests).
        self.injected: Dict[str, int] = {}

    def _should_fail(self, site: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if self._cooldown.pop(site, False):
            return False
        remaining = self._burst.get(site, 0)
        if remaining > 0:
            self._burst[site] = remaining - 1
            if remaining == 1:
                self._cooldown[site] = True
        elif self._rng.random() < rate:
            extra = self._rng.randint(1, self.plan.max_consecutive) - 1
            self._burst[site] = extra
            if extra == 0:
                self._cooldown[site] = True
        else:
            return False
        self.injected[site] = self.injected.get(site, 0) + 1
        return True

    def alloc_fault(self) -> bool:
        """Should this ``cuMemAlloc`` fail with a transient OOM?"""
        return self._should_fail("alloc", self.plan.alloc_fail_rate)

    def transfer_fault(self, direction: str) -> bool:
        """Should this ``cuMemcpy`` (``"htod"``/``"dtoh"``) fail?"""
        return self._should_fail(direction, self.plan.transfer_fail_rate)

    def launch_fault(self) -> bool:
        """Should this kernel launch be rejected by the driver?"""
        return self._should_fail("launch", self.plan.launch_fail_rate)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())
