"""Multi-device topologies: N simulated GPUs plus the links between them.

CGCM's original runtime manages one CPU-GPU pair; the multi-GPU layer
(:mod:`repro.multigpu`) generalizes coherence to a :class:`Topology`
of ``num_devices`` simulated devices.  A topology is purely a *model*:
it names the per-device engine lanes and streams the scheduler uses
(:class:`~repro.gpu.timing.SimClock` lanes are created on demand) and
prices device-to-device traffic over explicit :class:`Link`\\ s.

Two preset shapes cover the hardware that matters:

* ``ring`` -- each device links to its two neighbors (NVLink bridge
  style); peer copies between non-neighbors hop through intermediate
  links, occupying every link on the path.
* ``full`` -- all-to-all links (NVSwitch style); every pair is one hop.

Device 0 keeps the built-in ``gpu``/``comm`` lanes and ``h2d``/
``d2h``/``compute`` streams, so a one-device topology is
lane-for-lane identical to no topology at all -- single-device runs
stay bit-identical, which is what the multibench byte-identity sweep
leans on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import ConfigError
from .timing import (LANE_COMM, LANE_GPU, STREAM_COMPUTE, STREAM_D2H,
                     STREAM_H2D)

#: Topology shapes accepted by :meth:`Topology.build` and ``--topology``.
TOPOLOGY_KINDS = ("single", "ring", "full")


@dataclass(frozen=True)
class Link:
    """One direction of a peer link: fixed latency plus bandwidth.

    Defaults model an NVLink-class bridge: double the PCIe bandwidth
    of the host :class:`~repro.gpu.timing.CostModel` link, lower
    fixed latency.
    """

    bandwidth_bps: float = 12e9
    latency_s: float = 1.0e-6

    def transfer_time(self, num_bytes: int) -> float:
        """Modelled one-hop transfer time for ``num_bytes``."""
        return self.latency_s + num_bytes / self.bandwidth_bps


@dataclass(frozen=True)
class Topology:
    """``num_devices`` simulated GPUs plus the peer links between them."""

    kind: str = "single"
    num_devices: int = 1
    link: Link = field(default_factory=Link)

    def __post_init__(self):
        if self.kind not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{TOPOLOGY_KINDS}")
        if not isinstance(self.num_devices, int) or self.num_devices < 1:
            raise ConfigError(
                f"Topology.num_devices must be a positive integer, got "
                f"{self.num_devices!r}")
        if self.kind == "single" and self.num_devices != 1:
            raise ConfigError(
                "a 'single' topology has exactly one device; use 'ring' "
                f"or 'full' for {self.num_devices} devices")
        if self.kind != "single" and self.num_devices < 2:
            raise ConfigError(
                f"a {self.kind!r} topology needs at least 2 devices")

    # -- construction --------------------------------------------------------

    @classmethod
    def single(cls) -> "Topology":
        return cls()

    @classmethod
    def ring(cls, num_devices: int, link: Link = Link()) -> "Topology":
        return cls("ring", num_devices, link)

    @classmethod
    def fully_connected(cls, num_devices: int,
                        link: Link = Link()) -> "Topology":
        return cls("full", num_devices, link)

    @classmethod
    def build(cls, kind: str, num_devices: int,
              link: Link = Link()) -> "Topology":
        """CLI-facing factory: one device is always 'single'."""
        if num_devices <= 1:
            return cls.single()
        if kind == "single":
            kind = "ring"
        return cls(kind, num_devices, link)

    def key(self) -> Tuple:
        """Hashable identity for artifact-cache config fingerprints."""
        return (self.kind, self.num_devices,
                self.link.bandwidth_bps, self.link.latency_s)

    # -- routing -------------------------------------------------------------

    def devices(self) -> range:
        return range(self.num_devices)

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ConfigError(
                f"device {device} outside topology of "
                f"{self.num_devices} device(s)")

    def path(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Directed hops a peer copy from ``src`` to ``dst`` occupies.

        Fully-connected: one hop.  Ring: the shorter way around, one
        hop per traversed link (ties go clockwise).  Empty for
        ``src == dst``.
        """
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            return []
        if self.kind != "ring":
            return [(src, dst)]
        n = self.num_devices
        clockwise = (dst - src) % n
        step = 1 if clockwise <= n - clockwise else -1
        hops: List[Tuple[int, int]] = []
        here = src
        while here != dst:
            nxt = (here + step) % n
            hops.append((here, nxt))
            here = nxt
        return hops

    def transfer_time(self, src: int, dst: int, num_bytes: int) -> float:
        """Total modelled peer-copy time from ``src`` to ``dst``."""
        return sum(self.link.transfer_time(num_bytes)
                   for _ in self.path(src, dst))

    # -- lane and stream naming ----------------------------------------------
    #
    # Device 0 reuses the built-in names so a single-device topology
    # schedules onto exactly the lanes a no-topology run uses.

    def gpu_lane(self, device: int) -> str:
        return LANE_GPU if device == 0 else f"{LANE_GPU}{device}"

    def comm_lane(self, device: int) -> str:
        return LANE_COMM if device == 0 else f"{LANE_COMM}{device}"

    def h2d_stream(self, device: int) -> str:
        return STREAM_H2D if device == 0 else f"{STREAM_H2D}{device}"

    def d2h_stream(self, device: int) -> str:
        return STREAM_D2H if device == 0 else f"{STREAM_D2H}{device}"

    def compute_stream(self, device: int) -> str:
        return STREAM_COMPUTE if device == 0 else \
            f"{STREAM_COMPUTE}{device}"

    @staticmethod
    def p2p_lane(src: int, dst: int) -> str:
        """Engine lane of one directed peer link (its own bus)."""
        return f"p2p{src}-{dst}"
