"""Simulated GPU device and driver API.

Mirrors the slice of the CUDA driver API that CGCM's run-time library
uses (paper Algorithms 1-3): ``cuMemAlloc``, ``cuMemFree``,
``cuMemcpyHtoD``, ``cuMemcpyDtoH``, and ``cuModuleGetGlobal``.  Device
memory is a separate :class:`FlatMemory` whose addresses live in the
``0xD000_0000`` range, so mixing host and device pointers faults.

The device does not execute kernels itself; the interpreter runs
kernel grids against :attr:`GpuDevice.memory` (see
:mod:`repro.interp.machine`) and charges GPU time on the shared clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from typing import Iterable

from ..errors import GpuError
from ..memory.flatmem import FlatMemory
from ..memory.heap import Heap
from ..memory.layout import DEVICE_BASE, DEVICE_CAPACITY, GlobalLayout
from .timing import LANE_COMM, STREAM_D2H, STREAM_H2D, SimClock


class GpuDevice:
    """One simulated CUDA-like device with its own address space."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self.memory = FlatMemory("gpu")
        #: Reserve a slice of the device range for module globals; the
        #: rest is the cuMemAlloc arena.
        globals_capacity = 64 << 20
        stack_capacity = 32 << 20
        self.memory.add_segment("module", DEVICE_BASE, globals_capacity)
        self.memory.add_segment(
            "device-stack", DEVICE_BASE + globals_capacity, stack_capacity)
        self.memory.add_segment(
            "device-heap", DEVICE_BASE + globals_capacity + stack_capacity,
            DEVICE_CAPACITY - globals_capacity - stack_capacity)
        self.heap = Heap(self.memory, "device-heap")
        #: Base of the per-thread scratch stack used for kernel allocas.
        self.stack_base = DEVICE_BASE + globals_capacity
        self.module_globals: Dict[str, int] = {}
        self._module_sizes: Dict[str, int] = {}
        #: Observers of driver-level events, called as
        #: ``observer(event, address, size)`` with event one of
        #: "alloc", "free", "htod", "dtoh".  The sanitizer attaches here.
        self.observers: List[Callable[[str, int, int], None]] = []
        self._stream_serial = 0

    # -- streams and events -------------------------------------------------

    def stream_create(self, name: Optional[str] = None) -> str:
        """``cuStreamCreate``: register a FIFO stream on the clock.

        Returns the stream handle (its name).  The well-known streams
        ``h2d``/``d2h``/``compute`` are created on demand by the async
        transfer and launch paths; explicit creation is only needed
        for additional user streams.
        """
        if name is None:
            self._stream_serial += 1
            name = f"stream{self._stream_serial}"
        return self.clock.stream_create(name)

    def event_record(self, stream: str) -> float:
        """``cuEventRecord``: capture the stream's completion frontier."""
        return self.clock.event_record(stream)

    def stream_wait_event(self, stream: str, event_time: float) -> None:
        """``cuStreamWaitEvent``: order ``stream`` after the event."""
        self.clock.stream_wait_event(stream, event_time)

    def stream_synchronize(self, stream: str) -> None:
        """``cuStreamSynchronize``: block the host on one stream."""
        self.clock.stream_synchronize(stream)

    def device_synchronize(self) -> None:
        """``cuCtxSynchronize``: block the host on all engines."""
        self.clock.device_synchronize()

    def _notify(self, event: str, address: int, size: int) -> None:
        for observer in self.observers:
            observer(event, address, size)

    # -- module loading ----------------------------------------------------

    def load_module(self, layout: GlobalLayout) -> None:
        """Give every host global a device-resident named region.

        CUDA modules declare ``__device__`` globals that occupy device
        memory from load time; ``cuModuleGetGlobal`` looks them up by
        name.  CGCM's ``map`` relies on this for globals (Algorithm 1).
        """
        cursor = DEVICE_BASE
        for name, _, size in layout.items():
            aligned = (cursor + 15) // 16 * 16
            if aligned + size > DEVICE_BASE + (64 << 20):
                raise GpuError("device module segment exhausted")
            self.module_globals[name] = aligned
            self._module_sizes[name] = size
            cursor = aligned + size

    def module_get_global(self, name: str) -> int:
        """``cuModuleGetGlobal``: device address of a named global."""
        try:
            return self.module_globals[name]
        except KeyError:
            raise GpuError(f"no device global named {name!r}") from None

    # -- memory management --------------------------------------------------

    def mem_alloc(self, size: int) -> int:
        """``cuMemAlloc``: allocate device memory."""
        if size <= 0:
            raise GpuError(f"cuMemAlloc of {size} bytes")
        self.clock.advance(LANE_COMM, self.clock.model.device_alloc_latency_s,
                           "cuMemAlloc")
        self.clock.count("device_allocs")
        address = self.heap.malloc(size)
        if self.observers:
            self._notify("alloc", address, size)
        return address

    def mem_free(self, address: int) -> None:
        """``cuMemFree``: release device memory."""
        self.clock.advance(LANE_COMM, self.clock.model.device_free_latency_s,
                           "cuMemFree")
        self.clock.count("device_frees")
        if self.observers:
            self._notify("free", address, 0)
        self.heap.free(address)

    def mem_free_async(self, address: int, stream: str = STREAM_D2H,
                       after: Iterable[float] = ()) -> float:
        """``cuMemFreeAsync``: release device memory in stream order.

        The heap bookkeeping happens immediately (the simulator's
        eager-data model); only the driver latency is scheduled on the
        stream, after any pending spans it depends on -- typically the
        write-back copy of the region being freed.
        """
        finish = self.clock.schedule(
            LANE_COMM, self.clock.model.device_free_latency_s, stream,
            "cuMemFree", after=after)
        self.clock.count("device_frees")
        if self.observers:
            self._notify("free", address, 0)
        self.heap.free(address)
        return finish

    # -- transfers ------------------------------------------------------------

    def memcpy_htod(self, device_address: int, data: bytes) -> None:
        """``cuMemcpyHtoD``: copy host bytes into device memory."""
        self.memory.write(device_address, data)
        self.clock.advance(LANE_COMM,
                           self.clock.model.transfer_time(len(data)),
                           f"HtoD {len(data)}B")
        self.clock.count("htod_copies")
        self.clock.count("htod_bytes", len(data))
        if self.observers:
            self._notify("htod", device_address, len(data))

    def memcpy_dtoh(self, device_address: int, size: int) -> bytes:
        """``cuMemcpyDtoH``: copy device bytes back to the host."""
        data = self.memory.read(device_address, size)
        self.clock.advance(LANE_COMM, self.clock.model.transfer_time(size),
                           f"DtoH {size}B")
        self.clock.count("dtoh_copies")
        self.clock.count("dtoh_bytes", size)
        if self.observers:
            self._notify("dtoh", device_address, size)
        return data

    def memcpy_htod_async(self, device_address: int, data: bytes,
                          stream: str = STREAM_H2D,
                          after: Iterable[float] = ()) -> float:
        """``cuMemcpyHtoDAsync``: non-blocking host-to-device copy.

        Data moves immediately (eager-data simulation: the bytes the
        copy transfers are the bytes at issue time, exactly what a
        correctly synchronized async program would observe); only the
        modelled transfer time is scheduled on ``stream``.  Returns
        the span's finish time for use as an event.
        """
        self.memory.write(device_address, data)
        finish = self.clock.schedule(
            LANE_COMM, self.clock.model.transfer_time(len(data)), stream,
            f"HtoD {len(data)}B", after=after)
        self.clock.count("htod_copies")
        self.clock.count("htod_bytes", len(data))
        if self.observers:
            self._notify("htod", device_address, len(data))
        return finish

    def memcpy_dtoh_async(self, device_address: int, size: int,
                          stream: str = STREAM_D2H,
                          after: Iterable[float] = ()) -> "tuple":
        """``cuMemcpyDtoHAsync``: non-blocking device-to-host copy.

        Returns ``(data, finish_time)``.  The bytes are read eagerly;
        callers ordering the copy after a producing kernel pass that
        kernel's finish time via ``after`` so the modelled span cannot
        start before its producer completes.
        """
        data = self.memory.read(device_address, size)
        finish = self.clock.schedule(
            LANE_COMM, self.clock.model.transfer_time(size), stream,
            f"DtoH {size}B", after=after)
        self.clock.count("dtoh_copies")
        self.clock.count("dtoh_bytes", size)
        if self.observers:
            self._notify("dtoh", device_address, size)
        return data, finish

    # -- introspection ---------------------------------------------------------

    @property
    def live_allocations(self) -> int:
        return len(self.heap.allocations)

    def __repr__(self) -> str:
        return (f"<GpuDevice {self.live_allocations} live allocs, "
                f"{len(self.module_globals)} module globals>")
