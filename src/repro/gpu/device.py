"""Simulated GPU device and driver API.

Mirrors the slice of the CUDA driver API that CGCM's run-time library
uses (paper Algorithms 1-3): ``cuMemAlloc``, ``cuMemFree``,
``cuMemcpyHtoD``, ``cuMemcpyDtoH``, and ``cuModuleGetGlobal``.  Device
memory is a separate :class:`FlatMemory` whose addresses live in the
``0xD000_0000`` range, so mixing host and device pointers faults.

The device does not execute kernels itself; the interpreter runs
kernel grids against :attr:`GpuDevice.memory` (see
:mod:`repro.interp.machine`) and charges GPU time on the shared clock.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from typing import Iterable

from ..errors import (GpuError, GpuLaunchError, GpuOomError,
                      GpuTransferError, MemoryFault)
from ..memory.flatmem import FlatMemory, copy_across
from ..memory.heap import Heap
from ..memory.layout import DEVICE_BASE, DEVICE_CAPACITY, GlobalLayout
from .faults import FaultInjector
from .timing import LANE_COMM, LANE_GPU, STREAM_D2H, STREAM_H2D, SimClock


class DriverEvent(str, enum.Enum):
    """Typed driver-level events delivered to :attr:`GpuDevice.observers`.

    A ``str`` subclass so the members compare equal to the historical
    string names; new observers should match on the enum members.
    """

    ALLOC = "alloc"
    FREE = "free"
    FREE_ASYNC = "free_async"
    HTOD = "htod"
    DTOH = "dtoh"
    LAUNCH = "launch"


class GpuDevice:
    """One simulated CUDA-like device with its own address space.

    ``fault_injector`` arms the resilience subsystem's deterministic
    driver faults; ``heap_limit`` caps the bytes the cuMemAlloc arena
    will hand out (modelling a smaller device), failing allocations
    beyond it with a non-transient :class:`GpuOomError`.
    """

    def __init__(self, clock: SimClock,
                 fault_injector: Optional[FaultInjector] = None,
                 heap_limit: Optional[int] = None):
        self.clock = clock
        self.fault_injector = fault_injector
        self.heap_limit = heap_limit
        self.memory = FlatMemory("gpu")
        #: Reserve a slice of the device range for module globals; the
        #: rest is the cuMemAlloc arena.
        globals_capacity = 64 << 20
        stack_capacity = 32 << 20
        self.memory.add_segment("module", DEVICE_BASE, globals_capacity)
        self.memory.add_segment(
            "device-stack", DEVICE_BASE + globals_capacity, stack_capacity)
        self.memory.add_segment(
            "device-heap", DEVICE_BASE + globals_capacity + stack_capacity,
            DEVICE_CAPACITY - globals_capacity - stack_capacity)
        self.heap = Heap(self.memory, "device-heap")
        #: Base of the per-thread scratch stack used for kernel allocas.
        self.stack_base = DEVICE_BASE + globals_capacity
        self.module_globals: Dict[str, int] = {}
        self._module_sizes: Dict[str, int] = {}
        #: Observers of driver-level events, called as
        #: ``observer(event, address, size)`` with a
        #: :class:`DriverEvent` member.  The sanitizer attaches here.
        self.observers: List[Callable[[DriverEvent, int, int], None]] = []
        self._stream_serial = 0
        #: Engine lane the transfer paths charge.  The multi-GPU
        #: coordinator retargets this per-operation so a copy feeding
        #: a unit homed on device *d* occupies that device's comm
        #: lane; everything else (and every single-device run) stays
        #: on the built-in ``comm`` lane.
        self.comm_lane = LANE_COMM

    # -- streams and events -------------------------------------------------

    def stream_create(self, name: Optional[str] = None) -> str:
        """``cuStreamCreate``: register a FIFO stream on the clock.

        Returns the stream handle (its name).  The well-known streams
        ``h2d``/``d2h``/``compute`` are created on demand by the async
        transfer and launch paths; explicit creation is only needed
        for additional user streams.
        """
        if name is None:
            self._stream_serial += 1
            name = f"stream{self._stream_serial}"
        return self.clock.stream_create(name)

    def event_record(self, stream: str) -> float:
        """``cuEventRecord``: capture the stream's completion frontier."""
        return self.clock.event_record(stream)

    def stream_wait_event(self, stream: str, event_time: float) -> None:
        """``cuStreamWaitEvent``: order ``stream`` after the event."""
        self.clock.stream_wait_event(stream, event_time)

    def stream_synchronize(self, stream: str) -> None:
        """``cuStreamSynchronize``: block the host on one stream."""
        self.clock.stream_synchronize(stream)

    def device_synchronize(self) -> None:
        """``cuCtxSynchronize``: block the host on all engines."""
        self.clock.device_synchronize()

    def _notify(self, event: DriverEvent, address: int, size: int) -> None:
        for observer in self.observers:
            observer(event, address, size)

    # -- module loading ----------------------------------------------------

    def load_module(self, layout: GlobalLayout) -> None:
        """Give every host global a device-resident named region.

        CUDA modules declare ``__device__`` globals that occupy device
        memory from load time; ``cuModuleGetGlobal`` looks them up by
        name.  CGCM's ``map`` relies on this for globals (Algorithm 1).
        """
        cursor = DEVICE_BASE
        for name, _, size in layout.items():
            aligned = (cursor + 15) // 16 * 16
            if aligned + size > DEVICE_BASE + (64 << 20):
                raise GpuError("device module segment exhausted")
            self.module_globals[name] = aligned
            self._module_sizes[name] = size
            cursor = aligned + size

    def module_get_global(self, name: str) -> int:
        """``cuModuleGetGlobal``: device address of a named global."""
        try:
            return self.module_globals[name]
        except KeyError:
            raise GpuError(f"no device global named {name!r}") from None

    # -- memory management --------------------------------------------------

    def mem_alloc(self, size: int,
                  avoid: Optional[list] = None) -> int:
        """``cuMemAlloc``: allocate device memory.

        Raises :class:`GpuOomError` when the arena (or the configured
        ``heap_limit``) cannot satisfy the request, or when the fault
        injector schedules a transient failure.  A failed call still
        charges the driver latency: the round trip happened.
        ``avoid`` forwards address ranges the allocator must skip (see
        :meth:`repro.memory.heap.Heap.malloc`).
        """
        if size <= 0:
            raise GpuError(f"cuMemAlloc of {size} bytes")
        self.clock.advance(LANE_COMM, self.clock.model.device_alloc_latency_s,
                           "cuMemAlloc")
        self.clock.count("device_allocs")
        if self.fault_injector is not None \
                and self.fault_injector.alloc_fault():
            self.clock.count("injected_alloc_faults")
            raise GpuOomError(
                f"cuMemAlloc of {size} bytes failed: injected transient "
                "out-of-memory", size=size, transient=True)
        if self.heap_limit is not None \
                and self.heap.live_bytes + size > self.heap_limit:
            raise GpuOomError(
                f"cuMemAlloc of {size} bytes failed: device heap capped "
                f"at {self.heap_limit} bytes ({self.heap.live_bytes} "
                "live)", size=size)
        try:
            address = self.heap.malloc(size, avoid)
        except MemoryFault as fault:
            raise GpuOomError(f"cuMemAlloc of {size} bytes failed: {fault}",
                              size=size) from None
        if self.observers:
            self._notify(DriverEvent.ALLOC, address, size)
        return address

    def mem_alloc_at(self, address: int, size: int) -> bool:
        """Allocate device memory at a fixed address, if free.

        The resilience layer's address-stable restore: an evicted
        allocation unit re-materializes at the device address its
        translated pointers were minted for.  Returns False when the
        range is occupied (the caller falls back to the CPU path).
        """
        if size <= 0:
            raise GpuError(f"cuMemAlloc of {size} bytes")
        self.clock.advance(LANE_COMM, self.clock.model.device_alloc_latency_s,
                           "cuMemAlloc")
        self.clock.count("device_allocs")
        if self.heap_limit is not None \
                and self.heap.live_bytes + size > self.heap_limit:
            return False
        if not self.heap.allocate_at(address, size):
            return False
        if self.observers:
            self._notify(DriverEvent.ALLOC, address, size)
        return True

    def mem_free(self, address: int) -> None:
        """``cuMemFree``: release device memory."""
        self.clock.advance(LANE_COMM, self.clock.model.device_free_latency_s,
                           "cuMemFree")
        self.clock.count("device_frees")
        if self.observers:
            self._notify(DriverEvent.FREE, address, 0)
        self.heap.free(address)

    def mem_free_async(self, address: int, stream: str = STREAM_D2H,
                       after: Iterable[float] = ()) -> float:
        """``cuMemFreeAsync``: release device memory in stream order.

        The heap bookkeeping happens immediately (the simulator's
        eager-data model); only the driver latency is scheduled on the
        stream, after any pending spans it depends on -- typically the
        write-back copy of the region being freed.
        """
        finish = self.clock.schedule(
            LANE_COMM, self.clock.model.device_free_latency_s, stream,
            "cuMemFree", after=after)
        self.clock.count("device_frees")
        if self.observers:
            self._notify(DriverEvent.FREE_ASYNC, address, 0)
        self.heap.free(address)
        return finish

    # -- transfers ------------------------------------------------------------

    def _maybe_transfer_fault(self, direction: str, address: int,
                              size: int) -> None:
        """Raise an injected :class:`GpuTransferError` for one copy.

        Checked before any byte moves and before observers fire: a
        failed copy has no data effect.  The aborted bus transaction
        still costs the fixed transfer latency.
        """
        if self.fault_injector is None \
                or not self.fault_injector.transfer_fault(direction):
            return
        self.clock.advance(LANE_COMM, self.clock.model.transfer_latency_s,
                           f"{direction} fault")
        self.clock.count("injected_transfer_faults")
        raise GpuTransferError(
            f"cuMemcpy{'HtoD' if direction == 'htod' else 'DtoH'} of "
            f"{size} bytes at {address:#x} failed (injected bus fault); "
            "no data was transferred", address=address, size=size)

    def memcpy_htod(self, device_address: int, data: bytes) -> None:
        """``cuMemcpyHtoD``: copy host bytes into device memory."""
        if self.fault_injector is not None:
            self._maybe_transfer_fault("htod", device_address, len(data))
        self.memory.write(device_address, data)
        self.clock.advance(self.comm_lane,
                           self.clock.model.transfer_time(len(data)),
                           f"HtoD {len(data)}B")
        self.clock.count("htod_copies")
        self.clock.count("htod_bytes", len(data))
        if self.observers:
            self._notify(DriverEvent.HTOD, device_address, len(data))

    def memcpy_dtoh(self, device_address: int, size: int) -> bytes:
        """``cuMemcpyDtoH``: copy device bytes back to the host."""
        if self.fault_injector is not None:
            self._maybe_transfer_fault("dtoh", device_address, size)
        data = self.memory.read(device_address, size)
        self.clock.advance(self.comm_lane, self.clock.model.transfer_time(size),
                           f"DtoH {size}B")
        self.clock.count("dtoh_copies")
        self.clock.count("dtoh_bytes", size)
        if self.observers:
            self._notify(DriverEvent.DTOH, device_address, size)
        return data

    def memcpy_htod_from(self, device_address: int, host_memory,
                         host_address: int, size: int) -> None:
        """``cuMemcpyHtoD`` straight out of a host address space.

        Identical semantics (and modelled cost) to
        :meth:`memcpy_htod`, but the bytes move segment-to-segment via
        :func:`~repro.memory.flatmem.copy_across` -- one slice
        assignment instead of materializing an intermediate ``bytes``
        payload on the host side.
        """
        if self.fault_injector is not None:
            self._maybe_transfer_fault("htod", device_address, size)
        copy_across(host_memory, host_address,
                    self.memory, device_address, size)
        self.clock.advance(self.comm_lane,
                           self.clock.model.transfer_time(size),
                           f"HtoD {size}B")
        self.clock.count("htod_copies")
        self.clock.count("htod_bytes", size)
        if self.observers:
            self._notify(DriverEvent.HTOD, device_address, size)

    def memcpy_dtoh_into(self, device_address: int, size: int,
                         host_memory, host_address: int) -> None:
        """``cuMemcpyDtoH`` straight into a host address space.

        Identical semantics (and modelled cost) to
        :meth:`memcpy_dtoh`, minus the staging ``bytes`` object.
        """
        if self.fault_injector is not None:
            self._maybe_transfer_fault("dtoh", device_address, size)
        copy_across(self.memory, device_address,
                    host_memory, host_address, size)
        self.clock.advance(self.comm_lane, self.clock.model.transfer_time(size),
                           f"DtoH {size}B")
        self.clock.count("dtoh_copies")
        self.clock.count("dtoh_bytes", size)
        if self.observers:
            self._notify(DriverEvent.DTOH, device_address, size)

    def memcpy_htod_async(self, device_address: int, data: bytes,
                          stream: str = STREAM_H2D,
                          after: Iterable[float] = ()) -> float:
        """``cuMemcpyHtoDAsync``: non-blocking host-to-device copy.

        Data moves immediately (eager-data simulation: the bytes the
        copy transfers are the bytes at issue time, exactly what a
        correctly synchronized async program would observe); only the
        modelled transfer time is scheduled on ``stream``.  Returns
        the span's finish time for use as an event.
        """
        self.memory.write(device_address, data)
        finish = self.clock.schedule(
            self.comm_lane, self.clock.model.transfer_time(len(data)), stream,
            f"HtoD {len(data)}B", after=after)
        self.clock.count("htod_copies")
        self.clock.count("htod_bytes", len(data))
        if self.observers:
            self._notify(DriverEvent.HTOD, device_address, len(data))
        return finish

    def memcpy_dtoh_async(self, device_address: int, size: int,
                          stream: str = STREAM_D2H,
                          after: Iterable[float] = ()) -> "tuple":
        """``cuMemcpyDtoHAsync``: non-blocking device-to-host copy.

        Returns ``(data, finish_time)``.  The bytes are read eagerly;
        callers ordering the copy after a producing kernel pass that
        kernel's finish time via ``after`` so the modelled span cannot
        start before its producer completes.
        """
        data = self.memory.read(device_address, size)
        finish = self.clock.schedule(
            self.comm_lane, self.clock.model.transfer_time(size), stream,
            f"DtoH {size}B", after=after)
        self.clock.count("dtoh_copies")
        self.clock.count("dtoh_bytes", size)
        if self.observers:
            self._notify(DriverEvent.DTOH, device_address, size)
        return data, finish

    # -- kernel launch ---------------------------------------------------------

    def launch_begin(self, kernel_name: str, grid: int) -> None:
        """Driver-side admission of one kernel launch.

        The interpreter still executes the grid itself; this models
        the ``cuLaunchKernel`` driver call, which is where an injected
        launch fault surfaces (:class:`GpuLaunchError` -- no thread of
        the grid ran).  A rejected launch charges the launch latency:
        the doorbell was rung before the driver said no.
        """
        if self.fault_injector is not None \
                and self.fault_injector.launch_fault():
            self.clock.advance(LANE_GPU,
                               self.clock.model.kernel_launch_latency_s,
                               f"{kernel_name} launch fault")
            self.clock.count("injected_launch_faults")
            raise GpuLaunchError(
                f"launch of kernel {kernel_name!r} (grid {grid}) rejected "
                "by the driver (injected fault); no thread ran",
                kernel=kernel_name, grid=grid)
        if self.observers:
            self._notify(DriverEvent.LAUNCH, 0, grid)

    # -- introspection ---------------------------------------------------------

    @property
    def live_allocations(self) -> int:
        return len(self.heap.allocations)

    def __repr__(self) -> str:
        return (f"<GpuDevice {self.live_allocations} live allocs, "
                f"{len(self.module_globals)} module globals>")
