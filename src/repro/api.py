"""Public scripting API: MiniC source in, runnable workload out.

PyCUDA-style entry point (run-time code generation plus caching, per
Klockner et al.): :func:`compile_workload` takes a MiniC program as a
*string* and a :class:`CgcmConfig`, runs the full frontend-to-pipeline
stack once, and returns a :class:`CompiledWorkload` handle that can be
executed any number of times on fresh simulated machines.  Compiled
artifacts are cached process-wide by ``(source hash, module name,
config key)``, so serving the same program repeatedly -- the scenario
engine's fuzz loops, the benchmarks, a hypothetical request stream --
pays for parsing, lowering, and the transform pipeline exactly once.

Guarantees:

* Malformed source raises :class:`repro.errors.FrontendError`, a typed
  diagnostic carrying ``line`` and ``column`` -- never a bare Python
  traceback from deep inside the parser.
* A bad ``config`` (wrong type, or a config mutated into an invalid
  combination after construction) raises
  :class:`repro.errors.ConfigError` *before* any compilation work.
* The handle's config is a private snapshot: mutating the caller's
  config afterwards never perturbs a cached artifact, and distinct
  config variants (sanitize / streams / faults / heap caps) always get
  distinct cache entries.

Quick start::

    from repro.api import compile_workload

    wl = compile_workload("int main(void){ print_i64(42); return 0; }")
    result = wl.run()
    result.stdout            # ('42',)
    result.observable()      # everything a transform must preserve
    wl.lint().errors         # static-checker findings, post-pipeline
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from .core.compiler import CgcmCompiler, CompileReport, ExecutionResult
from .core.config import CgcmConfig, OptLevel
from .errors import ConfigError
from .ir import module_to_str

__all__ = ["CompiledWorkload", "compile_workload", "cache_stats",
           "clear_cache", "CACHE_CAPACITY"]

#: Most-recently-used compiled artifacts kept alive by the cache.
CACHE_CAPACITY = 256


def _config_key(config: CgcmConfig) -> Tuple:
    """A hashable fingerprint of everything that affects compilation
    or execution.  Two configs with equal keys are interchangeable."""
    faults = config.faults
    fault_key = None
    if faults is not None:
        fault_key = (faults.seed, faults.alloc_fail_rate,
                     faults.transfer_fail_rate, faults.launch_fail_rate,
                     faults.max_consecutive)
    return (
        config.opt_level.value,
        config.enable_glue_kernels,
        config.enable_alloca_promotion,
        config.enable_map_promotion,
        dataclasses.astuple(config.cost_model),
        config.record_events,
        config.verify,
        config.sanitize,
        config.engine,
        config.streams,
        fault_key,
        config.device_heap_limit,
        config.strict_heap_limit,
        config.validate,
    )


def _source_key(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class _ArtifactCache:
    """Process-wide LRU of compiled workloads, with hit/miss counters.

    The counters double as the test hook the scenario engine asserts
    against: a served request either bumped ``hits`` (no frontend or
    pipeline work happened) or ``misses`` (one full compile happened).
    """

    def __init__(self, capacity: int = CACHE_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, CompiledWorkload]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Tuple) -> Optional["CompiledWorkload"]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def insert(self, key: Tuple, workload: "CompiledWorkload") -> None:
        with self._lock:
            self._entries[key] = workload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "entries": len(self._entries),
                    "size": len(self._entries),
                    "capacity": self.capacity}


_CACHE = _ArtifactCache()


def cache_stats() -> Dict[str, int]:
    """Artifact-cache counters: ``hits``, ``misses``, ``evictions``,
    ``entries`` (plus the legacy ``size`` alias and ``capacity``)."""
    return _CACHE.stats()


def clear_cache() -> None:
    """Drop every cached artifact and zero the counters."""
    _CACHE.clear()


class CompiledWorkload:
    """A compiled MiniC program, runnable any number of times.

    Holds the post-pipeline module (shared across runs -- the pipeline
    ran once) plus a private config snapshot.  Each :meth:`run` builds
    a fresh simulated machine, so runs never observe each other's
    memory, clocks, or fault schedules.
    """

    def __init__(self, source: str, name: str, config: CgcmConfig,
                 compiler: CgcmCompiler, report: CompileReport,
                 cache_key: Tuple):
        self.source = source
        self.name = name
        self.config = config
        self.report = report
        self.cache_key = cache_key
        self._compiler = compiler
        #: Number of completed :meth:`run` calls on this handle.
        self.runs = 0

    # -- execution ---------------------------------------------------------

    def run(self, engine: Optional[str] = None,
            shared_mappings: Optional["object"] = None,
            launch_log: Optional[list] = None) -> ExecutionResult:
        """Execute on a fresh machine; returns observables and clocks.

        ``engine`` overrides the config's engine for this run only
        (the differential harness runs one artifact under both).
        With ``config.sanitize`` the sanitizer report rides along on
        :attr:`ExecutionResult.sanitizer_report`.  ``shared_mappings``
        and ``launch_log`` are the serve layer's hooks -- see
        :meth:`CgcmCompiler.execute`.
        """
        result = self._compiler.execute(self.report, engine=engine,
                                        shared_mappings=shared_mappings,
                                        launch_log=launch_log)
        self.runs += 1
        return result

    # -- reports -----------------------------------------------------------

    def lint(self):
        """Static-checker report over the post-pipeline IR."""
        from .staticcheck.linter import lint_module
        return lint_module(self.report.module)

    def sanitize(self, level: Optional[OptLevel] = None):
        """CPU-vs-GPU differential run with the sanitizer armed.

        Recompiles from source (the reference run needs the
        *untransformed* program); returns a ``DifferentialReport``.
        """
        from .sanitizer.differential import run_differential
        return run_differential(
            self.source, self.name,
            level if level is not None else self.config.opt_level,
            engine=self.config.engine)

    # -- introspection -----------------------------------------------------

    @property
    def module(self):
        """The post-pipeline IR module (shared, do not mutate)."""
        return self.report.module

    @property
    def ir(self) -> str:
        """The post-pipeline IR, printed."""
        return module_to_str(self.report.module)

    def __repr__(self) -> str:
        return (f"<CompiledWorkload {self.name!r} "
                f"level={self.config.opt_level.value} runs={self.runs}>")


def compile_workload(source: str, config: Optional[CgcmConfig] = None,
                     name: str = "workload") -> CompiledWorkload:
    """Compile MiniC source through the CGCM pipeline, with caching.

    ``config`` defaults to a fresh :class:`CgcmConfig` (full
    optimization, no instrumentation).  The returned handle may come
    from the artifact cache: same source bytes, same name, and an
    equivalent config reuse the already-compiled module.  Source is
    keyed by its exact bytes -- even semantically meaningless
    whitespace changes produce a distinct artifact, because the cache
    must never be cleverer than the compiler it is caching.
    """
    if not isinstance(source, str):
        raise ConfigError(
            f"compile_workload source must be MiniC text (str), got "
            f"{type(source).__name__}; read files before calling")
    if config is None:
        config = CgcmConfig()
    elif not isinstance(config, CgcmConfig):
        raise ConfigError(
            f"compile_workload config must be a CgcmConfig, got "
            f"{type(config).__name__}")
    # Snapshot re-runs __post_init__, so a config mutated into an
    # invalid combination is rejected here -- before any compilation.
    snapshot = dataclasses.replace(config)
    key = (_source_key(source), name, _config_key(snapshot))
    cached = _CACHE.lookup(key)
    if cached is not None:
        return cached
    compiler = CgcmCompiler(snapshot)
    report = compiler.compile_source(source, name)
    workload = CompiledWorkload(source, name, snapshot, compiler,
                                report, key)
    _CACHE.insert(key, workload)
    return workload
