"""Public scripting API: MiniC source in, runnable workload out.

PyCUDA-style entry point (run-time code generation plus caching, per
Klockner et al.): :func:`compile_workload` takes a MiniC program as a
*string* and a :class:`CgcmConfig`, runs the full frontend-to-pipeline
stack once, and returns a :class:`CompiledWorkload` handle that can be
executed any number of times on fresh simulated machines.  Compiled
artifacts are cached process-wide by ``(source hash, module name,
config key)``, so serving the same program repeatedly -- the scenario
engine's fuzz loops, the benchmarks, a hypothetical request stream --
pays for parsing, lowering, and the transform pipeline exactly once.

Guarantees:

* Malformed source raises :class:`repro.errors.FrontendError`, a typed
  diagnostic carrying ``line`` and ``column`` -- never a bare Python
  traceback from deep inside the parser.
* A bad ``config`` (wrong type, or a config mutated into an invalid
  combination after construction) raises
  :class:`repro.errors.ConfigError` *before* any compilation work.
* The handle's config is a private snapshot: mutating the caller's
  config afterwards never perturbs a cached artifact, and distinct
  config variants (sanitize / streams / faults / heap caps) always get
  distinct cache entries.

Quick start::

    from repro.api import compile_workload

    wl = compile_workload("int main(void){ print_i64(42); return 0; }")
    result = wl.run()
    result.stdout            # ('42',)
    result.observable()      # everything a transform must preserve
    wl.lint().errors         # static-checker findings, post-pipeline
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from .core.compiler import CgcmCompiler, CompileReport, ExecutionResult
from .core.config import CgcmConfig, OptLevel
from .errors import ConfigError
from .gpu.topology import Topology
from .ir import module_to_str

__all__ = ["CompiledWorkload", "Session", "compile_workload",
           "cache_stats", "clear_cache", "default_session",
           "CACHE_CAPACITY"]

#: Most-recently-used compiled artifacts kept alive by the cache.
CACHE_CAPACITY = 256


def _config_key(config: CgcmConfig) -> Tuple:
    """A hashable fingerprint of everything that affects compilation
    or execution.  Two configs with equal keys are interchangeable."""
    faults = config.faults
    fault_key = None
    if faults is not None:
        fault_key = (faults.seed, faults.alloc_fail_rate,
                     faults.transfer_fail_rate, faults.launch_fail_rate,
                     faults.max_consecutive)
    return (
        config.opt_level.value,
        config.enable_glue_kernels,
        config.enable_alloca_promotion,
        config.enable_map_promotion,
        dataclasses.astuple(config.cost_model),
        config.record_events,
        config.verify,
        config.sanitize,
        config.engine,
        config.streams,
        fault_key,
        config.device_heap_limit,
        config.strict_heap_limit,
        config.validate,
        None if config.topology is None else config.topology.key(),
    )


def _source_key(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class _ArtifactCache:
    """Process-wide LRU of compiled workloads, with hit/miss counters.

    The counters double as the test hook the scenario engine asserts
    against: a served request either bumped ``hits`` (no frontend or
    pipeline work happened) or ``misses`` (one full compile happened).
    """

    def __init__(self, capacity: int = CACHE_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, CompiledWorkload]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Tuple) -> Optional["CompiledWorkload"]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def insert(self, key: Tuple, workload: "CompiledWorkload") -> None:
        with self._lock:
            self._entries[key] = workload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "entries": len(self._entries),
                    "size": len(self._entries),
                    "capacity": self.capacity}


class Session:
    """One scripting context: an artifact cache plus ambient defaults.

    A session owns what used to be process-wide state -- the compiled
    artifact cache, the default :class:`CgcmConfig`, and the device
    :class:`~repro.gpu.topology.Topology` -- so independent embedders
    (the serve layer, the benchmarks, tests) no longer share cache
    counters or defaults.  Module-level :func:`compile_workload` /
    :func:`cache_stats` / :func:`clear_cache` are thin wrappers over
    one process-wide *default session* and behave exactly as before.

    ``config`` seeds the default config used when :meth:`compile` is
    called without one; ``topology`` is injected into any compile
    whose config does not pin its own (so one session serves an
    N-device machine without every call site repeating it).
    """

    def __init__(self, config: Optional[CgcmConfig] = None,
                 topology: Optional[Topology] = None,
                 cache_capacity: int = CACHE_CAPACITY):
        if config is not None and not isinstance(config, CgcmConfig):
            raise ConfigError(
                f"Session config must be a CgcmConfig, got "
                f"{type(config).__name__}")
        if topology is not None and not isinstance(topology, Topology):
            raise ConfigError(
                f"Session topology must be a Topology, got "
                f"{type(topology).__name__}")
        #: Snapshot: mutating the caller's config later never changes
        #: what the session compiles with.
        self.default_config = dataclasses.replace(config) \
            if config is not None else None
        self.topology = topology
        self._cache = _ArtifactCache(cache_capacity)

    # -- compilation -------------------------------------------------------

    def compile(self, source: str, config: Optional[CgcmConfig] = None,
                name: str = "workload") -> "CompiledWorkload":
        """Compile ``source`` through the pipeline, with caching.

        Config resolution: the explicit ``config`` wins, else the
        session's default, else a fresh :class:`CgcmConfig`.  A config
        that does not pin its own topology inherits the session's
        (when the config parallelizes -- a CPU-only config has no use
        for devices).  Caching semantics match the module-level
        :func:`compile_workload` exactly, against *this* session's
        cache.
        """
        if not isinstance(source, str):
            raise ConfigError(
                f"compile_workload source must be MiniC text (str), got "
                f"{type(source).__name__}; read files before calling")
        if config is None:
            config = self.default_config
        if config is None:
            config = CgcmConfig()
        elif not isinstance(config, CgcmConfig):
            raise ConfigError(
                f"compile_workload config must be a CgcmConfig, got "
                f"{type(config).__name__}")
        # Snapshot re-runs __post_init__, so a config mutated into an
        # invalid combination is rejected here -- before any
        # compilation.  Topology injection happens in the same step.
        if config.topology is None and self.topology is not None \
                and config.parallelize:
            snapshot = dataclasses.replace(config, topology=self.topology)
        else:
            snapshot = dataclasses.replace(config)
        key = (_source_key(source), name, _config_key(snapshot))
        cached = self._cache.lookup(key)
        if cached is not None:
            return cached
        compiler = CgcmCompiler(snapshot)
        report = compiler.compile_source(source, name)
        workload = CompiledWorkload(source, name, snapshot, compiler,
                                    report, key)
        self._cache.insert(key, workload)
        return workload

    # -- cache -------------------------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        """This session's cache counters (same shape as the
        module-level :func:`cache_stats`)."""
        return self._cache.stats()

    def clear_cache(self) -> None:
        """Drop this session's cached artifacts and zero counters."""
        self._cache.clear()

    def __repr__(self) -> str:
        topo = "single" if self.topology is None \
            else f"{self.topology.kind}x{self.topology.num_devices}"
        return (f"<Session topology={topo} "
                f"entries={self._cache.stats()['entries']}>")


_DEFAULT_SESSION = Session()
#: Back-compat alias: the default session's cache (tests and tools
#: historically reached for ``api._CACHE``).
_CACHE = _DEFAULT_SESSION._cache


def default_session() -> Session:
    """The process-wide session behind the module-level wrappers."""
    return _DEFAULT_SESSION


def cache_stats() -> Dict[str, int]:
    """Artifact-cache counters: ``hits``, ``misses``, ``evictions``,
    ``entries`` (plus the legacy ``size`` alias and ``capacity``)."""
    return _DEFAULT_SESSION.cache_stats()


def clear_cache() -> None:
    """Drop every cached artifact and zero the counters."""
    _DEFAULT_SESSION.clear_cache()


class CompiledWorkload:
    """A compiled MiniC program, runnable any number of times.

    Holds the post-pipeline module (shared across runs -- the pipeline
    ran once) plus a private config snapshot.  Each :meth:`run` builds
    a fresh simulated machine, so runs never observe each other's
    memory, clocks, or fault schedules.
    """

    def __init__(self, source: str, name: str, config: CgcmConfig,
                 compiler: CgcmCompiler, report: CompileReport,
                 cache_key: Tuple):
        self.source = source
        self.name = name
        self.config = config
        self.report = report
        self.cache_key = cache_key
        self._compiler = compiler
        #: Number of completed :meth:`run` calls on this handle.
        self.runs = 0

    # -- execution ---------------------------------------------------------

    def run(self, engine: Optional[str] = None,
            shared_mappings: Optional["object"] = None,
            launch_log: Optional[list] = None,
            device_heap_limit: Optional[int] = None) -> ExecutionResult:
        """Execute on a fresh machine; returns observables and clocks.

        ``engine`` overrides the config's engine for this run only
        (the differential harness runs one artifact under both).
        With ``config.sanitize`` the sanitizer report rides along on
        :attr:`ExecutionResult.sanitizer_report`.  ``shared_mappings``
        and ``launch_log`` are the serve layer's hooks;
        ``device_heap_limit`` applies a heap quota to this run only
        (the module is identical either way, so quota variants share
        this one artifact) -- see :meth:`CgcmCompiler.execute`.
        """
        result = self._compiler.execute(self.report, engine=engine,
                                        shared_mappings=shared_mappings,
                                        launch_log=launch_log,
                                        device_heap_limit=device_heap_limit)
        self.runs += 1
        return result

    # -- reports -----------------------------------------------------------

    def lint(self):
        """Static-checker report over the post-pipeline IR.  Under a
        multi-device config the placement pass is armed too."""
        from .staticcheck.linter import lint_module
        return lint_module(self.report.module,
                           topology=self.config.topology)

    def sanitize(self, level: Optional[OptLevel] = None):
        """CPU-vs-GPU differential run with the sanitizer armed.

        Recompiles from source (the reference run needs the
        *untransformed* program); returns a ``DifferentialReport``.
        """
        from .sanitizer.differential import run_differential
        return run_differential(
            self.source, self.name,
            level if level is not None else self.config.opt_level,
            engine=self.config.engine)

    # -- introspection -----------------------------------------------------

    @property
    def module(self):
        """The post-pipeline IR module (shared, do not mutate)."""
        return self.report.module

    @property
    def ir(self) -> str:
        """The post-pipeline IR, printed."""
        return module_to_str(self.report.module)

    def __repr__(self) -> str:
        return (f"<CompiledWorkload {self.name!r} "
                f"level={self.config.opt_level.value} runs={self.runs}>")


def compile_workload(source: str, config: Optional[CgcmConfig] = None,
                     name: str = "workload") -> CompiledWorkload:
    """Compile MiniC source through the CGCM pipeline, with caching.

    ``config`` defaults to a fresh :class:`CgcmConfig` (full
    optimization, no instrumentation).  The returned handle may come
    from the artifact cache: same source bytes, same name, and an
    equivalent config reuse the already-compiled module.  Source is
    keyed by its exact bytes -- even semantically meaningless
    whitespace changes produce a distinct artifact, because the cache
    must never be cleverer than the compiler it is caching.

    Thin wrapper: equivalent to ``default_session().compile(...)``.
    """
    if config is None:
        # The process-wide default session carries no default config,
        # so explicitly fall back to a fresh one (the historical
        # contract of this function).
        config = CgcmConfig()
    return _DEFAULT_SESSION.compile(source, config, name)
