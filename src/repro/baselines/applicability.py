"""Applicability analysis for prior communication-management systems.

Backs Table 1 (the feature matrix) and Table 3's applicability columns.
The paper characterizes prior techniques as follows:

* **Named regions** (OpenMP-to-GPGPU [12]; the affine technique [24]
  has the same applicability): every live-in must be a *distinct named
  allocation unit* (a global variable, not a heap block or an alias),
  array indexes must be induction-based (no pointer casts feeding
  addresses), and at most one level of indirection is supported.
* **Inspector-executor** [4, 14, 22]: live-ins must also be distinct
  named allocation units with single indirection, but irregular
  (non-affine) indexing is fine.  "Although inspector-executor and
  named region based techniques have different applicability guards,
  they both fail to transfer memory for the same set of kernels."
* **CGCM**: applicable whenever its two restrictions hold (max double
  indirection, no pointer stores in kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..analysis.alias import underlying_objects
from ..analysis.typeinfer import infer_pointer_depths
from ..ir.function import Function
from ..ir.instructions import (Call, Cast, GetElementPtr, Instruction,
                               LaunchKernel, Load, Store)
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable, Value


@dataclass
class KernelApplicability:
    """Which techniques can manage communication for one kernel."""

    kernel: str
    cgcm: bool
    inspector_executor: bool
    named_regions: bool


def analyze_kernel(kernel: Function, module: Module,
                   launches: List[LaunchKernel]) -> KernelApplicability:
    depths = infer_pointer_depths(kernel, module)
    live_in = depths.live_in_depths()

    cgcm_ok = not depths.check_restrictions()
    max_depth = max(live_in.values(), default=0)

    named_units = _live_ins_are_distinct_named_units(live_in, launches)
    single_indirection = max_depth <= 1
    induction_indexed = _indexing_is_induction_based(kernel, module)

    return KernelApplicability(
        kernel=kernel.name,
        cgcm=cgcm_ok,
        inspector_executor=named_units and single_indirection,
        named_regions=(named_units and single_indirection
                       and induction_indexed),
    )


def _live_ins_are_distinct_named_units(live_in: Dict[Value, int],
                                       launches: List[LaunchKernel]
                                       ) -> bool:
    """Each live-in pointer must resolve to its own global variable."""
    for launch in launches:
        seen: Set[GlobalVariable] = set()
        for formal, depth in live_in.items():
            if depth < 1:
                continue
            if isinstance(formal, GlobalVariable):
                roots = frozenset({formal})
            elif isinstance(formal, Argument):
                position = formal.index - 1
                if position >= len(launch.args):
                    return False
                roots = underlying_objects(launch.args[position])
            else:
                return False
            if len(roots) != 1:
                return False  # may point to several units: aliasing
            root = next(iter(roots))
            if not isinstance(root, GlobalVariable):
                return False  # heap / stack: not a named region
            if root in seen:
                return False  # two live-ins share a unit: aliasing
            seen.add(root)
    return True


def _indexing_is_induction_based(kernel: Function,
                                 module: Module) -> bool:
    """Every address must be a GEP chain over parameters/globals with
    no pointer casts or loaded pointers feeding it (approximates
    "induction-variable based array indexes" + no pointer arithmetic).
    """
    functions = [kernel]
    seen = {kernel}
    while functions:
        fn = functions.pop()
        for inst in fn.instructions():
            if isinstance(inst, Call) and not inst.callee.is_declaration \
                    and inst.callee not in seen:
                seen.add(inst.callee)
                functions.append(inst.callee)
            if isinstance(inst, (Load, Store)):
                if not _clean_address(inst.pointer):
                    return False
    return True


def _clean_address(pointer: Value, _depth: int = 0) -> bool:
    if _depth > 32:
        return False
    from ..ir.instructions import Alloca, BinaryOp, Cast as CastInst
    if isinstance(pointer, (Argument, GlobalVariable, Alloca)):
        return True
    if isinstance(pointer, GetElementPtr):
        if not _clean_address(pointer.pointer, _depth + 1):
            return False
        return all(_induction_index(index, _depth + 1)
                   for index in pointer.indices)
    if isinstance(pointer, Load):
        # Reloading a spilled parameter is fine; loading a pointer out
        # of data is not induction-based indexing.
        return isinstance(pointer.pointer, Alloca)
    if isinstance(pointer, Cast):
        return False  # pointer arithmetic through casts
    return False


def _induction_index(index: Value, _depth: int = 0) -> bool:
    """Is a subscript derived only from induction variables and
    constants (not loaded from data)?"""
    if _depth > 32:
        return False
    from ..ir.instructions import Alloca, BinaryOp, Cast as CastInst
    from ..ir.values import Constant
    if isinstance(index, (Constant, Argument)):
        return True
    if isinstance(index, Load):
        return isinstance(index.pointer, Alloca)  # spilled scalar
    if isinstance(index, (BinaryOp, CastInst)):
        return all(_induction_index(op, _depth + 1)
                   for op in index.operands)
    return False


@dataclass
class ProgramApplicability:
    """Per-program kernel counts for Table 3."""

    total_kernels: int
    cgcm: int
    inspector_executor: int
    named_regions: int
    details: List[KernelApplicability]


def analyze_module(module: Module) -> ProgramApplicability:
    """Applicability counts over every kernel of a transformed module."""
    launches_by_kernel: Dict[Function, List[LaunchKernel]] = {}
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, LaunchKernel):
                launches_by_kernel.setdefault(inst.kernel, []).append(inst)
    details = [analyze_kernel(kernel, module, launches)
               for kernel, launches in launches_by_kernel.items()]
    details.sort(key=lambda d: d.kernel)
    return ProgramApplicability(
        total_kernels=len(details),
        cgcm=sum(d.cgcm for d in details),
        inspector_executor=sum(d.inspector_executor for d in details),
        named_regions=sum(d.named_regions for d in details),
        details=details,
    )
