"""Comparison baselines: the idealized inspector-executor system and
applicability analysis for prior communication-management techniques."""

from .inspector_executor import (INSPECTION_OPS_PER_ACCESS,
                                 InspectorExecutorMachine)
from .applicability import (KernelApplicability, ProgramApplicability,
                            analyze_kernel, analyze_module)

__all__ = [
    "INSPECTION_OPS_PER_ACCESS", "InspectorExecutorMachine",
    "KernelApplicability", "ProgramApplicability", "analyze_kernel",
    "analyze_module",
]
