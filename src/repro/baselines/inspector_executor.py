"""Idealized inspector-executor baseline (paper section 6.3).

"For comparison, we simulate an idealized inspector-executor system.
The inspector-executor system has an oracle for scheduling and
transfers exactly one byte between CPU and GPU for each accessed
allocation unit.  A compiler creates the inspector from the original
loop.  To measure performance ignoring applicability constraints, the
inspector-executor simulation ignores its applicability guard."

Concretely, for every kernel launch of a DOALL-parallelized (but
communication-unmanaged) program:

* the **inspector** walks the loop's address computations sequentially
  on the CPU: modelled as a few CPU ops per dynamic memory access;
* the **scheduler** is an oracle: zero cost;
* transfers move one byte per accessed allocation unit in, and one
  byte per written unit out, each paying the per-copy latency -- the
  pattern remains *cyclic* (both directions on every launch);
* the **executor** runs the grid with the normal GPU cost model.

Because placement is oracle-perfect, the simulation executes kernels
against host memory directly (mode ``"ie"``): correctness is free, and
only the modelled time differs.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union

from ..gpu.timing import CostModel, LANE_COMM, LANE_CPU, LANE_GPU
from ..interp.machine import Machine
from ..ir.function import Function
from ..ir.instructions import LaunchKernel
from ..ir.module import Module
from ..ir.types import Type
from ..memory.flatmem import FlatMemory
from ..runtime.allocmap import AvlTreeMap
from ..runtime.cgcm import AllocationInfo

#: Modelled CPU ops per dynamic memory access during inspection.
INSPECTION_OPS_PER_ACCESS = 1


class _RecordingMemory:
    """Wraps a FlatMemory, recording every typed access address."""

    def __init__(self, inner: FlatMemory):
        self._inner = inner
        self.reads: List[int] = []
        self.writes: List[int] = []

    def load_scalar(self, address: int, type_: Type):
        self.reads.append(address)
        return self._inner.load_scalar(address, type_)

    def store_scalar(self, address: int, type_: Type, value) -> None:
        self.writes.append(address)
        self._inner.store_scalar(address, type_, value)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class InspectorExecutorMachine(Machine):
    """Executes a parallelized module under the idealized IE model."""

    def __init__(self, module: Module,
                 cost_model: Optional[CostModel] = None,
                 record_events: bool = False):
        super().__init__(module, cost_model, record_events)
        self._units = AvlTreeMap()
        for name, address, size in self.layout.items():
            self._units.insert(address, AllocationInfo(
                address, size, is_global=True, name=name))
        self.heap_hooks.append(self._track_heap)
        self._recorder: Optional[_RecordingMemory] = None

    # -- allocation-unit tracking ------------------------------------------

    def _track_heap(self, machine: Machine, kind: str, address: int,
                    size: int) -> None:
        if kind == "malloc" and address:
            self._units.insert(address, AllocationInfo(address, size))
        elif kind == "free" and address:
            self._units.remove(address)

    def _unit_of(self, address: int) -> int:
        """Base address of the allocation unit containing ``address``
        (stack and unregistered memory fall back to identity)."""
        entry = self._units.find_le(address)
        if entry is not None and address < entry[1].end:
            return entry[1].base
        return address & ~0xFFF  # coarse bucket for stack words

    # -- the IE launch model ---------------------------------------------------

    @property
    def memory(self) -> FlatMemory:
        if self.mode == "ie" and self._recorder is not None:
            return self._recorder  # type: ignore[return-value]
        return super().memory

    def _launch(self, inst: LaunchKernel, frame) -> None:
        kernel = inst.kernel
        grid = int(self.eval(inst.grid, frame))
        args = [self.eval(a, frame) for a in inst.args]
        self.flush_cpu()
        for hook in self.launch_hooks:
            hook(self, kernel, grid, args)
        self.kernel_launch_count += 1
        self.clock.count("kernel_launches")

        recorder = _RecordingMemory(self.cpu_memory)
        self._recorder = recorder
        previous_mode = self.mode
        self.mode = "ie"
        self._gpu_ops = 0
        max_ops = 0
        try:
            for tid in range(grid):
                before = self._gpu_ops
                self.call(kernel, [tid] + args)
                thread_ops = self._gpu_ops - before
                if thread_ops > max_ops:
                    max_ops = thread_ops
            total_ops = self._gpu_ops
        finally:
            self.mode = previous_mode
            self._recorder = None
            self._gpu_ops = 0

        model = self.clock.model
        accesses = len(recorder.reads) + len(recorder.writes)
        read_units: Set[int] = {self._unit_of(a) for a in recorder.reads}
        written_units: Set[int] = {self._unit_of(a)
                                   for a in recorder.writes}
        self.clock.count("ie_accesses", accesses)
        self.clock.count("ie_read_units", len(read_units))
        self.clock.count("ie_written_units", len(written_units))

        # Inspector: sequential CPU walk of the address computations.
        inspect_seconds = model.cpu_time(
            accesses * INSPECTION_OPS_PER_ACCESS)
        self.clock.advance(LANE_CPU, inspect_seconds,
                           f"inspect {kernel.name}")
        # Cyclic transfers: one byte per accessed unit each way.
        in_units = read_units | written_units
        if in_units:
            self.clock.advance(LANE_COMM,
                               model.transfer_time(len(in_units)),
                               f"IE HtoD {len(in_units)}B")
            self.clock.count("htod_copies")
            self.clock.count("htod_bytes", len(in_units))
        if written_units:
            self.clock.advance(LANE_COMM,
                               model.transfer_time(len(written_units)),
                               f"IE DtoH {len(written_units)}B")
            self.clock.count("dtoh_copies")
            self.clock.count("dtoh_bytes", len(written_units))
        # Executor: normal GPU grid timing.
        duration = model.kernel_launch_latency_s
        if grid:
            duration += model.gpu_time(total_ops, max_ops)
        self.clock.advance(LANE_GPU, duration, f"{kernel.name}[{grid}]")
