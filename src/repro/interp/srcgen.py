"""Source-compiled execution engine ("Engine v2").

The closure engine (:mod:`repro.interp.codegen`) removed the
tree-walker's isinstance dispatch but still pays one Python *call* per
dynamic instruction plus register-list traffic around it.  This module
goes the rest of the way down the PyCUDA run-time code-generation
road: each IR function is translated **once per (mode, hook-set)**
into real Python source, ``compile()``-d, ``exec``-d, and cached on
the machine.

* **Registers are locals.**  Arguments unpack into ``a0..aN``,
  instruction results assign ``r0..rN``; every operand read is a
  ``LOAD_FAST``.  Constants, baked global addresses, and undef are
  inlined as literals.  Because locals live per activation, recursion
  and re-entrant kernels need no register-file save/restore at all.

* **Blocks are a ``while``-dispatched jump table.**  The emitted body
  is ``while True:`` over an ``if _b == k: ... elif`` chain; every
  terminator assigns the successor's dispatch index and ``continue``s.
  Dispatch positions are ordered by loop depth (innermost first) so
  hot back edges scan the shortest prefix of the chain.  Single-block
  functions skip the loop entirely.

* **Block-fused cost charging, split at flush points.**  Identical
  discipline to the closure engine: the static ``_OP_COSTS`` of each
  straight-line run are summed at compile time and emitted as one
  ``M._pending_cpu_ops += n`` (``M._gpu_ops`` in kernels), with runs
  split at ``call``/``launch`` -- the only instructions that can move
  pending ops onto the :class:`~repro.gpu.timing.SimClock` -- so every
  simulated timestamp is bit-identical to the tree-walker's.  Dynamic
  ``div``/``rem`` extras are emitted inline at their instruction.

* **Memory access compiles to typed-view indexing.**  The aligned
  in-bounds fast path is a single ``segment.vd[offset >> 3]`` typed
  index against the memoryview-backed segments of
  :mod:`repro.memory.flatmem`, guarded by one chained compare against
  the segment's live limit; everything else (segment miss, growth,
  unaligned, big-endian hosts) drops to a struct-codec slow helper
  that re-locates the segment.  The last-hit segment is cached in a
  *local* (``_cs``), not on the memory object, so the common case
  never leaves the frame.

* **Hook specialization at codegen time.**  Armed ``mem_hooks``
  select a hook-calling load/store emission (and the sanitizer then
  observes exactly the tree-walker's event stream); the unhooked
  variant emits no hook plumbing at all, so the hot path carries zero
  per-instruction hook overhead.  Variants are cached per hook-set
  identity (see ``Machine.compiled_for``).

The tree-walker remains the reference semantics; the equivalence
suites hold this engine to byte-identical observables and
clock-for-clock equal timestamps across the workload sweep and the
fuzz corpus.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..analysis.loops import find_loops
from ..errors import CgcmUnsupportedError, InterpError, MemoryFault
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction,
                               LaunchKernel, Load, Return, Select, Store,
                               Unreachable)
from ..ir.types import ArrayType, FloatType, IntType, StructType
from ..ir.values import Constant, GlobalVariable, UndefValue, Value
from ..memory.flatmem import VIEW_ACCESS, scalar_format, scalar_struct
from .codegen import _int_params, check_definitions
from .externals import GPU_SAFE, call_cost
from .machine import (_DIV_EXTRA, _OP_COSTS, Frame, MAX_CALL_DEPTH,
                      needs_frame, _round_f32, _trunc_div_float,
                      _trunc_div_int)

_MASK64 = 0xFFFFFFFFFFFFFFFF
_INF = float("inf")
_NINF = float("-inf")

_COMPARE_OPS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                "gt": ">", "ge": ">="}
_INT_BINOPS = {"add": "+", "sub": "-", "mul": "*", "and": "&",
               "or": "|", "xor": "^"}


def _make_slow_load(memory, codec, i1: bool):
    """Codec fallback for one load shape; returns (value, segment)."""
    size = codec.size
    unpack_from = codec.unpack_from
    if i1:
        def slow_load(address):
            segment, offset = memory.scalar_span(address, size)
            return unpack_from(segment.data, offset)[0] & 1, segment
    else:
        def slow_load(address):
            segment, offset = memory.scalar_span(address, size)
            return unpack_from(segment.data, offset)[0], segment
    return slow_load


#: Emission + ``compile()`` are the dominant fixed costs for short
#: runs, and the emitted *text* for one (function, mode, hooked)
#: triple is fully deterministic -- global addresses come from the
#: module's layout, name counters from emission order.  Machine-bound
#: state rides in the exec namespace, never in the code object, so
#: each cache entry stores ``(source, code object, builders)`` where
#: ``builders`` maps every baked name to a ``(machine, memory) ->
#: value`` recipe; later machines skip emission and compilation and
#: only rebuild the namespace.  Keyed weakly by function so corpora
#: of throwaway fuzz modules don't accumulate.
_CODE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _const(value):
    """Builder for a machine-independent baked object."""
    def build(machine, memory):
        return value
    return build


#: Externals whose handlers only compute -- no clock advance, no
#: machine state, no stdout, no RNG.  Call sites to these bake the
#: modelled call cost into the enclosing fused segment charge (no
#: flush can occur between the segment's charge and the call) and
#: dispatch positionally, skipping the thunk and the argument list.
#: Every entry must be GPU-safe: the set bypasses the kernel check.
_PURE_EXTERNALS = frozenset({
    "sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "tan",
    "floor", "ceil", "fmax", "fmin", "abs_i64", "exp2", "atan",
})
assert _PURE_EXTERNALS <= GPU_SAFE


def _pure_call(inst) -> bool:
    """Call sites that cannot flush pending ops onto the clock."""
    return (isinstance(inst, Call) and inst.callee.is_declaration
            and inst.callee.name in _PURE_EXTERNALS)


def _make_pure_external(machine, name: str):
    """Direct positional dispatch for one pure-math external.

    The handler is resolved once at instantiation (the built-in
    table is populated at machine creation, and nothing re-registers
    pure externals afterwards -- the runtime only wraps the
    memory-touching ones); the modelled cost is charged by the
    caller's fused segment, so the wrapper is just the handler call.
    """
    handler = machine.externals.get(name)
    if handler is None:
        def missing(*args):
            raise InterpError(f"call to undefined external @{name}")
        return missing

    def call(*args):
        return handler(machine, args)
    return call


def _make_external_thunk(machine, name: str, gpu: bool):
    """A direct-dispatch thunk for one external callee.

    Mirrors ``Machine.call`` -> ``Machine._call_external`` exactly --
    externals run in the caller's frame, consume no call depth, and
    charge their modelled cost before the handler runs -- but resolves
    the mode branch and the kernel-safety check at codegen time.  The
    handler itself is looked up per call: the runtime registers its
    entry points into ``machine.externals`` after machine creation.
    """
    externals = machine.externals
    cost = call_cost(name)
    if gpu and name not in GPU_SAFE:
        def thunk(*args):
            raise InterpError(f"kernel called host-only external @{name}")
        return thunk
    if gpu:
        def thunk(*args):
            handler = externals.get(name)
            if handler is None:
                raise InterpError(f"call to undefined external @{name}")
            machine._gpu_ops += cost
            return handler(machine, args)
    else:
        def thunk(*args):
            handler = externals.get(name)
            if handler is None:
                raise InterpError(f"call to undefined external @{name}")
            machine._pending_cpu_ops += cost
            return handler(machine, args)
    return thunk


def _make_call_thunk(machine, callee, gpu: bool):
    """A direct-dispatch thunk for one *defined* callee.

    Replicates the compiled-code path of :meth:`Machine.call` --
    depth check, stack-pointer save/restore, frame push/pop, the
    ``frame_exit_hooks`` sweep -- with the mode branch resolved at
    codegen time (a variant compiled for one mode only ever runs in
    that mode: :meth:`Machine.compiled_for` selects variants by the
    live mode, and ``launch_evaluated`` restores it on every exit
    path).  The callee's compiled body is re-resolved whenever the
    armed hook set changes, preserving the hook-set-identity cache
    contract; the arity check moved to codegen (call sites have
    static operand lists).
    """
    depth_limit = MAX_CALL_DEPTH
    frame_type = Frame
    stack = machine._frame_stack
    name = callee.name
    state = [None, None]  # [hook-set snapshot, compiled body]

    if not needs_frame(callee):
        # Frame-oblivious callee (no allocas, no declareAlloca): the
        # stack pointer never moves and nothing reads the frame, so
        # skip the frame object and the push/pop -- the frame-id
        # sequencing and the exit-hook sweep stay.
        def thunk(*args):
            hooks = machine.mem_hooks
            if state[0] != hooks:
                state[1] = machine.compiled_for(callee)
                state[0] = list(hooks)
            if machine._depth >= depth_limit:
                raise InterpError(f"call depth exceeded at @{name}")
            machine._depth += 1
            machine._frame_counter += 1
            fid = machine._frame_counter
            try:
                return state[1](args)
            finally:
                for hook in machine.frame_exit_hooks:
                    hook(machine, fid)
                machine._depth -= 1
    elif gpu:
        def thunk(*args):
            hooks = machine.mem_hooks
            if state[0] != hooks:
                state[1] = machine.compiled_for(callee)
                state[0] = list(hooks)
            if machine._depth >= depth_limit:
                raise InterpError(f"call depth exceeded at @{name}")
            machine._depth += 1
            sp_base = machine._gpu_sp
            machine._frame_counter += 1
            frame = frame_type(callee, machine._frame_counter, sp_base)
            stack.append(frame)
            try:
                return state[1](args)
            finally:
                machine._gpu_sp = sp_base
                stack.pop()
                for hook in machine.frame_exit_hooks:
                    hook(machine, frame.frame_id)
                machine._depth -= 1
    else:
        def thunk(*args):
            hooks = machine.mem_hooks
            if state[0] != hooks:
                state[1] = machine.compiled_for(callee)
                state[0] = list(hooks)
            if machine._depth >= depth_limit:
                raise InterpError(f"call depth exceeded at @{name}")
            machine._depth += 1
            sp_base = machine._cpu_sp
            machine._frame_counter += 1
            frame = frame_type(callee, machine._frame_counter, sp_base)
            stack.append(frame)
            try:
                return state[1](args)
            finally:
                machine._cpu_sp = sp_base
                stack.pop()
                for hook in machine.frame_exit_hooks:
                    hook(machine, frame.frame_id)
                machine._depth -= 1
    return thunk


def _make_slow_fill(memory, size: int):
    """Zero-fill fallback for one constant-size alloca site;
    returns the located segment."""
    zeros = bytes(size)

    def slow_fill(address):
        segment, offset = memory._span(address, size)
        segment.data[offset:offset + size] = zeros
        return segment
    return slow_fill


def _make_slow_store(memory, codec):
    """Codec fallback for one store shape (value pre-wrapped);
    returns the located segment."""
    size = codec.size
    pack_into = codec.pack_into

    def slow_store(address, value):
        segment, offset = memory.scalar_span(address, size)
        pack_into(segment.data, offset, value)
        return segment
    return slow_store


class _SourceCompiler:
    """Emits and compiles Python source for one (function, mode, hooks)."""

    def __init__(self, machine, fn: Function, mode: str, hooked: bool):
        if fn.is_declaration:
            raise InterpError(f"cannot compile declaration @{fn.name}")
        if mode not in ("cpu", "gpu"):
            raise InterpError(f"cannot compile for mode {mode!r}")
        self.machine = machine
        self.fn = fn
        self.mode = mode
        self.hooked = hooked
        self.memory = machine.device.memory if mode == "gpu" \
            else machine.cpu_memory
        self.charge_attr = "_gpu_ops" if mode == "gpu" \
            else "_pending_cpu_ops"
        self.names: Dict[Value, str] = {}
        self.lines: List[str] = []
        self.indent = 1
        #: exec()/default-argument namespace recipe: every non-literal
        #: object the emitted code touches, as keyword-only defaults
        #: (so access inside the function is a LOAD_FAST), each
        #: expressed as a ``(machine, memory) -> value`` builder so a
        #: cached code object can be re-instantiated on any machine.
        self.builders: Dict[str, object] = {
            "M": lambda m, mem: m,
            "_call": lambda m, mem: m.call,
            "_launch": lambda m, mem: m.launch_evaluated,
            "_fill": lambda m, mem: mem.fill,
            "_IE": _const(InterpError),
            "_CUE": _const(CgcmUnsupportedError),
            "_tdi": _const(_trunc_div_int),
            "_tdf": _const(_trunc_div_float),
            "_rf32": _const(_round_f32),
            "_INF": _const(_INF),
            "_NINF": _const(_NINF),
            "_NAN": _const(float("nan")),
        }
        self._objects: Dict[object, str] = {}
        self._helpers: Dict[tuple, str] = {}
        self._sites: List[str] = []
        #: Blocks inlined into their unique predecessor (block
        #: fusion); they get no dispatch index and their terminator's
        #: predecessor emits their body in place.
        self._inlined: set = set()
        if mode == "gpu":
            self.builders["_onds"] = lambda m, mem: \
                m.device.memory.segment("device-stack").contains
        if hooked:
            self.builders["_lds"] = lambda m, mem: mem.load_scalar
            self.builders["_sts"] = lambda m, mem: mem.store_scalar

    # -- emission plumbing --------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _bake(self, prefix: str, obj: object) -> str:
        """A stable default-argument name for one baked constant."""
        key = id(obj)
        name = self._objects.get(key)
        if name is None:
            name = f"{prefix}{len(self.builders)}"
            self._objects[key] = name
            self.builders[name] = _const(obj)
        return name

    def _slow_helper(self, kind: str, type_) -> str:
        """The deduped codec-fallback helper for one access shape."""
        codec = scalar_struct(type_)
        i1 = isinstance(type_, IntType) and type_.bits == 1
        key = (kind, codec.format, i1 if kind == "ld" else False)
        name = self._helpers.get(key)
        if name is None:
            name = f"_{kind}{len(self.builders)}"
            if kind == "ld":
                self.builders[name] = \
                    lambda m, mem, c=codec, f=i1: _make_slow_load(mem, c, f)
            else:
                self.builders[name] = \
                    lambda m, mem, c=codec: _make_slow_store(mem, c)
            self._helpers[key] = name
        return name

    # -- operand references -------------------------------------------------

    def _literal(self, value) -> str:
        if isinstance(value, float):
            if value != value:
                return "_NAN"
            if value == _INF:
                return "_INF"
            if value == _NINF:
                return "_NINF"
            text = repr(value)
        else:
            text = repr(int(value))
        return f"({text})" if text.startswith("-") else text

    def _ref(self, value: Value) -> str:
        name = self.names.get(value)
        if name is not None:
            return name
        if isinstance(value, Constant):
            return self._literal(value.value)
        if isinstance(value, GlobalVariable):
            if self.mode == "gpu":
                address = self.machine.device.module_get_global(value.name)
            else:
                address = self.machine.layout.address_of(value.name)
            return self._literal(address)
        if isinstance(value, UndefValue):
            return "0"
        raise InterpError(
            f"@{self.fn.name}: operand {value!r} is not a constant, "
            "global, or local definition")

    # -- memory access ------------------------------------------------------

    def _site(self) -> Tuple[str, int]:
        """A fresh per-access-site segment-cache local.

        Access sites are overwhelmingly monomorphic (a given load in a
        given function keeps hitting the same segment), but *adjacent*
        sites often alternate segments -- an inner loop interleaving
        stack-slot counters with heap array elements would thrash any
        single shared cache.  Per-site locals make each site's hit
        rate independent of its neighbours, and each site's last
        segment persists across activations in the baked ``_cc`` list
        (one slot per site, re-read in the prologue) so even
        straight-line bodies called once per kernel thread start warm.
        The in-bounds guard makes a stale hint a slow-path trip, never
        a wrong access.
        """
        k = len(self._sites)
        name = f"_cs{k}"
        self._sites.append(name)
        return name, k

    def _emit_load(self, inst: Load) -> None:
        dest = self.names[inst]
        pointer = self._ref(inst.pointer)
        type_ = inst.type
        if self.hooked:
            self._emit("for _h in M.mem_hooks:")
            self._emit(f"    _h(M, \"load\", {pointer}, {type_.size})")
            self._emit(f"{dest} = _lds({pointer}, "
                       f"{self._bake('_T', type_)})")
            return
        cs, k = self._site()
        view, hi, shift, amask = VIEW_ACCESS[scalar_format(type_)[-1]]
        i1 = isinstance(type_, IntType) and type_.bits == 1
        index = "_o" if shift == 0 else f"_o >> {shift}"
        guard = f"0 <= _o <= {cs}.{hi}" if amask == 0 else \
            f"0 <= _o <= {cs}.{hi} and not _o & {amask}"
        self._emit(f"_o = {pointer} - {cs}.base")
        self._emit(f"if {guard}:")
        self._emit(f"    {dest} = {cs}.{view}[{index}]" + (" & 1" if i1
                                                           else ""))
        self._emit("else:")
        self._emit(f"    {dest}, {cs} = "
                   f"{self._slow_helper('ld', type_)}({pointer})")
        self._emit(f"    _cc[{k}] = {cs}")

    def _emit_store(self, inst: Store) -> None:
        pointer = self._ref(inst.pointer)
        value = self._ref(inst.value)
        type_ = inst.value.type
        if self.hooked:
            self._emit("for _h in M.mem_hooks:")
            self._emit(f"    _h(M, \"store\", {pointer}, {type_.size})")
            if self.mode == "gpu" and type_.is_pointer:
                self._emit_pointer_guard(pointer)
            self._emit(f"_sts({pointer}, {self._bake('_T', type_)}, "
                       f"{value})")
            return
        if self.mode == "gpu" and type_.is_pointer:
            self._emit_pointer_guard(pointer)
        cs, k = self._site()
        view, hi, shift, amask = VIEW_ACCESS[scalar_format(type_)[-1]]
        index = "_o" if shift == 0 else f"_o >> {shift}"
        guard = f"0 <= _o <= {cs}.{hi}" if amask == 0 else \
            f"0 <= _o <= {cs}.{hi} and not _o & {amask}"
        if isinstance(type_, FloatType):
            stored = value
        else:
            mask, high, span = _int_params(type_)
            self._emit(f"_v = {value} & {self._literal(mask)}")
            if span:
                self._emit(f"if _v > {self._literal(high)}:")
                self._emit(f"    _v -= {self._literal(span)}")
            stored = "_v"
        self._emit(f"_o = {pointer} - {cs}.base")
        self._emit(f"if {guard}:")
        self._emit(f"    {cs}.{view}[{index}] = {stored}")
        self._emit("else:")
        self._emit(f"    {cs} = {self._slow_helper('st', type_)}"
                   f"({pointer}, {stored})")
        self._emit(f"    _cc[{k}] = {cs}")

    def _emit_pointer_guard(self, pointer: str) -> None:
        self._emit(f"if not _onds({pointer}):")
        self._emit(f"    raise _CUE(\"kernel @{self.fn.name} stores a "
                   "pointer into memory (CGCM restriction)\")")

    # -- arithmetic ---------------------------------------------------------

    def _emit_wrapped(self, dest: str, raw: str, type_) -> None:
        """Assign ``raw`` wrapped into the type's range to ``dest``."""
        mask, high, span = _int_params(type_)
        if span == 0:
            self._emit(f"{dest} = {raw} & {self._literal(mask)}")
            return
        self._emit(f"_v = {raw} & {self._literal(mask)}")
        self._emit(f"{dest} = _v - {self._literal(span)} "
                   f"if _v > {self._literal(high)} else _v")

    def _emit_binop(self, inst: BinaryOp) -> None:
        dest = self.names[inst]
        a, b = self._ref(inst.lhs), self._ref(inst.rhs)
        op = inst.op
        if isinstance(inst.type, FloatType):
            if op in ("add", "sub", "mul"):
                self._emit(f"{dest} = {a} {_INT_BINOPS[op]} {b}")
            elif op == "div":
                self._emit_charge_div()
                self._emit(f"_f = {b}")
                self._emit("if _f == 0.0:")
                self._emit(f"    _g = {a}")
                self._emit(f"    {dest} = _INF if _g > 0 else "
                           "(_NINF if _g < 0 else _NAN)")
                self._emit("else:")
                self._emit(f"    {dest} = {a} / _f")
            elif op == "rem":
                self._emit_charge_div()
                self._emit(f"_f = {b}")
                self._emit("if _f == 0.0:")
                self._emit(f"    {dest} = _NAN")
                self._emit("else:")
                self._emit(f"    _g = {a}")
                self._emit(f"    {dest} = float(_g - _f * _tdf(_g, _f))")
            else:
                raise InterpError(f"float binop {op}")
            return
        if op in _INT_BINOPS:
            raw = f"({a} {_INT_BINOPS[op]} {b})"
        elif op == "div":
            self._emit_charge_div()
            raw = f"_tdi({a}, {b})"
        elif op == "rem":
            self._emit_charge_div()
            raw = f"({a} - {b} * _tdi({a}, {b}))"
        elif op == "shl":
            raw = f"({a} << ({b} & 63))"
        elif op == "shr":
            raw = f"({a} >> ({b} & 63))"
        else:
            raise InterpError(f"int binop {op}")
        self._emit_wrapped(dest, raw, inst.type)

    def _emit_charge_div(self) -> None:
        self._emit(f"M.{self.charge_attr} += {_DIV_EXTRA}")

    def _emit_cast(self, inst: Cast) -> None:
        dest = self.names[inst]
        source = self._ref(inst.value)
        kind = inst.kind
        to_type = inst.type
        if kind in ("bitcast", "inttoptr"):
            if to_type.is_pointer:
                self._emit(f"{dest} = {source} & {_MASK64}")
            else:
                self._emit(f"{dest} = {source}")
        elif kind in ("ptrtoint", "trunc", "sext"):
            self._emit_wrapped(dest, source, to_type)
        elif kind == "zext":
            src = inst.value.type
            assert isinstance(src, IntType)
            src_mask = (1 << src.bits) - 1
            self._emit_wrapped(dest, f"({source} & {src_mask})", to_type)
        elif kind in ("fptrunc", "fpext"):
            if to_type == FloatType(32):
                self._emit(f"{dest} = _rf32({source})")
            else:
                self._emit(f"{dest} = float({source})")
        elif kind == "sitofp":
            self._emit(f"{dest} = float({source})")
        elif kind == "fptosi":
            mask, high, span = _int_params(to_type)
            self._emit(f"_f = {source}")
            self._emit("if _f != _f or _f == _INF or _f == _NINF:")
            self._emit(f"    {dest} = 0")
            self._emit("else:")
            self._emit(f"    _v = int(_f) & {self._literal(mask)}")
            if span:
                self._emit(f"    {dest} = _v - {self._literal(span)} "
                           f"if _v > {self._literal(high)} else _v")
            else:
                self._emit(f"    {dest} = _v")
        else:
            raise InterpError(f"cast kind {kind}")

    def _emit_gep(self, inst: GetElementPtr) -> None:
        dest = self.names[inst]
        pointee = inst.pointer.type.pointee
        indices = inst.indices
        offset = 0
        terms: List[str] = [self._ref(inst.pointer)]

        def accumulate(index: Value, scale: int) -> None:
            nonlocal offset
            if isinstance(index, Constant):
                offset += int(index.value) * scale
            elif scale == 1:
                terms.append(self._ref(index))
            else:
                terms.append(f"{self._ref(index)} * {scale}")

        accumulate(indices[0], pointee.size)
        current = pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
                accumulate(index, current.size)
            elif isinstance(current, StructType):
                if not isinstance(index, Constant):
                    raise InterpError(
                        f"@{self.fn.name}: struct gep index must be "
                        "constant")
                field = int(index.value)
                offset += current.field_offset(field)
                current = current.fields[field][1]
            else:
                raise InterpError(f"gep into non-aggregate {current}")
        if offset:
            terms.append(self._literal(offset))
        self._emit(f"{dest} = " + " + ".join(terms))

    def _emit_alloca(self, inst: Alloca) -> None:
        dest = self.names[inst]
        count = self._ref(inst.count)
        elem_size = inst.allocated_type.size
        align = max(inst.allocated_type.align, 8)
        sp = "_gpu_sp" if self.mode == "gpu" else "_cpu_sp"
        if align & (align - 1) == 0:
            aligned = f"(M.{sp} + {align - 1}) & {-align}"
        else:
            aligned = f"(M.{sp} + {align - 1}) // {align} * {align}"
        if isinstance(inst.count, Constant):
            size = elem_size * int(inst.count.value)
            if size < 0:
                raise InterpError("alloca with negative count")
            self._emit(f"{dest} = {aligned}")
            self._emit(f"M.{sp} = {dest} + {size}")
            if size:
                # Zero the frame slot inline: a slice-assign of baked
                # zeros while the bytes are already allocated, the
                # growth/fault path otherwise.  ``hi1 + 1`` is the
                # allocated length (and the -1 disarmed value sends
                # every fill down the slow path).
                cs, k = self._site()
                key = ("fl", size)
                helper = self._helpers.get(key)
                if helper is None:
                    helper = f"_fl{len(self.builders)}"
                    self.builders[helper] = \
                        lambda m, mem, s=size: _make_slow_fill(mem, s)
                    self._helpers[key] = helper
                zeros = self._bake("_Z", bytes(size))
                self._emit(f"_o = {dest} - {cs}.base")
                self._emit(f"if 0 <= _o and _o + {size} <= {cs}.hi1 + 1:")
                self._emit(f"    {cs}.data[_o:_o + {size}] = {zeros}")
                self._emit("else:")
                self._emit(f"    {cs} = {helper}({dest})")
                self._emit(f"    _cc[{k}] = {cs}")
            return
        self._emit(f"_n = {count}")
        self._emit("if _n < 0:")
        self._emit("    raise _IE(\"alloca with negative count\")")
        self._emit(f"_sz = _n * {elem_size}")
        self._emit(f"{dest} = {aligned}")
        self._emit(f"M.{sp} = {dest} + _sz")
        self._emit("if _sz:")
        self._emit(f"    _fill({dest}, _sz, 0)")

    # -- calls, launches, terminators ---------------------------------------

    def _emit_call(self, inst: Call) -> None:
        arg_list = ", ".join(self._ref(a) for a in inst.args)
        if _pure_call(inst):
            # Pure-math external: direct positional dispatch; the
            # modelled cost rode in with the fused segment charge.
            key = ("p", inst.callee.name)
            callee = self._helpers.get(key)
            if callee is None:
                callee = f"_p{len(self.builders)}"
                self.builders[callee] = \
                    lambda m, mem, \
                    n=inst.callee.name: _make_pure_external(m, n)
                self._helpers[key] = callee
            call = f"{callee}({arg_list})"
        elif inst.callee.is_declaration:
            # Externals dispatch through a baked per-name thunk: no
            # frame, no call depth, mode resolved at codegen time.
            key = ("x", inst.callee.name)
            callee = self._helpers.get(key)
            if callee is None:
                callee = f"_x{len(self.builders)}"
                self.builders[callee] = \
                    lambda m, mem, n=inst.callee.name, \
                    g=(self.mode == "gpu"): _make_external_thunk(m, n, g)
                self._helpers[key] = callee
            call = f"{callee}({arg_list})"
        else:
            if len(inst.args) != len(inst.callee.args):
                # Static arity mismatch: defer to runtime like the
                # tree-walker (the block's charges still land first).
                message = (f"@{inst.callee.name}: expected "
                           f"{len(inst.callee.args)} args, got "
                           f"{len(inst.args)}")
                self._emit(f"raise _IE({message!r})")
                return
            key = ("c", inst.callee.name)
            callee = self._helpers.get(key)
            if callee is None:
                callee = f"_c{len(self.builders)}"
                self.builders[callee] = \
                    lambda m, mem, f=inst.callee, \
                    g=(self.mode == "gpu"): _make_call_thunk(m, f, g)
                self._helpers[key] = callee
            call = f"{callee}({arg_list})"
        if inst.produces_value:
            self._emit(f"{self.names[inst]} = {call}")
        else:
            self._emit(call)

    def _emit_launch(self, inst: LaunchKernel) -> None:
        kernel = self._bake("_K", inst.kernel)
        arg_list = ", ".join(self._ref(a) for a in inst.args)
        self._emit(f"_launch({kernel}, int({self._ref(inst.grid)}), "
                   f"[{arg_list}])")

    def _emit_terminator(self, inst: Instruction,
                         index: Dict[object, int]) -> None:
        if isinstance(inst, Branch):
            if inst.target in self._inlined:
                self._emit_block_body(inst.target, index)
            else:
                self._emit(f"_b = {index[inst.target]}")
                self._emit("continue")
        elif isinstance(inst, CondBranch):
            # Fused arms: a single-predecessor successor's body is
            # emitted in place of the dispatch jump.  A diamond with
            # both arms fusable nests the taken arm under the guard;
            # one fusable arm continues flat after an early-out jump.
            true_b, false_b = inst.if_true, inst.if_false
            condition = self._ref(inst.condition)
            true_in = true_b in self._inlined and true_b is not false_b
            false_in = false_b in self._inlined
            if true_in and false_in:
                self._emit(f"if {condition}:")
                self.indent += 1
                self._emit_block_body(true_b, index)
                self.indent -= 1
                self._emit_block_body(false_b, index)
            elif false_in:
                self._emit(f"if {condition}:")
                self.indent += 1
                self._emit(f"_b = {index[true_b]}")
                self._emit("continue")
                self.indent -= 1
                self._emit_block_body(false_b, index)
            elif true_in:
                self._emit(f"if not {condition}:")
                self.indent += 1
                self._emit(f"_b = {index[false_b]}")
                self._emit("continue")
                self.indent -= 1
                self._emit_block_body(true_b, index)
            else:
                self._emit(f"_b = {index[true_b]} "
                           f"if {condition} "
                           f"else {index[false_b]}")
                self._emit("continue")
        elif isinstance(inst, Return):
            if inst.value is None:
                self._emit("return None")
            else:
                self._emit(f"return {self._ref(inst.value)}")
        elif isinstance(inst, Unreachable):
            self._emit(f"raise _IE(\"reached unreachable in "
                       f"@{self.fn.name}\")")
        else:
            raise InterpError(f"cannot compile terminator {inst.opcode}")

    def _emit_inst(self, inst: Instruction,
                   index: Dict[object, int]) -> None:
        if isinstance(inst, Load):
            self._emit_load(inst)
        elif isinstance(inst, Store):
            self._emit_store(inst)
        elif isinstance(inst, GetElementPtr):
            self._emit_gep(inst)
        elif isinstance(inst, BinaryOp):
            self._emit_binop(inst)
        elif isinstance(inst, Compare):
            self._emit(f"{self.names[inst]} = "
                       f"+({self._ref(inst.lhs)} "
                       f"{_COMPARE_OPS[inst.pred]} {self._ref(inst.rhs)})")
        elif isinstance(inst, Cast):
            self._emit_cast(inst)
        elif isinstance(inst, Select):
            self._emit(f"{self.names[inst]} = "
                       f"{self._ref(inst.if_true)} "
                       f"if {self._ref(inst.condition)} "
                       f"else {self._ref(inst.if_false)}")
        elif isinstance(inst, Alloca):
            self._emit_alloca(inst)
        elif isinstance(inst, Call):
            self._emit_call(inst)
        elif isinstance(inst, LaunchKernel):
            self._emit_launch(inst)
        elif inst.is_terminator:
            self._emit_terminator(inst, index)
        else:
            raise InterpError(f"cannot compile {inst.opcode}")

    # -- block assembly -----------------------------------------------------

    def _emit_block_body(self, block, index: Dict[object, int]) -> None:
        """One block: fused-charge segments split at call/launch."""
        pending_cost = 0
        pending: List[Instruction] = []

        def flush() -> None:
            if not pending:
                return
            self._emit(f"M.{self.charge_attr} += {pending_cost}")
            self._emit(f"M.executed_instructions += {len(pending)}")
            for inst in pending:
                self._emit_inst(inst, index)

        for inst in block.instructions:
            pending_cost += _OP_COSTS.get(inst.opcode, 1)
            pending.append(inst)
            # Calls and launches are the only instructions that can
            # move pending op counts onto the clock; close the fused
            # segment at each one so the integers visible at every
            # flush match the tree-walker exactly.  Pure-math
            # externals never flush, so their modelled call cost
            # folds into the running segment instead of closing it.
            if _pure_call(inst):
                pending_cost += call_cost(inst.callee.name)
            elif isinstance(inst, (Call, LaunchKernel)):
                flush()
                pending_cost = 0
                pending = []
        flush()
        if not block.is_terminated:
            self._emit(f"raise _IE(\"block {block.name} in "
                       f"@{self.fn.name} fell through without a "
                       "terminator\")")

    def _edge_counts(self) -> Dict[object, int]:
        """Incoming edge count per block (both arms of a two-way
        branch to one target count twice)."""
        preds: Dict[object, int] = {}
        for block in self.fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, Branch):
                    preds[inst.target] = preds.get(inst.target, 0) + 1
                elif isinstance(inst, CondBranch):
                    preds[inst.if_true] = \
                        preds.get(inst.if_true, 0) + 1
                    preds[inst.if_false] = \
                        preds.get(inst.if_false, 0) + 1
        return preds

    def _plan_fusion(self, preds: Dict[object, int], nest: bool) -> set:
        """Pick the blocks to inline into their unique predecessor.

        A block is fusable when exactly one edge reaches it (so the
        block emitting that edge can own its body), it is not the
        entry (dispatch must be able to start there), and it is not
        its own predecessor.  Loop headers always keep a dispatch
        index -- the back edge is a second predecessor -- so every
        loop still turns around through the ``while`` dispatch.
        With ``nest`` a diamond inlines both arms (the taken arm
        indented under the guard); without it only the flat
        continuation arm fuses, bounding emitted indentation.
        """
        entry = self.fn.entry_block
        inlined: set = set()

        def fusable(target, source) -> bool:
            return (preds.get(target, 0) == 1 and target is not entry
                    and target is not source)

        for block in self.fn.blocks:
            instructions = block.instructions
            term = instructions[-1] if instructions else None
            if isinstance(term, Branch):
                if fusable(term.target, block):
                    inlined.add(term.target)
            elif isinstance(term, CondBranch):
                true_b, false_b = term.if_true, term.if_false
                true_ok = true_b is not false_b \
                    and fusable(true_b, block)
                false_ok = false_b is not true_b \
                    and fusable(false_b, block)
                if false_ok:
                    inlined.add(false_b)
                    if nest and true_ok:
                        inlined.add(true_b)
                elif true_ok:
                    inlined.add(true_b)
        return inlined

    def _max_nesting(self, inlined: set) -> int:
        """Worst-case indent growth of the planned inline chains.

        Reachable inline chains are acyclic: re-entering a chain
        block would give it a second incoming edge, which disqualifies
        fusion.  Only a diamond with both arms inlined indents."""
        best = 0

        def walk(block, depth: int) -> None:
            nonlocal best
            if depth > best:
                best = depth
            instructions = block.instructions
            term = instructions[-1] if instructions else None
            if isinstance(term, Branch):
                if term.target in inlined:
                    walk(term.target, depth)
            elif isinstance(term, CondBranch):
                true_b, false_b = term.if_true, term.if_false
                true_in = true_b in inlined and true_b is not false_b
                false_in = false_b in inlined
                if true_in:
                    walk(true_b, depth + 1 if false_in else depth)
                if false_in:
                    walk(false_b, depth)

        for block in self.fn.blocks:
            if block not in inlined:
                walk(block, 0)
        return best

    def _dispatch_order(self) -> List:
        """Blocks ordered innermost-loop-first for the elif chain."""
        blocks = list(self.fn.blocks)
        depth = {block: 0 for block in blocks}
        try:
            for loop in find_loops(self.fn):
                for block in loop.blocks:
                    if block in depth:
                        depth[block] = max(depth[block], loop.depth)
        except Exception:
            pass  # dispatch order is a heuristic, never a correctness issue
        position = {block: i for i, block in enumerate(blocks)}
        return sorted(blocks, key=lambda b: (-depth[b], position[b]))

    def compile(self):
        fn = self.fn
        check_definitions(fn)
        for i, arg in enumerate(fn.args):
            self.names[arg] = f"a{i}"
        serial = 0
        for inst in fn.instructions():
            if inst.produces_value:
                self.names[inst] = f"r{serial}"
                serial += 1
        preds = self._edge_counts()
        self._inlined = self._plan_fusion(preds, nest=True)
        if self._max_nesting(self._inlined) > 40:
            # Degenerate conditional ladders would nest past the
            # parser's indentation comfort zone; fall back to flat
            # fusion only (continuation arms, no indent growth).
            self._inlined = self._plan_fusion(preds, nest=False)
        dispatch = [block for block in self._dispatch_order()
                    if block not in self._inlined]
        index = {block: i for i, block in enumerate(dispatch)}
        if len(dispatch) == 1 and not preds.get(fn.entry_block, 0):
            # Every successor chain fused into the entry and nothing
            # jumps back to it: the function is straight-line (plus
            # structured conditionals) -- no dispatch loop at all.
            self._emit_block_body(fn.entry_block, index)
        else:
            self._emit(f"_b = {index[fn.entry_block]}")
            self._emit("while True:")
            self.indent += 1
            for i, block in enumerate(dispatch):
                self._emit(("if" if i == 0 else "elif") + f" _b == {i}:")
                self.indent += 1
                self._emit_block_body(block, index)
                self.indent -= 1
            self.indent -= 1
        body = self.lines
        prologue: List[str] = []
        if len(fn.args) == 1:
            prologue.append("    a0, = args")
        elif fn.args:
            prologue.append("    " + ", ".join(
                self.names[a] for a in fn.args) + " = args")
        if self._sites:
            sites = len(self._sites)
            # Fresh per machine: holds that machine's segment objects.
            self.builders["_cc"] = \
                lambda m, mem, n=sites: [mem.segments[0]] * n
            unpack = ", ".join(self._sites)
            if len(self._sites) == 1:
                unpack += ","
            prologue.append(f"    {unpack} = _cc")
        params = ", ".join(f"{name}={name}" for name in self.builders)
        header = f"def __srcgen(args, *, {params}):"
        source = "\n".join([header] + prologue + body) + "\n"
        tag = f"<srcgen @{fn.name}:{self.mode}" \
            + (":hooked>" if self.hooked else ">")
        code_obj = compile(source, tag, "exec")
        return source, code_obj, self.builders


def _instantiate(machine, fn: Function, mode: str, hooked: bool,
                 entry) -> "object":
    source, code_obj, builders = entry
    memory = machine.device.memory if mode == "gpu" \
        else machine.cpu_memory
    namespace = {name: build(machine, memory)
                 for name, build in builders.items()}
    exec(code_obj, namespace)  # noqa: S102
    code = namespace["__srcgen"]
    code.__name__ = code.__qualname__ = f"srcgen_{fn.name}_{mode}"
    code.source = source
    code.function = fn
    code.mode = mode
    code.hooked = hooked
    return code


def compile_function_source(machine, fn: Function, mode: str,
                            hooked: bool):
    """Translate ``fn`` into compiled Python source for one machine
    and mode; the returned callable is invoked as ``code(args)``.

    Emission and ``compile()`` happen once per (function, mode,
    hooked) process-wide; each machine only re-instantiates the baked
    namespace from the cached builder recipe.
    """
    if fn.is_declaration:
        raise InterpError(f"cannot compile declaration @{fn.name}")
    if mode not in ("cpu", "gpu"):
        raise InterpError(f"cannot compile for mode {mode!r}")
    per_fn = _CODE_CACHE.setdefault(fn, {})
    entry = per_fn.get((mode, hooked))
    if entry is None:
        entry = _SourceCompiler(machine, fn, mode, hooked).compile()
        per_fn[(mode, hooked)] = entry
    return _instantiate(machine, fn, mode, hooked, entry)
