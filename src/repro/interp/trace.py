"""Render simulated execution traces as ASCII schedules.

Reproduces the *shape* of the paper's Figure 2: three lanes (CPU,
communication, GPU) with time flowing left to right, so cyclic
ping-pong patterns and acyclic one-way patterns are visually distinct.

:func:`chrome_trace_json` exports the same events in the Chrome
trace-event format, one row per lane/stream, for interactive zooming
in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from ..gpu.timing import LANE_COMM, LANE_CPU, LANE_GPU, TraceEvent

_LANE_ORDER = (LANE_CPU, LANE_COMM, LANE_GPU)
_LANE_LABELS = {LANE_CPU: "CPU ", LANE_COMM: "Comm", LANE_GPU: "GPU "}
_LANE_GLYPHS = {LANE_CPU: "#", LANE_COMM: "~", LANE_GPU: "="}


def render_schedule(events: Sequence[TraceEvent], width: int = 100) -> str:
    """Draw events as three timeline lanes of ``width`` columns."""
    if not events:
        return "(empty trace)"
    end = max(e.end for e in events)
    if end <= 0:
        return "(zero-length trace)"
    scale = width / end
    rows = {lane: [" "] * width for lane in _LANE_ORDER}
    for event in events:
        row = rows.get(event.lane)
        if row is None:
            continue
        start = int(event.start * scale)
        stop = max(start + 1, int(event.end * scale))
        glyph = _LANE_GLYPHS[event.lane]
        for column in range(start, min(stop, width)):
            row[column] = glyph
    lines = [f"{_LANE_LABELS[lane]} |{''.join(rows[lane])}|"
             for lane in _LANE_ORDER]
    lines.append(f"       0.0s{' ' * (width - 18)}{end * 1e3:10.3f}ms")
    return "\n".join(lines)


def summarize_events(events: Iterable[TraceEvent]) -> List[str]:
    """One line per event: ``lane start-end label`` (for tests/examples)."""
    return [f"{e.lane:4s} {e.start * 1e6:10.2f}us "
            f"+{e.duration * 1e6:8.2f}us  {e.label}"
            for e in events]


def chrome_trace_json(events: Sequence[TraceEvent],
                      name: str = "repro") -> str:
    """Events as a Chrome trace-event JSON document.

    Each distinct :attr:`TraceEvent.track` (the owning stream for
    asynchronous spans, the lane for synchronous ones) becomes one
    timeline row: a ``thread_name`` metadata record plus complete
    ``"X"`` duration events with microsecond timestamps.  Rows are
    ordered CPU, comm, GPU first, then streams by first appearance.
    """
    track_tids: Dict[str, int] = {}
    for lane in (LANE_CPU, LANE_COMM, LANE_GPU):
        track_tids[lane] = len(track_tids)
    for event in events:
        if event.track not in track_tids:
            track_tids[event.track] = len(track_tids)
    records: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": name}}]
    for track, tid in track_tids.items():
        records.append({"name": "thread_name", "ph": "M", "pid": 0,
                        "tid": tid, "args": {"name": track}})
        records.append({"name": "thread_sort_index", "ph": "M", "pid": 0,
                        "tid": tid, "args": {"sort_index": tid}})
    for event in events:
        records.append({
            "name": event.label or event.lane,
            "cat": event.lane,
            "ph": "X",
            "ts": event.start * 1e6,
            "dur": event.duration * 1e6,
            "pid": 0,
            "tid": track_tids[event.track],
        })
    return json.dumps({"traceEvents": records,
                       "displayTimeUnit": "ms"}, indent=1)


def count_direction_switches(events: Sequence[TraceEvent]) -> int:
    """How many times the timeline alternates between comm and GPU lanes.

    A *cyclic* communication pattern (paper Figure 2, left) alternates
    CPU->GPU copies, kernel, GPU->CPU copies every iteration, giving a
    high switch count; an *acyclic* pattern switches O(1) times.
    """
    switches = 0
    previous = None
    for event in events:
        if event.lane == LANE_CPU:
            continue
        if previous is not None and event.lane != previous:
            switches += 1
        previous = event.lane
    return switches
