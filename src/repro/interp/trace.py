"""Render simulated execution traces as ASCII schedules.

Reproduces the *shape* of the paper's Figure 2: three lanes (CPU,
communication, GPU) with time flowing left to right, so cyclic
ping-pong patterns and acyclic one-way patterns are visually distinct.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..gpu.timing import LANE_COMM, LANE_CPU, LANE_GPU, TraceEvent

_LANE_ORDER = (LANE_CPU, LANE_COMM, LANE_GPU)
_LANE_LABELS = {LANE_CPU: "CPU ", LANE_COMM: "Comm", LANE_GPU: "GPU "}
_LANE_GLYPHS = {LANE_CPU: "#", LANE_COMM: "~", LANE_GPU: "="}


def render_schedule(events: Sequence[TraceEvent], width: int = 100) -> str:
    """Draw events as three timeline lanes of ``width`` columns."""
    if not events:
        return "(empty trace)"
    end = max(e.end for e in events)
    if end <= 0:
        return "(zero-length trace)"
    scale = width / end
    rows = {lane: [" "] * width for lane in _LANE_ORDER}
    for event in events:
        row = rows.get(event.lane)
        if row is None:
            continue
        start = int(event.start * scale)
        stop = max(start + 1, int(event.end * scale))
        glyph = _LANE_GLYPHS[event.lane]
        for column in range(start, min(stop, width)):
            row[column] = glyph
    lines = [f"{_LANE_LABELS[lane]} |{''.join(rows[lane])}|"
             for lane in _LANE_ORDER]
    lines.append(f"       0.0s{' ' * (width - 18)}{end * 1e3:10.3f}ms")
    return "\n".join(lines)


def summarize_events(events: Iterable[TraceEvent]) -> List[str]:
    """One line per event: ``lane start-end label`` (for tests/examples)."""
    return [f"{e.lane:4s} {e.start * 1e6:10.2f}us "
            f"+{e.duration * 1e6:8.2f}us  {e.label}"
            for e in events]


def count_direction_switches(events: Sequence[TraceEvent]) -> int:
    """How many times the timeline alternates between comm and GPU lanes.

    A *cyclic* communication pattern (paper Figure 2, left) alternates
    CPU->GPU copies, kernel, GPU->CPU copies every iteration, giving a
    high switch count; an *acyclic* pattern switches O(1) times.
    """
    switches = 0
    previous = None
    for event in events:
        if event.lane == LANE_CPU:
            continue
        if previous is not None and event.lane != previous:
            switches += 1
        previous = event.lane
    return switches
