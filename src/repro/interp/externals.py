"""External functions provided to interpreted programs.

These model libc/libm plus a few printing and RNG helpers.  Each
external has a fixed IR signature (declared on demand by the frontend
or by tests) and a Python handler ``(machine, args) -> value``.

The CGCM run-time library functions (``map``, ``unmap``, ...) are NOT
here; :mod:`repro.runtime.cgcm` registers them on a machine when the
run-time is attached.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..errors import InterpError
from ..ir.types import (FunctionType, Type, F64, I32, I64, RAW_PTR, VOID)

#: handler(machine, args) -> python value (or None for void).
Handler = Callable[["object", List[object]], object]

#: Modelled CPU op counts charged per external call.
_CALL_COSTS = {
    "sqrt": 20, "fabs": 4, "exp": 40, "log": 40, "pow": 60, "sin": 40,
    "cos": 40, "tan": 50, "floor": 6, "ceil": 6, "fmax": 4, "fmin": 4,
    "exp2": 40, "atan": 50,
    "malloc": 100, "calloc": 120, "realloc": 150, "free": 80,
    "memset": 10, "memcpy": 10,
    "print_i64": 200, "print_f64": 200, "print_str": 200,
    "srand": 5, "rand_f64": 12, "rand_i64": 12,
    "abs_i64": 4, "exit": 10,
}

#: Externals that kernels may call (pure math only).
GPU_SAFE = frozenset({
    "sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "tan", "floor",
    "ceil", "fmax", "fmin", "abs_i64", "exp2", "atan",
})


def external_signatures() -> Dict[str, FunctionType]:
    """IR signatures of every built-in external."""
    f64_1 = FunctionType(F64, [F64])
    f64_2 = FunctionType(F64, [F64, F64])
    return {
        "sqrt": f64_1, "fabs": f64_1, "exp": f64_1, "log": f64_1,
        "sin": f64_1, "cos": f64_1, "tan": f64_1, "floor": f64_1,
        "ceil": f64_1, "exp2": f64_1, "atan": f64_1,
        "pow": f64_2, "fmax": f64_2, "fmin": f64_2,
        "abs_i64": FunctionType(I64, [I64]),
        "malloc": FunctionType(RAW_PTR, [I64]),
        "calloc": FunctionType(RAW_PTR, [I64, I64]),
        "realloc": FunctionType(RAW_PTR, [RAW_PTR, I64]),
        "free": FunctionType(VOID, [RAW_PTR]),
        "memset": FunctionType(RAW_PTR, [RAW_PTR, I64, I64]),
        "memcpy": FunctionType(RAW_PTR, [RAW_PTR, RAW_PTR, I64]),
        "print_i64": FunctionType(VOID, [I64]),
        "print_f64": FunctionType(VOID, [F64]),
        "print_str": FunctionType(VOID, [RAW_PTR]),
        "srand": FunctionType(VOID, [I64]),
        "rand_f64": FunctionType(F64, []),
        "rand_i64": FunctionType(I64, [I64]),
        "exit": FunctionType(VOID, [I64]),
    }


class ExitProgram(Exception):
    """Raised by the ``exit`` external to unwind the interpreter."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


def _math1(fn: Callable[[float], float]) -> Handler:
    def handler(machine, args):
        try:
            return float(fn(float(args[0])))
        except ValueError as exc:
            raise InterpError(f"math domain error: {exc}") from exc
    return handler


def _malloc(machine, args):
    address = machine.heap.malloc(int(args[0]))
    machine.notify_heap("malloc", address, int(args[0]))
    return address


def _calloc(machine, args):
    count, size = int(args[0]), int(args[1])
    address = machine.heap.calloc(count, size)
    machine.notify_heap("malloc", address, count * size)
    return address


def _realloc(machine, args):
    old, new_size = int(args[0]), int(args[1])
    address = machine.heap.realloc(old, new_size)
    if old:
        machine.notify_heap("free", old, 0)
    if address:
        machine.notify_heap("malloc", address, new_size)
    return address


def _free(machine, args):
    address = int(args[0])
    machine.notify_heap("free", address, 0)
    machine.heap.free(address)


def _memset(machine, args):
    dst, byte, size = int(args[0]), int(args[1]), int(args[2])
    machine.memory.fill(dst, size, byte & 0xFF)
    machine.charge_ops(size // 8)
    return dst


def _memcpy(machine, args):
    dst, src, size = int(args[0]), int(args[1]), int(args[2])
    machine.memory.write(dst, machine.memory.read(src, size))
    machine.charge_ops(size // 8)
    return dst


def _print_i64(machine, args):
    machine.stdout.append(str(int(args[0])))


def _print_f64(machine, args):
    machine.stdout.append(f"{float(args[0]):.6g}")


def _print_str(machine, args):
    data = machine.memory.read_c_string(int(args[0]))
    machine.stdout.append(data.decode("utf-8", "replace"))


def _srand(machine, args):
    machine.rng_state = int(args[0]) & 0xFFFFFFFFFFFFFFFF or 1


def _next_rng(machine) -> int:
    # xorshift64*: deterministic, good enough for synthetic inputs.
    x = machine.rng_state
    x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
    x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
    x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
    machine.rng_state = x & 0xFFFFFFFFFFFFFFFF
    return (x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF


def _rand_f64(machine, args):
    return (_next_rng(machine) >> 11) / float(1 << 53)


def _rand_i64(machine, args):
    bound = int(args[0])
    if bound <= 0:
        raise InterpError(f"rand_i64 bound must be positive, got {bound}")
    return _next_rng(machine) % bound


def _exit(machine, args):
    raise ExitProgram(int(args[0]))


def default_externals() -> Dict[str, Handler]:
    """Handler table for the built-in externals."""
    handlers: Dict[str, Handler] = {
        "sqrt": _math1(math.sqrt),
        "fabs": _math1(abs),
        "exp": _math1(math.exp),
        "log": _math1(math.log),
        "sin": _math1(math.sin),
        "cos": _math1(math.cos),
        "tan": _math1(math.tan),
        "floor": _math1(math.floor),
        "ceil": _math1(math.ceil),
        "exp2": _math1(lambda x: 2.0 ** x),
        "atan": _math1(math.atan),
        "pow": lambda m, a: float(math.pow(a[0], a[1])),
        "fmax": lambda m, a: float(max(a[0], a[1])),
        "fmin": lambda m, a: float(min(a[0], a[1])),
        "abs_i64": lambda m, a: abs(int(a[0])),
        "malloc": _malloc,
        "calloc": _calloc,
        "realloc": _realloc,
        "free": _free,
        "memset": _memset,
        "memcpy": _memcpy,
        "print_i64": _print_i64,
        "print_f64": _print_f64,
        "print_str": _print_str,
        "srand": _srand,
        "rand_f64": _rand_f64,
        "rand_i64": _rand_i64,
        "exit": _exit,
    }
    return handlers


def call_cost(name: str) -> int:
    """Modelled CPU ops charged for calling external ``name``."""
    return _CALL_COSTS.get(name, 20)
